//! Building the replay constraint system (paper Section 4.2, Equation 1)
//! and turning its solution into an enforceable schedule.
//!
//! Order variables `O(c)` exist for every access id mentioned by the
//! recording. The system contains:
//!
//! - **flow edges** — `O(w) < O(r_first)` per dependence, `O(w0) < O(first)`
//!   per run, `O(notify) < O(wait_after)` per signal;
//! - **thread-local order** — mentioned ids of one thread are chained in
//!   counter order;
//! - **non-interference** — per location, dependences and runs must not
//!   have foreign writes inside their intervals. For two plain dependences
//!   this is exactly Equation 1's binary disjunction; runs generalize it to
//!   interval disjointness, and a dependence whose writer is an *interior*
//!   write of a run is handled by bounding the reader before the run's next
//!   own write;
//! - **initial reads** — reads that observed a location's initial value
//!   precede every write to that location.

use crate::recording::{AccessId, Recording};
use light_runtime::{ReplaySchedule, Tid};
use light_solver::{
    minimize_unsat_core, Atom, OrderSolver, SolveError, SolveStats, TurboOptions, TurboStats, Var,
};
use std::collections::HashMap;

/// Why a constraint exists — the recorded fact it encodes. Carried
/// alongside every constraint so an unsatisfiable system can be explained
/// in terms of the recording rather than opaque order variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// `O(w) < O(r_first)`: a read range observed this write.
    FlowDep,
    /// `O(w0) < O(first)`: a run started from this external write.
    RunSource,
    /// `O(notify) < O(wait_after)`: a monitor signal edge.
    Signal,
    /// Per-thread counter order between consecutive mentioned events.
    ThreadOrder,
    /// A reader of a run's interior write must finish before the run's
    /// next own write.
    InteriorBound,
    /// A run observing another run's own write is bounded by it.
    RunObserver,
    /// A dependence reading the same external write a run started from
    /// precedes the run's first own write.
    SameSource,
    /// Two runs sharing a source write: their own-write phases are
    /// disjoint (a binary disjunction).
    OwnWritePhase,
    /// General non-interference: interval disjointness, Equation 1's
    /// binary disjunction for two plain dependences.
    Disjoint,
    /// A read of the location's initial value precedes every write.
    InitialRead,
}

impl ConstraintKind {
    /// Every kind, in discriminant order (the census/flight index order).
    pub const ALL: [ConstraintKind; 10] = [
        ConstraintKind::FlowDep,
        ConstraintKind::RunSource,
        ConstraintKind::Signal,
        ConstraintKind::ThreadOrder,
        ConstraintKind::InteriorBound,
        ConstraintKind::RunObserver,
        ConstraintKind::SameSource,
        ConstraintKind::OwnWritePhase,
        ConstraintKind::Disjoint,
        ConstraintKind::InitialRead,
    ];

    /// A short kebab-case tag (folded-stack frame / JSON key material).
    pub fn name(self) -> &'static str {
        match self {
            ConstraintKind::FlowDep => "flow-dep",
            ConstraintKind::RunSource => "run-source",
            ConstraintKind::Signal => "signal",
            ConstraintKind::ThreadOrder => "thread-order",
            ConstraintKind::InteriorBound => "interior-bound",
            ConstraintKind::RunObserver => "run-observer",
            ConstraintKind::SameSource => "same-source",
            ConstraintKind::OwnWritePhase => "own-write-phase",
            ConstraintKind::Disjoint => "disjoint",
            ConstraintKind::InitialRead => "initial-read",
        }
    }

    /// Inverse of `kind as u64` (the flight event encoding of
    /// [`light_obs::FlightKind::ConstraintGroup`]'s `loc` word).
    pub fn from_index(i: u64) -> Option<ConstraintKind> {
        Self::ALL.get(i as usize).copied()
    }

    /// A short human phrase for the constraint's reason.
    pub fn describe(self) -> &'static str {
        match self {
            ConstraintKind::FlowDep => "the read observed this write (flow dependence)",
            ConstraintKind::RunSource => "the run started from this external write",
            ConstraintKind::Signal => "the waiter woke after this notify",
            ConstraintKind::ThreadOrder => "program order within one thread",
            ConstraintKind::InteriorBound => {
                "the reader must finish before the run's next own write"
            }
            ConstraintKind::RunObserver => "the observing run is bounded by the owning run",
            ConstraintKind::SameSource => {
                "both observed the same source write, so the reads precede the run's own writes"
            }
            ConstraintKind::OwnWritePhase => "the runs' own-write phases must not overlap",
            ConstraintKind::Disjoint => {
                "non-interference: one interval must fully precede the other (Equation 1)"
            }
            ConstraintKind::InitialRead => "the initial-value read precedes every write",
        }
    }
}

/// The provenance of one constraint: its kind plus, when the constraint
/// is about a specific shared location, that location's key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintOrigin {
    pub kind: ConstraintKind,
    pub loc: Option<u64>,
}

impl ConstraintOrigin {
    fn at(kind: ConstraintKind, loc: u64) -> Self {
        ConstraintOrigin { kind, loc: Some(loc) }
    }

    fn global(kind: ConstraintKind) -> Self {
        ConstraintOrigin { kind, loc: None }
    }
}

/// One constraint surviving unsat-core minimization, mapped back to
/// access ids: removing it (alone) would make the rest satisfiable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreConstraint {
    pub origin: ConstraintOrigin,
    /// The orderings the constraint demands, as `(before, after)` id
    /// pairs. Hard constraints have exactly one; clauses list their
    /// disjuncts (at least one must hold).
    pub orders: Vec<(AccessId, AccessId)>,
    /// Whether the constraint is hard (true) or a disjunctive clause.
    pub hard: bool,
}

/// The constraint system plus the mapping back to access ids.
pub struct ConstraintSystem {
    solver: OrderSolver,
    vars: HashMap<AccessId, Var>,
    ids: Vec<AccessId>,
    hard: Vec<(Atom, ConstraintOrigin)>,
    clauses: Vec<(Vec<Atom>, ConstraintOrigin)>,
    flight: light_obs::Flight,
    /// Byte gauge for [`light_obs::mem::subsystem::SOLVER_CLAUSES`],
    /// moved once when `build` finishes encoding (the ownership boundary)
    /// and unwound on `Drop`. `mem_bytes` is this system's contribution
    /// to the (shared) gauge.
    mem: light_obs::mem::MemGauge,
    mem_bytes: u64,
}

/// Failure to compute a replay schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError(pub SolveError);

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay schedule computation failed: {}", self.0)
    }
}

impl std::error::Error for ScheduleError {}

impl ConstraintSystem {
    /// Builds the constraint system for `recording`.
    pub fn build(recording: &Recording) -> Self {
        // Every dependence mentions a writer plus a read range, every run
        // its source and endpoints: a tight upper bound on distinct ids
        // that spares the var map rehashing during encode.
        let id_hint =
            2 * recording.deps.len() + 2 * recording.runs.len() + 2 * recording.signals.len();
        let mut sys = ConstraintSystem {
            solver: OrderSolver::new(),
            vars: HashMap::with_capacity(id_hint),
            ids: Vec::with_capacity(id_hint),
            hard: Vec::new(),
            clauses: Vec::new(),
            flight: light_obs::Flight::disabled(),
            mem: light_obs::mem::handle(light_obs::mem::subsystem::SOLVER_CLAUSES),
            mem_bytes: 0,
        };
        sys.encode(recording);
        if sys.mem.enabled() {
            // One estimate at the encode boundary: var tables plus the
            // owned atom payloads. The solver's internal graph is not
            // re-counted here (it mirrors `hard`/`clauses` 1:1).
            let atom = std::mem::size_of::<Atom>();
            let clause_bytes: usize = sys
                .clauses
                .iter()
                .map(|(c, _)| std::mem::size_of::<(Vec<Atom>, ConstraintOrigin)>() + c.len() * atom)
                .sum();
            sys.mem_bytes = (sys.vars.capacity() * (std::mem::size_of::<(AccessId, Var)>() + 1)
                + sys.ids.capacity() * std::mem::size_of::<AccessId>()
                + sys.hard.len() * std::mem::size_of::<(Atom, ConstraintOrigin)>()
                + clause_bytes) as u64;
            sys.mem.add(sys.mem_bytes);
        }
        sys
    }

    /// Attaches a flight recorder: the solver ticks its decision loop
    /// through it, and `solve` emits one `constraint-group` event per
    /// [`ConstraintKind`] (loc = kind index, aux = count) so profilers can
    /// attribute solver time to constraint groups.
    pub fn set_flight(&mut self, flight: light_obs::Flight) {
        self.solver.set_flight(flight.clone());
        self.flight = flight;
    }

    /// Constraint counts by kind (hard and clauses together), in
    /// [`ConstraintKind::ALL`] order, zero-count kinds included.
    pub fn census(&self) -> Vec<(ConstraintKind, u64)> {
        let mut counts = [0u64; ConstraintKind::ALL.len()];
        for (_, origin) in &self.hard {
            counts[origin.kind as usize] += 1;
        }
        for (_, origin) in &self.clauses {
            counts[origin.kind as usize] += 1;
        }
        ConstraintKind::ALL
            .iter()
            .zip(counts)
            .map(|(&k, n)| (k, n))
            .collect()
    }

    fn var(&mut self, id: AccessId) -> Var {
        if let Some(&v) = self.vars.get(&id) {
            return v;
        }
        let v = self.solver.new_var();
        self.vars.insert(id, v);
        self.ids.push(id);
        v
    }

    /// The access id behind an order variable.
    pub fn id_of(&self, v: Var) -> AccessId {
        self.ids[v.index()]
    }

    fn lt(&mut self, a: Var, b: Var, origin: ConstraintOrigin) {
        self.solver.add_lt(a, b);
        self.hard.push((Atom::lt(a, b), origin));
    }

    fn clause(&mut self, atoms: Vec<Atom>, origin: ConstraintOrigin) {
        self.solver.add_clause(atoms.clone());
        self.clauses.push((atoms, origin));
    }

    fn encode(&mut self, rec: &Recording) {
        // Per-location unit lists for non-interference.
        #[derive(Clone)]
        enum Unit {
            Dep {
                w: Option<AccessId>,
                r_first: AccessId,
                r_last: AccessId,
            },
            Run {
                tid: Tid,
                w0: Option<AccessId>,
                first: AccessId,
                last: AccessId,
                write_ctrs: Vec<u64>,
            },
        }
        let mut by_loc: HashMap<u64, Vec<Unit>> =
            HashMap::with_capacity(rec.deps.len() + rec.runs.len());

        for d in &rec.deps {
            by_loc.entry(d.loc).or_default().push(Unit::Dep {
                w: d.w,
                r_first: AccessId::new(d.r_tid, d.r_first),
                r_last: AccessId::new(d.r_tid, d.r_last),
            });
        }
        for r in &rec.runs {
            by_loc.entry(r.loc).or_default().push(Unit::Run {
                tid: r.tid,
                w0: r.w0,
                first: AccessId::new(r.tid, r.first),
                last: AccessId::new(r.tid, r.last),
                write_ctrs: r.write_ctrs.clone(),
            });
        }

        // Flow edges.
        for d in &rec.deps {
            if let Some(w) = d.w {
                let (wv, rv) = (self.var(w), self.var(AccessId::new(d.r_tid, d.r_first)));
                self.lt(wv, rv, ConstraintOrigin::at(ConstraintKind::FlowDep, d.loc));
            }
            // Make sure both ends of the read range exist as variables.
            let _ = self.var(AccessId::new(d.r_tid, d.r_first));
            let _ = self.var(AccessId::new(d.r_tid, d.r_last));
        }
        for r in &rec.runs {
            let first = self.var(AccessId::new(r.tid, r.first));
            let _ = self.var(AccessId::new(r.tid, r.last));
            if let Some(w0) = r.w0 {
                let w0v = self.var(w0);
                self.lt(w0v, first, ConstraintOrigin::at(ConstraintKind::RunSource, r.loc));
            }
        }
        for s in &rec.signals {
            let (nv, wv) = (self.var(s.notify), self.var(s.wait_after));
            self.lt(nv, wv, ConstraintOrigin::global(ConstraintKind::Signal));
        }

        // Non-interference, per location.
        for (&loc, units) in by_loc.iter() {
            // Helper views.
            let interval = |u: &Unit, me: &mut Self| -> (Var, Var) {
                match u {
                    Unit::Dep { w, r_first, r_last } => {
                        let start = w.map(|w| me.var(w)).unwrap_or_else(|| me.var(*r_first));
                        (start, me.var(*r_last))
                    }
                    Unit::Run {
                        tid,
                        w0,
                        first,
                        last,
                        ..
                    } => {
                        let _ = tid;
                        let start = w0.map(|w| me.var(w)).unwrap_or_else(|| me.var(*first));
                        (start, me.var(*last))
                    }
                }
            };
            // The run's next own write strictly after counter `c`.
            let next_write_after = |u: &Unit, c: u64| -> Option<AccessId> {
                match u {
                    Unit::Run {
                        tid, write_ctrs, ..
                    } => write_ctrs
                        .iter()
                        .copied()
                        .filter(|&x| x > c)
                        .min()
                        .map(|x| AccessId::new(*tid, x)),
                    Unit::Dep { .. } => None,
                }
            };
            // Whether `w` is one of the unit's own writes.
            let owns_write = |u: &Unit, w: AccessId| -> bool {
                match u {
                    Unit::Run {
                        tid, write_ctrs, ..
                    } => *tid == w.tid && write_ctrs.contains(&w.ctr),
                    Unit::Dep { .. } => false,
                }
            };
            let writer_of = |u: &Unit| -> Option<AccessId> {
                match u {
                    Unit::Dep { w, .. } => *w,
                    Unit::Run { .. } => None,
                }
            };
            let first_own_write = |u: &Unit| -> Option<AccessId> {
                match u {
                    Unit::Run {
                        tid, write_ctrs, ..
                    } => write_ctrs.iter().copied().min().map(|c| AccessId::new(*tid, c)),
                    Unit::Dep { .. } => None,
                }
            };
            // A unit that observed the location's *initial* value first:
            // a writer-less dependence, or a run that starts with a read
            // under no prior write.
            let is_initial = |u: &Unit| -> bool {
                match u {
                    Unit::Dep { w, .. } => w.is_none(),
                    Unit::Run {
                        w0, first, ..
                    } => w0.is_none() && first_own_write(u).map(|f| f.ctr) != Some(first.ctr),
                }
            };

            for i in 0..units.len() {
                for j in (i + 1)..units.len() {
                    let (a, b) = (&units[i], &units[j]);
                    // Shared-writer dependences never exclude each other.
                    if let (Some(wa), Some(wb)) = (writer_of(a), writer_of(b)) {
                        if wa == wb {
                            continue;
                        }
                    }
                    // Dependence reading an interior write of a run: bound
                    // the reader before the run's next own write.
                    let interior = |dep: &Unit, run: &Unit, me: &mut Self| -> bool {
                        let Some(w) = writer_of(dep) else { return false };
                        if !owns_write(run, w) {
                            return false;
                        }
                        if let Some(next) = next_write_after(run, w.ctr) {
                            let (_, dep_end) = interval(dep, me);
                            let nv = me.var(next);
                            me.lt(
                                dep_end,
                                nv,
                                ConstraintOrigin::at(ConstraintKind::InteriorBound, loc),
                            );
                        }
                        true
                    };
                    if interior(a, b, self) || interior(b, a, self) {
                        continue;
                    }
                    // A run whose w0 is an own write of another run: the
                    // observed write is necessarily the other run's last
                    // own write (a later own write would have closed the
                    // observing run), so the other run's tail precedes the
                    // observer's first own write.
                    let run_w0_interior = |obs: &Unit, owner: &Unit, me: &mut Self| -> bool {
                        let Unit::Run { w0: Some(w0), .. } = obs else {
                            return false;
                        };
                        if !owns_write(owner, *w0) {
                            return false;
                        }
                        match next_write_after(owner, w0.ctr) {
                            Some(next) => {
                                // Only possible in truncated (faulted)
                                // recordings; bound the observer before it.
                                let (_, obs_end) = interval(obs, me);
                                let nv = me.var(next);
                                me.lt(
                                    obs_end,
                                    nv,
                                    ConstraintOrigin::at(ConstraintKind::RunObserver, loc),
                                );
                            }
                            None => {
                                let (_, owner_end) = interval(owner, me);
                                if let Some(f) = first_own_write(obs) {
                                    let fv = me.var(f);
                                    me.lt(
                                        owner_end,
                                        fv,
                                        ConstraintOrigin::at(ConstraintKind::RunObserver, loc),
                                    );
                                }
                            }
                        }
                        true
                    };
                    if run_w0_interior(a, b, self) || run_w0_interior(b, a, self) {
                        continue;
                    }
                    // Initial-value units are pinned before every write by
                    // hard edges below; no pairwise disjunction applies.
                    if is_initial(a) || is_initial(b) {
                        continue;
                    }
                    // Units reading the same external source as a run's w0:
                    // the dependence's reads precede the run's first own
                    // write (they observed the same write the run started
                    // from).
                    let same_source = |dep: &Unit, run: &Unit, me: &mut Self| -> bool {
                        let (Unit::Dep { w: Some(w), r_last, .. }, Unit::Run { w0: Some(w0), .. }) =
                            (dep, run)
                        else {
                            return false;
                        };
                        if w != w0 {
                            return false;
                        }
                        if let Some(fw) = first_own_write(run) {
                            let rv = me.var(*r_last);
                            let fv = me.var(fw);
                            me.lt(rv, fv, ConstraintOrigin::at(ConstraintKind::SameSource, loc));
                        }
                        true
                    };
                    if same_source(a, b, self) || same_source(b, a, self) {
                        continue;
                    }
                    // Two runs started from the same external write, or a
                    // run whose w0 is interior to the other run: fall back
                    // to plain interval disjointness only when sound; the
                    // shared-w0 run/run case would put both intervals at
                    // the same start, so order their own-write phases.
                    if let (
                        Unit::Run { w0: Some(wa), .. },
                        Unit::Run { w0: Some(wb), .. },
                    ) = (a, b)
                    {
                        if wa == wb {
                            // Both read the same external write first; their
                            // own-write phases must still be disjoint.
                            let (fa, fb) = (first_own_write(a), first_own_write(b));
                            let (_, ea) = interval(a, self);
                            let (_, eb) = interval(b, self);
                            if let (Some(fa), Some(fb)) = (fa, fb) {
                                let fav = self.var(fa);
                                let fbv = self.var(fb);
                                self.clause(
                                    vec![Atom::lt(ea, fbv), Atom::lt(eb, fav)],
                                    ConstraintOrigin::at(ConstraintKind::OwnWritePhase, loc),
                                );
                            }
                            continue;
                        }
                    }
                    // General case: interval disjointness (Equation 1 when
                    // both are plain dependences).
                    let (sa, ea) = interval(a, self);
                    let (sb, eb) = interval(b, self);
                    self.clause(
                        vec![Atom::lt(ea, sb), Atom::lt(eb, sa)],
                        ConstraintOrigin::at(ConstraintKind::Disjoint, loc),
                    );
                }
            }

            // Initial-value units precede every (foreign) write to the
            // location.
            let mut writes: Vec<AccessId> = Vec::new();
            for u in units {
                if let Some(w) = writer_of(u) {
                    writes.push(w);
                }
                if let Unit::Run { w0: Some(w0), .. } = u {
                    writes.push(*w0);
                }
                if let Some(fw) = first_own_write(u) {
                    writes.push(fw);
                }
            }
            writes.sort();
            writes.dedup();
            for u in units {
                if !is_initial(u) {
                    continue;
                }
                let own_tid = match u {
                    Unit::Run { tid, .. } => Some(*tid),
                    Unit::Dep { .. } => None,
                };
                let (_, end) = interval(u, self);
                for &w in &writes {
                    // Skip the unit's own writes (an initial-read run's own
                    // first write trivially follows its reads).
                    if Some(w.tid) == own_tid {
                        if let Unit::Run { write_ctrs, .. } = u {
                            if write_ctrs.contains(&w.ctr) {
                                continue;
                            }
                        }
                    }
                    let wv = self.var(w);
                    self.lt(end, wv, ConstraintOrigin::at(ConstraintKind::InitialRead, loc));
                }
            }
        }

        // Thread-local order over all mentioned ids.
        let mut per_thread: HashMap<Tid, Vec<u64>> = HashMap::new();
        for id in self.ids.clone() {
            per_thread.entry(id.tid).or_default().push(id.ctr);
        }
        for (tid, mut ctrs) in per_thread {
            ctrs.sort_unstable();
            ctrs.dedup();
            for pair in ctrs.windows(2) {
                let a = self.var(AccessId::new(tid, pair[0]));
                let b = self.var(AccessId::new(tid, pair[1]));
                self.lt(a, b, ConstraintOrigin::global(ConstraintKind::ThreadOrder));
            }
        }
    }

    /// Solves the system and produces the enforceable schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if the system is unsatisfiable (which
    /// Lemma 4.1 rules out for systems built from real recordings) or the
    /// solver budget is exhausted.
    pub fn solve(self, recording: &Recording) -> Result<(ReplaySchedule, SolveStats), ScheduleError> {
        self.solve_with(recording, None)
            .map(|(schedule, stats, _)| (schedule, stats))
    }

    /// Like [`ConstraintSystem::solve`], but optionally through the turbo
    /// (component-sharded parallel) solver. With `turbo` options the
    /// system is decomposed into independent per-location components
    /// solved on a worker pool and merged deterministically; the third
    /// tuple element reports the breakdown. Single-component systems (and
    /// `turbo: None`) take the sequential path and produce byte-identical
    /// schedules.
    ///
    /// # Errors
    ///
    /// See [`ConstraintSystem::solve`].
    pub fn solve_with(
        mut self,
        recording: &Recording,
        turbo: Option<&TurboOptions>,
    ) -> Result<(ReplaySchedule, SolveStats, Option<TurboStats>), ScheduleError> {
        if self.flight.enabled() {
            for (kind, count) in self.census() {
                if count != 0 {
                    self.flight.emit(
                        light_obs::FlightKind::ConstraintGroup,
                        0,
                        light_obs::NO_SITE,
                        kind as u64,
                        count,
                    );
                }
            }
        }
        let (model, stats, turbo_stats) = match turbo {
            Some(opts) => {
                let solved = self.solver.solve_turbo(opts).map_err(ScheduleError)?;
                (solved.model, solved.stats, Some(solved.turbo))
            }
            None => {
                let (model, stats) = self.solver.solve_with_stats().map_err(ScheduleError)?;
                (model, stats, None)
            }
        };
        let mut schedule = ReplaySchedule::new();
        schedule.set_strict(true);
        // Order every mentioned event by its model value.
        let mut order: Vec<(i64, AccessId)> = self
            .ids
            .iter()
            .map(|&id| (model.value(self.vars[&id]), id))
            .collect();
        order.sort_by_key(|&(v, id)| (v, id.tid, id.ctr));
        for (_, id) in order {
            schedule.push_ordered(id.tid, id.ctr);
        }
        // Interior run writes are allowed (not blind).
        for r in &recording.runs {
            for &c in &r.write_ctrs {
                schedule.allow_write(r.tid, c);
            }
        }
        // Threads may not overtake their recorded event frontier (a
        // faulted original run ends mid-way; events beyond never happened).
        for (&tid, &extent) in &recording.thread_extents {
            schedule.set_extent(tid, extent);
        }
        Ok((schedule, stats, turbo_stats))
    }

    /// Number of order variables created.
    pub fn num_vars(&self) -> usize {
        self.ids.len()
    }

    /// Number of constraints (hard plus clauses).
    pub fn num_constraints(&self) -> usize {
        self.hard.len() + self.clauses.len()
    }

    /// Delta-minimizes an unsatisfiable system to a minimal infeasible
    /// core and maps it back to access ids and recorded facts. Returns
    /// `None` when the system is satisfiable (or not provably
    /// unsatisfiable within `budget` solver decisions per probe).
    ///
    /// Lemma 4.1 guarantees systems built from real recordings are
    /// satisfiable, so a core is always evidence of corruption: a stale
    /// recording, a hand-edited log, a program that changed underneath.
    pub fn unsat_core(&self, budget: u64) -> Option<Vec<CoreConstraint>> {
        let hard: Vec<Atom> = self.hard.iter().map(|(a, _)| *a).collect();
        let clauses: Vec<Vec<Atom>> = self.clauses.iter().map(|(c, _)| c.clone()).collect();
        let core = minimize_unsat_core(self.ids.len(), &hard, &clauses, budget)?;
        let mut out = Vec::with_capacity(core.len());
        for &i in &core.hard {
            let (atom, origin) = &self.hard[i];
            out.push(CoreConstraint {
                origin: *origin,
                orders: vec![(self.id_of(atom.left), self.id_of(atom.right))],
                hard: true,
            });
        }
        for &i in &core.clauses {
            let (atoms, origin) = &self.clauses[i];
            out.push(CoreConstraint {
                origin: *origin,
                orders: atoms
                    .iter()
                    .map(|a| (self.id_of(a.left), self.id_of(a.right)))
                    .collect(),
                hard: false,
            });
        }
        Some(out)
    }
}

impl Drop for ConstraintSystem {
    fn drop(&mut self) {
        // The gauge is shared process-wide; release only what this
        // system accounted at build time.
        self.mem.sub(std::mem::take(&mut self.mem_bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording::{DepEdge, RunRec};
    use light_runtime::SlotAction;

    fn tid(k: u32) -> Tid {
        Tid::ROOT.child(k)
    }

    #[test]
    fn paper_example_schedule() {
        // The Section 4.2 example: deps c4->c5, c1->c6, c3->c2 with x and y.
        // Thread t1: c1 W(x), c2 R(y); thread t2: c3 W(y), c4 W(x),
        // c5 R(x), c6 R(x) — c6 reads t1's c1.
        let t1 = tid(1);
        let t2 = tid(2);
        let x = 100u64;
        let y = 200u64;
        let rec = Recording {
            deps: vec![
                DepEdge {
                    loc: x,
                    w: Some(AccessId::new(t2, 4)),
                    r_tid: t2,
                    r_first: 5,
                    r_last: 5,
                },
                DepEdge {
                    loc: x,
                    w: Some(AccessId::new(t1, 1)),
                    r_tid: t2,
                    r_first: 6,
                    r_last: 6,
                },
                DepEdge {
                    loc: y,
                    w: Some(AccessId::new(t2, 3)),
                    r_tid: t1,
                    r_first: 2,
                    r_last: 2,
                },
            ],
            ..Recording::default()
        };
        let sys = ConstraintSystem::build(&rec);
        let (schedule, _) = sys.solve(&rec).expect("satisfiable");
        // Extract slot order.
        let pos = |t: Tid, c: u64| -> u32 {
            match schedule.action(t, c) {
                Some(SlotAction::Ordered(k)) => k,
                other => panic!("({t},{c}) not ordered: {other:?}"),
            }
        };
        // Flow dependences hold.
        assert!(pos(t2, 4) < pos(t2, 5));
        assert!(pos(t1, 1) < pos(t2, 6));
        assert!(pos(t2, 3) < pos(t1, 2));
        // Non-interference on x: either c5 before c1 or c6 before c4.
        assert!(pos(t2, 5) < pos(t1, 1) || pos(t2, 6) < pos(t2, 4));
        // Thread-local order.
        assert!(pos(t1, 1) < pos(t1, 2));
        assert!(pos(t2, 3) < pos(t2, 4));
    }

    #[test]
    fn interior_run_write_bounds_reader() {
        // t1 run on loc: writes at 1 and 3, span [1,4].
        // t2 reads t1's write 1 (an interior write).
        let t1 = tid(1);
        let t2 = tid(2);
        let rec = Recording {
            deps: vec![DepEdge {
                loc: 7,
                w: Some(AccessId::new(t1, 1)),
                r_tid: t2,
                r_first: 1,
                r_last: 2,
            }],
            runs: vec![RunRec {
                loc: 7,
                tid: t1,
                w0: None,
                first: 1,
                last: 4,
                write_ctrs: vec![1, 3],
            }],
            ..Recording::default()
        };
        let sys = ConstraintSystem::build(&rec);
        let (schedule, _) = sys.solve(&rec).expect("satisfiable");
        let pos = |t: Tid, c: u64| -> u32 {
            match schedule.action(t, c) {
                Some(SlotAction::Ordered(k)) => k,
                other => panic!("({t},{c}) not ordered: {other:?}"),
            }
        };
        // Reader range must finish before t1's next own write (ctr 3).
        assert!(pos(t2, 2) < pos(t1, 3));
        assert!(pos(t1, 1) < pos(t2, 1));
    }

    #[test]
    fn initial_reads_precede_all_writes() {
        let t1 = tid(1);
        let t2 = tid(2);
        let rec = Recording {
            deps: vec![
                DepEdge {
                    loc: 9,
                    w: None,
                    r_tid: t1,
                    r_first: 1,
                    r_last: 2,
                },
                DepEdge {
                    loc: 9,
                    w: Some(AccessId::new(t2, 1)),
                    r_tid: t1,
                    r_first: 3,
                    r_last: 3,
                },
            ],
            ..Recording::default()
        };
        let sys = ConstraintSystem::build(&rec);
        let (schedule, _) = sys.solve(&rec).expect("satisfiable");
        let pos = |t: Tid, c: u64| -> u32 {
            match schedule.action(t, c) {
                Some(SlotAction::Ordered(k)) => k,
                _ => panic!(),
            }
        };
        assert!(pos(t1, 2) < pos(t2, 1), "initial read before the write");
    }

    #[test]
    fn run_intervals_are_disjoint() {
        let t1 = tid(1);
        let t2 = tid(2);
        let rec = Recording {
            runs: vec![
                RunRec {
                    loc: 3,
                    tid: t1,
                    w0: None,
                    first: 1,
                    last: 5,
                    write_ctrs: vec![1, 3],
                },
                RunRec {
                    loc: 3,
                    tid: t2,
                    w0: None,
                    first: 2,
                    last: 6,
                    write_ctrs: vec![2, 4],
                },
            ],
            ..Recording::default()
        };
        let sys = ConstraintSystem::build(&rec);
        let (schedule, _) = sys.solve(&rec).expect("satisfiable");
        let pos = |t: Tid, c: u64| -> u32 {
            match schedule.action(t, c) {
                Some(SlotAction::Ordered(k)) => k,
                _ => panic!(),
            }
        };
        assert!(pos(t1, 5) < pos(t2, 2) || pos(t2, 6) < pos(t1, 1));
    }

    #[test]
    fn interior_writes_are_allowed_not_blind() {
        let t1 = tid(1);
        let rec = Recording {
            runs: vec![RunRec {
                loc: 3,
                tid: t1,
                w0: None,
                first: 1,
                last: 5,
                write_ctrs: vec![1, 3, 5],
            }],
            ..Recording::default()
        };
        let sys = ConstraintSystem::build(&rec);
        let (schedule, _) = sys.solve(&rec).expect("satisfiable");
        // Interior write 3 has no slot but is allowed via the allow-list:
        // verify by checking the schedule does not consider it ordered.
        assert!(schedule.action(t1, 1).is_some());
        assert!(matches!(
            schedule.action(t1, 1),
            Some(SlotAction::Ordered(_))
        ));
        assert!(schedule.action(t1, 3).is_none());
    }

    #[test]
    fn unsatisfiable_recording_reports_error() {
        // Artificial contradiction: two deps forming a hard cycle.
        let t1 = tid(1);
        let t2 = tid(2);
        let rec = Recording {
            deps: vec![
                DepEdge {
                    loc: 1,
                    w: Some(AccessId::new(t1, 2)),
                    r_tid: t2,
                    r_first: 1,
                    r_last: 1,
                },
                DepEdge {
                    loc: 2,
                    w: Some(AccessId::new(t2, 2)),
                    r_tid: t1,
                    r_first: 1,
                    r_last: 1,
                },
            ],
            ..Recording::default()
        };
        // t1: 1 < 2 (thread order), t2: 1 < 2; w(t1,2) < r(t2,1) and
        // w(t2,2) < r(t1,1) — a cycle.
        let sys = ConstraintSystem::build(&rec);
        assert!(sys.solve(&rec).is_err());
    }

    #[test]
    fn unsat_core_names_the_cycle() {
        // Same cyclic recording as above: the minimal core must be the
        // two flow dependences plus the two thread-order edges — nothing
        // else — each mapped back to concrete access ids.
        let t1 = tid(1);
        let t2 = tid(2);
        let rec = Recording {
            deps: vec![
                DepEdge {
                    loc: 1,
                    w: Some(AccessId::new(t1, 2)),
                    r_tid: t2,
                    r_first: 1,
                    r_last: 1,
                },
                DepEdge {
                    loc: 2,
                    w: Some(AccessId::new(t2, 2)),
                    r_tid: t1,
                    r_first: 1,
                    r_last: 1,
                },
            ],
            ..Recording::default()
        };
        let sys = ConstraintSystem::build(&rec);
        let core = sys.unsat_core(1_000_000).expect("system is unsatisfiable");
        assert_eq!(core.len(), 4, "core: {core:?}");
        let flows: Vec<_> = core
            .iter()
            .filter(|c| c.origin.kind == ConstraintKind::FlowDep)
            .collect();
        assert_eq!(flows.len(), 2);
        assert!(flows
            .iter()
            .any(|c| c.orders == vec![(AccessId::new(t1, 2), AccessId::new(t2, 1))]));
        assert!(flows
            .iter()
            .any(|c| c.orders == vec![(AccessId::new(t2, 2), AccessId::new(t1, 1))]));
        assert!(core
            .iter()
            .filter(|c| c.origin.kind == ConstraintKind::ThreadOrder)
            .count()
            == 2);
        assert!(core.iter().all(|c| c.hard));
    }

    #[test]
    fn satisfiable_system_has_no_core() {
        let t1 = tid(1);
        let t2 = tid(2);
        let rec = Recording {
            deps: vec![DepEdge {
                loc: 1,
                w: Some(AccessId::new(t1, 1)),
                r_tid: t2,
                r_first: 1,
                r_last: 1,
            }],
            ..Recording::default()
        };
        let sys = ConstraintSystem::build(&rec);
        assert!(sys.unsat_core(1_000_000).is_none());
    }
}
