//! The Light recording algorithm (paper Algorithm 1 plus the Section 4.3
//! extensions and optimizations), rebuilt for high core counts.
//!
//! - **Last-write map with adaptive lock striping.** Writes execute inside
//!   an atomic block that also updates the location's last write
//!   (`lw ← c`); atomicity uses striped locks as in the paper. The stripe
//!   count starts at 256 (the paper's figure) and doubles — up to
//!   [`MAX_STRIPE_COUNT`] — whenever the per-stripe contention histogram
//!   shows sustained blocking. Growth is low-bit linear hashing on a
//!   16-bit fine hash: stripe `i` splits into `i` and `i + S`, so
//!   histogram indices recorded under a smaller count keep their meaning.
//!   The active count lives in a generation-tagged layout word; accessors
//!   re-validate it after locking and retry on a concurrent resize, so
//!   in-flight readers stay correct and recordings stay byte-identical
//!   for a fixed seed whether or not the map ever grows (stripe layout
//!   never touches recording *content* — lookups key on the full
//!   location key).
//! - **Stripe acquisition** tries the non-blocking path first and counts
//!   the times it had to block ([`RecordStats::stripe_contention`]).
//! - **Read matching under the shared stripe side.** A read holds the
//!   stripe's read lock across the load, giving the same atomicity as
//!   Section 2.3's optimistic `lw`-resample loop without retries (so
//!   `RecordStats::retries` stays 0 on this substrate); concurrent
//!   readers still proceed in parallel.
//! - **Thread-local dependence buffers, batch-flushed.** Detected
//!   dependences are pushed into per-OS-thread buffers with *no
//!   synchronization* and flushed to the central log in fixed-capacity
//!   batches ([`RecorderTuning::batch`]) — one coalesced merge per batch
//!   instead of one lock acquisition per record, with the PR 9 mem-gauge
//!   accounting applied at the flush boundary only. The central log keeps
//!   per-thread segments assembled in thread-id order at
//!   [`LightRecorder::take_recording`], so the recording's bytes are
//!   independent of flush timing and batch size.
//! - **`prec` + O1 (Lemma 4.3), N-way.** Consecutive same-thread accesses
//!   to a location whose observed last write stays within the sequence
//!   collapse into a single record (a [`DepEdge`] read range or a
//!   [`RunRec`]). The open-run table is set-associative
//!   (64 sets × 4 ways) with deterministic LRU eviction, so alternating
//!   access patterns over a handful of hot locations keep hitting instead
//!   of thrashing a direct-mapped slot. Each entry caches the location's
//!   fine hash, so the hot path hashes the key exactly once per access.
//! - **O2 (Lemma 4.2).** Accesses to statically lock-guarded locations are
//!   not recorded at all; the monitor ghost dependences subsume them.
//! - **Synchronization as ghost accesses (Section 4.3).** Monitor
//!   enter/exit, wait/notify and thread start/join/end are modeled as
//!   reads/writes of ghost locations and flow through the same machinery,
//!   so lock orders are captured as flow dependences.

use crate::fastmap::FastMap;
use crate::recording::{AccessId, DepEdge, Recording, RecordStats, RunRec, SignalEdge};
use light_obs::{mem, Flight, FlightKind, NO_SITE};
use light_runtime::{AccessKind, Loc, Recorder, SyncEvent, Tid};
use lir::InstrId;
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const STRIPES: usize = 256;

/// The 16-bit fine hash every stripe count derives its index from
/// (a multiplicative hash on the key, as the paper hashes on the field
/// offset). The stripe index at count `S` (a power of two) is the low
/// `log2(S)` bits, which makes stripe growth low-bit linear hashing.
#[inline]
fn fine_hash(key: u64) -> usize {
    (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48) as usize
}

/// The *base* last-write-map stripe a location key hashes to (the
/// 256-stripe layout every recorder starts from). Exposed so post-mortem
/// tooling (`light-profile`, `light-inspect`) attributes contention to
/// the same stripes the recorder locked; under an adaptively grown map
/// the runtime index is the same fine hash masked to the larger count.
pub fn stripe_of(key: u64) -> usize {
    fine_hash(key) % STRIPES
}

/// Initial number of last-write-map stripes (the paper's 256 striped
/// locks); adaptive growth can raise the active count to
/// [`MAX_STRIPE_COUNT`].
pub const STRIPE_COUNT: usize = STRIPES;

/// Upper bound on the adaptive stripe count (and on the stripe indices
/// the log format accepts in the persisted contention histogram).
pub const MAX_STRIPE_COUNT: usize = 4096;

/// How the recorder decides when to grow the last-write map's stripe
/// count (reviewed at batch-flush boundaries, never on the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripeAdapt {
    /// Never resize; the map stays at
    /// [`RecorderTuning::initial_stripes`] for the whole run.
    Off,
    /// Double the stripe count whenever
    /// [`RecorderTuning::adapt_threshold`] contended acquisitions have
    /// accumulated since the last resize (the default).
    OnContention,
    /// Double at every flush review until [`MAX_STRIPE_COUNT`], whether
    /// or not any contention was observed. Deterministic runs never
    /// contend, so this is how tests and benchmarks exercise the resize
    /// machinery; recording content is unaffected either way.
    Force,
}

/// Hot-path tuning knobs. The defaults reproduce the paper's
/// configuration (256 stripes) with adaptation armed; every combination
/// yields byte-identical recordings for a fixed seed — stripe layout and
/// flush timing are runtime-only concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderTuning {
    /// Starting stripe count; rounded up to a power of two and clamped
    /// to `1..=MAX_STRIPE_COUNT`.
    pub initial_stripes: usize,
    /// The resize policy (see [`StripeAdapt`]).
    pub adapt: StripeAdapt,
    /// Contended acquisitions between resizes that trigger a doubling
    /// under [`StripeAdapt::OnContention`].
    pub adapt_threshold: u64,
    /// Thread-local buffer capacity in records: the buffer flushes to the
    /// central log when this many deps + runs + signals + nondet values
    /// have accumulated (minimum 1).
    pub batch: usize,
}

impl Default for RecorderTuning {
    fn default() -> Self {
        Self {
            initial_stripes: STRIPE_COUNT,
            adapt: StripeAdapt::OnContention,
            adapt_threshold: 1024,
            batch: 4096,
        }
    }
}

impl RecorderTuning {
    fn normalized(mut self) -> Self {
        self.initial_stripes = self
            .initial_stripes
            .clamp(1, MAX_STRIPE_COUNT)
            .next_power_of_two()
            .min(MAX_STRIPE_COUNT);
        self.adapt_threshold = self.adapt_threshold.max(1);
        self.batch = self.batch.max(1);
        self
    }
}

/// Packs an access id into one word for the last-write table: 24 bits of
/// thread id, 40 bits of counter. Checked in debug builds; the limits are
/// far beyond any workload in this repository.
fn pack(id: AccessId) -> u64 {
    debug_assert!(id.tid.raw() < (1 << 24) && id.ctr < (1 << 40));
    (id.tid.raw() << 40) | id.ctr
}

fn unpack(packed: u64) -> AccessId {
    AccessId::new(Tid::from_raw(packed >> 40), packed & ((1 << 40) - 1))
}

/// Variant configuration (Section 5.4's `V_basic` / `V_O1` / `V_both`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LightConfig {
    /// O1: merge same-thread non-interleaved sequences across writes.
    /// When off, only Algorithm 1's `prec` read-collapsing applies.
    pub o1: bool,
    /// O2: skip recording for consistently lock-guarded locations.
    pub o2: bool,
}

impl Default for LightConfig {
    fn default() -> Self {
        Self { o1: true, o2: true }
    }
}

impl LightConfig {
    /// Algorithm 1 only (`V_basic`).
    pub fn basic() -> Self {
        Self {
            o1: false,
            o2: false,
        }
    }

    /// Algorithm 1 + O1 (`V_O1`).
    pub fn o1_only() -> Self {
        Self { o1: true, o2: false }
    }
}

struct OpenRun {
    loc: u64,
    /// Cached fine hash of `loc`: the read-match path derives the stripe
    /// index with a single mask instead of re-hashing the key.
    fh: usize,
    w0: Option<AccessId>,
    first: u64,
    last: u64,
    own_last_write: Option<u64>,
    write_ctrs: Vec<u64>,
    /// Packed instruction site ([`InstrId::pack`]) of the access that
    /// opened the run — the flight recorder's attribution anchor for the
    /// eventual dep/run record. [`light_obs::NO_SITE`] for ghost events
    /// reported without a site.
    site: u64,
    /// Monotonic access tick of the last touch, for deterministic LRU
    /// eviction within the entry's set.
    last_use: u64,
}

#[derive(Default)]
struct TlsBuf {
    recorder_id: u64,
    tid: Tid,
    deps: Vec<DepEdge>,
    runs: Vec<RunRec>,
    signals: Vec<SignalEdge>,
    nondet: Vec<i64>,
    /// Set-associative table of open runs (the `prec` state of
    /// Algorithm 1 plus O1's open sequences): [`RUN_SETS`] sets of
    /// [`RUN_WAYS`] ways, flat. A set overflow evicts the least recently
    /// used way (by `tick`) after closing its run. This bounds the
    /// per-access cost at a small constant regardless of footprint while
    /// letting a handful of hot locations per set stay open together.
    slots: Vec<Option<OpenRun>>,
    /// Monotonic per-buffer access counter driving LRU eviction. A pure
    /// function of the access sequence, so eviction order is
    /// deterministic.
    tick: u64,
    retries: u64,
    o2_skipped: u64,
    stripe_contention: u64,
    /// Per-stripe breakdown of `stripe_contention`; allocated lazily on
    /// the first contended access (zero cost for uncontended runs),
    /// sized from the *current* adaptive stripe count, and re-bucketed
    /// (extended with zeros — low-bit linear hashing keeps old indices
    /// valid) when the map grows.
    stripe_hits: Vec<u64>,
    max_ctr: u64,
    spilled_deps: u64,
    spilled_runs: u64,
    spilled_words: u64,
    /// The recorder's flight handle, cloned in at buffer init so the
    /// static close-run path can emit without a recorder reference.
    flight: Flight,
}

const RUN_SETS: usize = 64;
const RUN_WAYS: usize = 4;
const RUN_SLOTS: usize = RUN_SETS * RUN_WAYS;

impl TlsBuf {
    fn set_of(fh: usize) -> usize {
        // Top bits of the 16-bit fine hash: independent of every stripe
        // mask (which uses the low bits), so set pressure does not
        // correlate with stripe placement.
        (fh >> 10) & (RUN_SETS - 1)
    }

    /// Returns the slot index `key` should occupy: its existing way on a
    /// hit, a free way, or the set's LRU way after closing (evicting) the
    /// occupant. After this returns, the slot is either `None` or holds
    /// `key`'s own open run.
    fn focus(&mut self, key: u64, fh: usize) -> usize {
        if self.slots.is_empty() {
            self.slots = (0..RUN_SLOTS).map(|_| None).collect();
        }
        let base = Self::set_of(fh) * RUN_WAYS;
        self.tick += 1;
        let tick = self.tick;
        for way in base..base + RUN_WAYS {
            // Tag compare on the cached fine hash first (the set carries
            // only its own hash class, so a mismatched way usually fails
            // here without touching the full key).
            if matches!(&self.slots[way], Some(run) if run.fh == fh && run.loc == key) {
                self.slots[way].as_mut().expect("matched above").last_use = tick;
                return way;
            }
        }
        let mut victim = base;
        let mut oldest = u64::MAX;
        for way in base..base + RUN_WAYS {
            match &self.slots[way] {
                None => return way,
                Some(run) if run.last_use < oldest => {
                    oldest = run.last_use;
                    victim = way;
                }
                Some(_) => {}
            }
        }
        // Ticks are unique, so the LRU victim is unambiguous and the
        // eviction order is a deterministic function of the access
        // sequence.
        let old = self.slots[victim].take().expect("occupied");
        LightRecorder::close_run(self, old);
        victim
    }

    fn pending(&self) -> usize {
        self.deps.len() + self.runs.len() + self.signals.len() + self.nondet.len()
    }
}

thread_local! {
    static TLS: RefCell<Option<TlsBuf>> = const { RefCell::new(None) };
}

/// One thread's flushed segment of the central log. Batches append here
/// in program order; [`LightRecorder::take_recording`] concatenates the
/// segments in thread-id order, so the final log is independent of flush
/// interleaving.
#[derive(Default)]
struct ThreadLog {
    deps: Vec<DepEdge>,
    runs: Vec<RunRec>,
    signals: Vec<SignalEdge>,
    nondet: Vec<i64>,
    extent: u64,
}

#[derive(Default)]
struct Central {
    threads: BTreeMap<Tid, ThreadLog>,
    retries: u64,
    o2_skipped: u64,
    stripe_contention: u64,
    stripe_hits: Vec<u64>,
    spilled_deps: u64,
    spilled_runs: u64,
    spilled_words: u64,
}

static RECORDER_IDS: AtomicU64 = AtomicU64::new(1);

/// The Light recorder: plug into
/// [`light_runtime::ExecConfig::recorder`] for the original run.
pub struct LightRecorder {
    id: u64,
    config: LightConfig,
    tuning: RecorderTuning,
    /// Fields whose accesses O2 elides (raw `FieldId`s).
    guarded_fields: std::collections::HashSet<u32>,
    /// Globals whose accesses O2 elides (raw `GlobalId`s).
    guarded_globals: std::collections::HashSet<u32>,
    /// Last-write map: location key -> packed access id. Reads take the
    /// shared side of the stripe's `RwLock` (the paper's volatile read);
    /// writes take the exclusive side (the paper's striped atomic block).
    /// Slots up to the adaptive cap are pre-allocated (empty maps cost no
    /// heap); only the first `stripe_count()` are active.
    lw: Vec<RwLock<FastMap<u64, u64>>>,
    /// Generation-tagged stripe layout word:
    /// `(generation << 32) | active stripe count`. Accessors load it,
    /// derive their index, lock the stripe, then re-validate; a resize
    /// publishes a new word (next generation, doubled count) while
    /// holding every active stripe's write lock.
    stripe_layout: AtomicU64,
    /// Serializes resizes; never held by accessors.
    resize_lock: Mutex<()>,
    stripe_resizes: AtomicU64,
    batch_flushes: AtomicU64,
    /// `stripe_contention` total at the last resize, so
    /// [`StripeAdapt::OnContention`] measures blocking *since* the map
    /// last grew.
    contention_at_resize: AtomicU64,
    central: Mutex<Central>,
    /// Optional disk sink: thread-local buffers flush here when they reach
    /// `spill_threshold` records (the paper's measurement configuration).
    spill: Option<Arc<crate::spill::SpillSink>>,
    spill_threshold: usize,
    /// Flight-recorder handle; disabled by default. When a sink is
    /// attached the recorder emits one compact event per recorded
    /// dependence/run, prec hit, O1 merge, O2 elision, stripe block,
    /// stripe resize, batch flush, and ghost op. Recording *content* is
    /// unaffected either way — logs stay byte-identical with or without a
    /// sink.
    flight: Flight,
    /// Byte gauges for the dependence log ([`mem::subsystem::RECORDER_LOG`])
    /// and the last-write map ([`mem::subsystem::LW_MAP`]). Accounting
    /// happens only at ownership-transfer boundaries — batch flush,
    /// recording handoff — never on the per-access hot path, and the
    /// handles are no-ops when the global registry is disabled. Recording
    /// *content* is unaffected: logs stay byte-identical with gauges on.
    mem_log: mem::MemGauge,
    mem_lw: mem::MemGauge,
    /// Bytes this recorder instance has added to each (globally shared)
    /// gauge, so deltas and `Drop` unwind exactly our own contribution.
    mem_log_owned: AtomicU64,
    mem_lw_owned: AtomicU64,
}

/// Estimated resident heap bytes for one last-write-map entry: the
/// key/value pair plus one byte of hash-table control metadata.
const LW_ENTRY_BYTES: u64 = (std::mem::size_of::<(u64, u64)>() + 1) as u64;

/// Heap bytes resident in a batch of log records, by one fixed cost
/// model: structure size for fixed-width records plus 8 bytes per
/// interior write counter / nondet long. Applied identically when a TLS
/// batch flushes into the central log (`add`) and when the recording is
/// taken (`sub`), so the recorder-log gauge drains back to zero at
/// handoff.
fn log_record_bytes(deps: usize, runs: &[RunRec], signals: usize, nondet_longs: usize) -> u64 {
    let run_bytes: u64 = runs
        .iter()
        .map(|r| (std::mem::size_of::<RunRec>() + r.write_ctrs.len() * 8) as u64)
        .sum();
    deps as u64 * std::mem::size_of::<DepEdge>() as u64
        + run_bytes
        + signals as u64 * std::mem::size_of::<SignalEdge>() as u64
        + nondet_longs as u64 * 8
}

impl LightRecorder {
    /// Creates a recorder with default tuning. `guarded_*` come from the
    /// lockset analysis and are ignored unless `config.o2` is set.
    pub fn new(
        config: LightConfig,
        guarded_fields: std::collections::HashSet<u32>,
        guarded_globals: std::collections::HashSet<u32>,
    ) -> Arc<Self> {
        let tuning = RecorderTuning::default();
        Arc::new(Self {
            id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
            guarded_fields: if config.o2 {
                guarded_fields
            } else {
                Default::default()
            },
            guarded_globals: if config.o2 {
                guarded_globals
            } else {
                Default::default()
            },
            config,
            lw: Self::make_stripes(&tuning),
            stripe_layout: AtomicU64::new(tuning.initial_stripes as u64),
            resize_lock: Mutex::new(()),
            stripe_resizes: AtomicU64::new(0),
            batch_flushes: AtomicU64::new(0),
            contention_at_resize: AtomicU64::new(0),
            tuning,
            central: Mutex::new(Central::default()),
            spill: None,
            spill_threshold: 4096,
            flight: Flight::disabled(),
            mem_log: mem::handle(mem::subsystem::RECORDER_LOG),
            mem_lw: mem::handle(mem::subsystem::LW_MAP),
            mem_log_owned: AtomicU64::new(0),
            mem_lw_owned: AtomicU64::new(0),
        })
    }

    /// Pre-allocates stripe slots: up to the cap when adaptation can
    /// grow the map, exactly the initial count otherwise. Empty maps
    /// allocate no heap, so reserved-but-inactive slots are near-free.
    fn make_stripes(tuning: &RecorderTuning) -> Vec<RwLock<FastMap<u64, u64>>> {
        let slots = if tuning.adapt == StripeAdapt::Off {
            tuning.initial_stripes
        } else {
            MAX_STRIPE_COUNT.max(tuning.initial_stripes)
        };
        (0..slots).map(|_| RwLock::new(FastMap::default())).collect()
    }

    /// Overrides the hot-path tuning (stripe layout, adaptation policy,
    /// batch size). Like [`LightRecorder::with_spill`] this must be
    /// called before the recorder is shared. Recording content is
    /// identical under every tuning; only throughput changes.
    pub fn with_tuning(self: Arc<Self>, tuning: RecorderTuning) -> Arc<Self> {
        let mut inner = Arc::try_unwrap(self).unwrap_or_else(|_| {
            panic!("with_tuning must be called before sharing the recorder")
        });
        let tuning = tuning.normalized();
        inner.lw = Self::make_stripes(&tuning);
        inner.stripe_layout = AtomicU64::new(tuning.initial_stripes as u64);
        inner.tuning = tuning;
        Arc::new(inner)
    }

    /// The active tuning.
    pub fn tuning(&self) -> RecorderTuning {
        self.tuning
    }

    #[inline]
    fn layout(&self) -> u64 {
        self.stripe_layout.load(Ordering::Acquire)
    }

    #[inline]
    fn layout_count(layout: u64) -> usize {
        (layout & 0xffff_ffff) as usize
    }

    /// The active stripe count (≥ `initial_stripes`, grows by doubling).
    pub fn stripe_count(&self) -> usize {
        Self::layout_count(self.layout())
    }

    /// The stripe layout generation: increments on every resize.
    pub fn stripe_generation(&self) -> u64 {
        self.layout() >> 32
    }

    /// How many times the last-write map doubled its stripe count.
    pub fn stripe_resizes(&self) -> u64 {
        self.stripe_resizes.load(Ordering::Relaxed)
    }

    /// How many thread-local batches have flushed to the central log.
    pub fn batch_flushes(&self) -> u64 {
        self.batch_flushes.load(Ordering::Relaxed)
    }

    /// Re-measures the last-write map (stripe capacities, not lengths:
    /// reserved-but-empty table space is still resident) and moves the
    /// shared gauge by the delta from our previous measurement. Called
    /// only on cold paths (thread exit, recording handoff).
    fn update_lw_gauge(&self) {
        if !self.mem_lw.enabled() {
            return;
        }
        let now: u64 = self
            .lw
            .iter()
            .map(|s| s.read().capacity() as u64 * LW_ENTRY_BYTES)
            .sum();
        let old = self.mem_lw_owned.swap(now, Ordering::Relaxed);
        if now >= old {
            self.mem_lw.add(now - old);
        } else {
            self.mem_lw.sub(old - now);
        }
    }

    /// Attaches a flight-recorder handle. Like [`LightRecorder::with_spill`]
    /// this must be called before the recorder is shared.
    pub fn with_flight(self: Arc<Self>, flight: Flight) -> Arc<Self> {
        let mut inner = Arc::try_unwrap(self).unwrap_or_else(|_| {
            panic!("with_flight must be called before sharing the recorder")
        });
        inner.flight = flight;
        Arc::new(inner)
    }

    /// Enables spill-to-disk: thread-local buffers flush to `sink` when
    /// they reach `threshold` records and are dropped from memory. Space
    /// statistics still account for everything. See [`crate::spill`].
    pub fn with_spill(
        self: Arc<Self>,
        sink: Arc<crate::spill::SpillSink>,
        threshold: usize,
    ) -> Arc<Self> {
        let mut inner = Arc::try_unwrap(self).unwrap_or_else(|_| {
            panic!("with_spill must be called before sharing the recorder")
        });
        inner.spill = Some(sink);
        inner.spill_threshold = threshold.max(1);
        Arc::new(inner)
    }

    /// Flushes (and drops) a TLS buffer's records to the spill sink,
    /// keeping only counters. Called when the buffer exceeds the spill
    /// threshold, and at thread exit.
    fn spill_buf(&self, buf: &mut TlsBuf) {
        let Some(sink) = &self.spill else { return };
        let mut words: Vec<u64> = Vec::with_capacity(buf.deps.len() * 3 + buf.runs.len() * 4);
        for d in buf.deps.drain(..) {
            words.push(d.w.map(pack).unwrap_or(u64::MAX));
            words.push(pack(AccessId::new(d.r_tid, d.r_first)));
            if d.r_last != d.r_first {
                words.push(d.r_last);
            }
            buf.spilled_deps += 1;
        }
        for r in buf.runs.drain(..) {
            words.push(r.w0.map(pack).unwrap_or(u64::MAX));
            words.push(pack(AccessId::new(r.tid, r.first)));
            words.push(r.last);
            words.extend(r.write_ctrs.iter().copied());
            buf.spilled_runs += 1;
        }
        buf.spilled_words += words.len() as u64;
        sink.write_longs(&words);
    }

    /// Extracts the recording after the run completes (all LIR threads
    /// have exited and flushed their buffers). Per-thread segments are
    /// concatenated in thread-id order, making the assembled log — and
    /// therefore the persisted bytes — independent of flush timing,
    /// batch size, stripe count, and adaptation.
    pub fn take_recording(
        &self,
        fault: Option<light_runtime::FaultReport>,
        args: &[i64],
    ) -> Recording {
        let central = std::mem::take(&mut *self.central.lock());
        let mut deps = Vec::new();
        let mut runs = Vec::new();
        let mut signals = Vec::new();
        let mut nondet = HashMap::new();
        let mut extents = HashMap::new();
        for (tid, mut t) in central.threads {
            deps.append(&mut t.deps);
            runs.append(&mut t.runs);
            signals.append(&mut t.signals);
            if !t.nondet.is_empty() {
                nondet.insert(tid, std::mem::take(&mut t.nondet));
            }
            extents.insert(tid, t.extent);
        }
        if self.mem_log.enabled() {
            // Same cost model as the batch-flush merge, so the gauge
            // drains to zero once every thread's batch is handed off.
            // min-guarded against ever subtracting more than we added.
            let nondet_longs: usize = nondet.values().map(Vec::len).sum();
            let drained = log_record_bytes(deps.len(), &runs, signals.len(), nondet_longs);
            let owned = self.mem_log_owned.load(Ordering::Relaxed);
            let sub = drained.min(owned);
            self.mem_log.sub(sub);
            self.mem_log_owned.fetch_sub(sub, Ordering::Relaxed);
        }
        self.update_lw_gauge();
        // Long-integer units, assuming the same per-location grouped log
        // layout Leap's unit (1 long per access) assumes: a dependence is
        // the packed writer id plus the reader counter (+1 when the prec
        // range end differs); a run is w0 + endpoints + its interior write
        // counters.
        let mut space = 0u64;
        for d in &deps {
            space += 2 + u64::from(d.r_last != d.r_first);
        }
        for r in &runs {
            space += 3 + r.write_ctrs.len() as u64;
        }
        space += signals.len() as u64 * 2;
        space += nondet.values().map(|v| v.len() as u64).sum::<u64>();
        space += central.spilled_words;
        let stats = RecordStats {
            space_longs: space,
            deps: deps.len() as u64 + central.spilled_deps,
            runs: runs.len() as u64 + central.spilled_runs,
            retries: central.retries,
            o2_skipped: central.o2_skipped,
            stripe_contention: central.stripe_contention,
        };
        Recording {
            deps,
            runs,
            signals,
            nondet,
            thread_extents: extents,
            fault,
            args: args.to_vec(),
            stats,
            provenance: None,
            stripe_hist: central.stripe_hits,
        }
    }

    /// Read-locks the stripe `fh` maps to under the current layout,
    /// trying the non-blocking path first; retries if a resize published
    /// a new layout while we were acquiring. Returns the guard, whether
    /// the thread had to block, and the stripe index actually locked.
    fn stripe_read(
        &self,
        fh: usize,
    ) -> (parking_lot::RwLockReadGuard<'_, FastMap<u64, u64>>, bool, usize) {
        loop {
            let layout = self.layout();
            let idx = fh & (Self::layout_count(layout) - 1);
            let stripe = &self.lw[idx];
            let (guard, contended) = match stripe.try_read() {
                Some(guard) => (guard, false),
                None => (stripe.read(), true),
            };
            if self.layout() == layout {
                return (guard, contended, idx);
            }
            // A resize raced us: the index we derived may now cover a
            // different key range. Drop the guard and re-derive.
        }
    }

    /// Write-locks the stripe `fh` maps to; see [`Self::stripe_read`].
    fn stripe_write(
        &self,
        fh: usize,
    ) -> (parking_lot::RwLockWriteGuard<'_, FastMap<u64, u64>>, bool, usize) {
        loop {
            let layout = self.layout();
            let idx = fh & (Self::layout_count(layout) - 1);
            let stripe = &self.lw[idx];
            let (guard, contended) = match stripe.try_write() {
                Some(guard) => (guard, false),
                None => (stripe.write(), true),
            };
            if self.layout() == layout {
                return (guard, contended, idx);
            }
        }
    }

    /// Doubles the active stripe count by low-bit linear hashing: every
    /// entry of stripe `i` whose fine hash has the new bit set moves to
    /// stripe `i + count` (empty before the resize, so no collisions).
    /// Holds every affected stripe's write lock across the split and
    /// publishes the new generation-tagged layout before releasing —
    /// accessors hold at most one stripe lock and never the resize lock,
    /// so this cannot deadlock; they block, then re-validate their layout
    /// and re-derive their index. Returns `false` at the cap.
    fn grow_stripes(&self) -> bool {
        let _resize = self.resize_lock.lock();
        let layout = self.layout();
        let count = Self::layout_count(layout);
        let generation = layout >> 32;
        let doubled = count * 2;
        if doubled > self.lw.len() || doubled > MAX_STRIPE_COUNT {
            return false;
        }
        let mut guards: Vec<_> = self.lw[..doubled].iter().map(|s| s.write()).collect();
        let (lo, hi) = guards.split_at_mut(count);
        for i in 0..count {
            let moved: Vec<u64> = lo[i]
                .keys()
                .copied()
                .filter(|k| fine_hash(*k) & count != 0)
                .collect();
            for key in moved {
                let packed = lo[i].remove(&key).expect("listed above");
                hi[i].insert(key, packed);
            }
        }
        self.stripe_layout.store(
            ((generation + 1) << 32) | doubled as u64,
            Ordering::Release,
        );
        drop(guards);
        self.stripe_resizes.fetch_add(1, Ordering::Relaxed);
        self.flight.emit(
            FlightKind::StripeResized,
            0,
            NO_SITE,
            doubled as u64,
            generation + 1,
        );
        true
    }

    /// Resize review, run at flush boundaries only (never per access).
    fn maybe_adapt(&self, total_contention: u64) {
        match self.tuning.adapt {
            StripeAdapt::Off => {}
            StripeAdapt::Force => {
                self.grow_stripes();
            }
            StripeAdapt::OnContention => {
                let at_resize = self.contention_at_resize.load(Ordering::Relaxed);
                if total_contention.saturating_sub(at_resize) >= self.tuning.adapt_threshold
                    && self.grow_stripes()
                {
                    self.contention_at_resize
                        .store(total_contention, Ordering::Relaxed);
                }
            }
        }
    }

    fn lw_get(&self, key: u64, fh: usize) -> (Option<AccessId>, bool, usize) {
        let (shard, contended, idx) = self.stripe_read(fh);
        (shard.get(&key).copied().map(unpack), contended, idx)
    }

    /// Advances `tid`'s recorded event frontier without recording anything
    /// else. Wrapper recorders that deliberately skip some events (e.g. the
    /// sync-only Chimera recorder) must still report every counted event
    /// here, or replay would park threads before their true frontier.
    pub fn note_event(&self, tid: Tid, ctr: u64) {
        self.with_tls(tid, |buf| buf.max_ctr = buf.max_ctr.max(ctr));
    }

    fn with_tls<R>(&self, tid: Tid, f: impl FnOnce(&mut TlsBuf) -> R) -> R {
        TLS.with(|cell| {
            let mut slot = cell.borrow_mut();
            let needs_init = match slot.as_ref() {
                Some(buf) => buf.recorder_id != self.id || buf.tid != tid,
                None => true,
            };
            if needs_init {
                *slot = Some(TlsBuf {
                    recorder_id: self.id,
                    tid,
                    flight: self.flight.clone(),
                    ..TlsBuf::default()
                });
            }
            f(slot.as_mut().expect("initialized above"))
        })
    }

    /// Flush review after a record lands in the TLS buffer: spill-to-disk
    /// takes precedence (its threshold is the paper's measurement
    /// configuration); otherwise the batch flushes to the central log
    /// when it reaches capacity.
    fn maybe_flush(&self, buf: &mut TlsBuf) {
        if self.spill.is_some() {
            if buf.deps.len() + buf.runs.len() >= self.spill_threshold {
                self.spill_buf(buf);
            }
            return;
        }
        if buf.pending() >= self.tuning.batch {
            self.flush_buf(buf);
        }
    }

    /// Merges one thread-local batch into the central log's per-thread
    /// segment in a single coalesced append, moves the counters, applies
    /// the mem-gauge cost model (flush boundary only), and runs the
    /// stripe adaptation review. Appends preserve per-thread program
    /// order, so flush timing never reorders the final log.
    fn flush_buf(&self, buf: &mut TlsBuf) {
        let records = buf.pending() as u64;
        let merged_bytes = if self.mem_log.enabled() {
            log_record_bytes(buf.deps.len(), &buf.runs, buf.signals.len(), buf.nondet.len())
        } else {
            0
        };
        let mut central = self.central.lock();
        let t = central.threads.entry(buf.tid).or_default();
        t.deps.append(&mut buf.deps);
        t.runs.append(&mut buf.runs);
        t.signals.append(&mut buf.signals);
        t.nondet.append(&mut buf.nondet);
        t.extent = t.extent.max(buf.max_ctr);
        central.retries += std::mem::take(&mut buf.retries);
        central.o2_skipped += std::mem::take(&mut buf.o2_skipped);
        central.stripe_contention += std::mem::take(&mut buf.stripe_contention);
        let total_contention = central.stripe_contention;
        if !buf.stripe_hits.is_empty() {
            if central.stripe_hits.len() < buf.stripe_hits.len() {
                central.stripe_hits.resize(buf.stripe_hits.len(), 0);
            }
            for (c, h) in central.stripe_hits.iter_mut().zip(buf.stripe_hits.iter()) {
                *c += h;
            }
            buf.stripe_hits.clear();
        }
        central.spilled_deps += std::mem::take(&mut buf.spilled_deps);
        central.spilled_runs += std::mem::take(&mut buf.spilled_runs);
        central.spilled_words += std::mem::take(&mut buf.spilled_words);
        drop(central);
        self.batch_flushes.fetch_add(1, Ordering::Relaxed);
        if merged_bytes > 0 {
            self.mem_log.add(merged_bytes);
            self.mem_log_owned.fetch_add(merged_bytes, Ordering::Relaxed);
        }
        self.flight
            .emit(FlightKind::BatchFlush, buf.tid.raw(), NO_SITE, records, 0);
        self.maybe_adapt(total_contention);
    }

    fn close_run(buf: &mut TlsBuf, mut run: OpenRun) {
        if run.write_ctrs.is_empty() {
            // Same long-word cost model as `take_recording`'s accounting.
            let cost = 2 + u64::from(run.last != run.first);
            buf.flight.emit(
                FlightKind::DepRecorded,
                buf.tid.raw(),
                run.site,
                run.loc,
                cost,
            );
            buf.deps.push(DepEdge {
                loc: run.loc,
                w: run.w0,
                r_tid: buf.tid,
                r_first: run.first,
                r_last: run.last,
            });
            return;
        }
        // Ghost locations (monitors, thread lifecycles): every operation
        // updates the last-write word, so a foreign dependence can only
        // ever target the run's *last* own write — interior write counters
        // are useless for dependence splitting, and ghost events are never
        // blind-suppressed, so the replay allow-list is unnecessary too.
        // Keep only the first and last own writes (used by the constraint
        // generator's unit rules): a merged lock-region sequence then costs
        // O(1) space however long it ran (Lemma 4.3 at full strength).
        let is_ghost = matches!(run.loc & 7, 4 | 5);
        if is_ghost && run.write_ctrs.len() > 2 {
            let first = *run.write_ctrs.first().expect("nonempty");
            let last = *run.write_ctrs.last().expect("nonempty");
            run.write_ctrs = vec![first, last];
        }
        // A lone write with no observed readers of its own and no external
        // source is a blind-write candidate: record nothing. If a foreign
        // reader depends on it, the reader's own dependence record keeps it
        // alive in the replay schedule.
        if run.w0.is_none() && run.write_ctrs.len() == 1 && run.first == run.last {
            return;
        }
        let cost = 3 + run.write_ctrs.len() as u64;
        buf.flight.emit(
            FlightKind::RunRecorded,
            buf.tid.raw(),
            run.site,
            run.loc,
            cost,
        );
        buf.runs.push(RunRec {
            loc: run.loc,
            tid: buf.tid,
            w0: run.w0,
            first: run.first,
            last: run.last,
            write_ctrs: run.write_ctrs,
        });
    }

    /// Whether `lw` (the observed last write) belongs to the open run.
    fn continues(buf_tid: Tid, run: &OpenRun, lw: Option<AccessId>) -> bool {
        match run.own_last_write {
            Some(w) => lw == Some(AccessId::new(buf_tid, w)),
            None => lw == run.w0,
        }
    }

    /// Tallies one contended stripe acquisition (total + per-stripe) and
    /// emits the flight event. `idx` is the stripe index actually locked;
    /// the histogram sizes itself from the current adaptive stripe count
    /// and re-buckets on growth by extending with zeros (growth is
    /// low-bit linear hashing, so indices recorded under a smaller count
    /// keep their meaning).
    fn note_contention(&self, buf: &mut TlsBuf, key: u64, idx: usize, site: u64) {
        buf.stripe_contention += 1;
        if buf.stripe_hits.len() <= idx {
            let want = self.stripe_count().max(idx + 1);
            buf.stripe_hits.resize(want, 0);
        }
        buf.stripe_hits[idx] += 1;
        self.flight
            .emit(FlightKind::StripeBlocked, buf.tid.raw(), site, key, idx as u64);
    }

    #[allow(clippy::too_many_arguments)]
    fn record_read(
        &self,
        tid: Tid,
        ctr: u64,
        key: u64,
        fh: usize,
        stripe_idx: usize,
        lw: Option<AccessId>,
        contended: bool,
        site: u64,
    ) {
        self.with_tls(tid, |buf| {
            buf.max_ctr = buf.max_ctr.max(ctr);
            if contended {
                self.note_contention(buf, key, stripe_idx, site);
            }
            let slot = buf.focus(key, fh);
            if let Some(run) = &mut buf.slots[slot] {
                if Self::continues(tid, run, lw) {
                    run.last = ctr;
                    self.flight.emit(FlightKind::PrecHit, tid.raw(), site, key, 1);
                    return;
                }
                let closed = buf.slots[slot].take().expect("checked");
                Self::close_run(buf, closed);
            }
            let tick = buf.tick;
            buf.slots[slot] = Some(OpenRun {
                loc: key,
                fh,
                w0: lw,
                first: ctr,
                last: ctr,
                own_last_write: None,
                write_ctrs: Vec::new(),
                site,
                last_use: tick,
            });
            self.maybe_flush(buf);
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn record_write(
        &self,
        tid: Tid,
        ctr: u64,
        key: u64,
        fh: usize,
        stripe_idx: usize,
        prev: Option<AccessId>,
        reads: bool,
        contended: bool,
        site: u64,
    ) {
        self.with_tls(tid, |buf| {
            buf.max_ctr = buf.max_ctr.max(ctr);
            if contended {
                self.note_contention(buf, key, stripe_idx, site);
            }
            let extend = self.config.o1 || reads;
            let slot = buf.focus(key, fh);
            if let Some(run) = &mut buf.slots[slot] {
                if extend && Self::continues(tid, run, prev) {
                    run.last = ctr;
                    run.own_last_write = Some(ctr);
                    run.write_ctrs.push(ctr);
                    self.flight.emit(FlightKind::O1Merge, tid.raw(), site, key, 1);
                    return;
                }
                let closed = buf.slots[slot].take().expect("checked");
                Self::close_run(buf, closed);
            }
            let tick = buf.tick;
            buf.slots[slot] = Some(OpenRun {
                loc: key,
                fh,
                w0: if reads { prev } else { None },
                first: ctr,
                last: ctr,
                own_last_write: Some(ctr),
                write_ctrs: vec![ctr],
                site,
                last_use: tick,
            });
            self.maybe_flush(buf);
        });
    }

    /// Ghost read-modify-write used by monitor/thread events: updates the
    /// last write under the stripe lock and records the dependence.
    fn ghost_rw(&self, tid: Tid, ctr: u64, key: u64, site: u64) {
        let fh = fine_hash(key);
        let me = AccessId::new(tid, ctr);
        let (prev, contended, idx) = {
            let (mut shard, contended, idx) = self.stripe_write(fh);
            (shard.insert(key, pack(me)).map(unpack), contended, idx)
        };
        self.record_write(tid, ctr, key, fh, idx, prev, true, contended, site);
    }

    fn ghost_write(&self, tid: Tid, ctr: u64, key: u64, site: u64) {
        let fh = fine_hash(key);
        let me = AccessId::new(tid, ctr);
        let (prev, contended, idx) = {
            let (mut shard, contended, idx) = self.stripe_write(fh);
            (shard.insert(key, pack(me)).map(unpack), contended, idx)
        };
        self.record_write(tid, ctr, key, fh, idx, prev, false, contended, site);
    }

    fn ghost_read(&self, tid: Tid, ctr: u64, key: u64, site: u64) {
        let fh = fine_hash(key);
        let (lw, contended, idx) = self.lw_get(key, fh);
        self.record_read(tid, ctr, key, fh, idx, lw, contended, site);
    }

    fn is_guarded(&self, loc: &Loc) -> bool {
        match loc {
            Loc::Field(_, f) => self.guarded_fields.contains(&f.0),
            Loc::Global(g) => self.guarded_globals.contains(&g.0),
            _ => false,
        }
    }
}

impl Recorder for LightRecorder {
    fn on_access(
        &self,
        tid: Tid,
        ctr: u64,
        loc: Loc,
        kind: AccessKind,
        guarded: bool,
        instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        // Packed only when a flight sink is listening: `InstrId::pack` is a
        // couple of shifts, but the disabled path stays branch-only.
        let site = if self.flight.enabled() {
            instr.pack()
        } else {
            NO_SITE
        };
        if (guarded && self.config.o2) || self.is_guarded(&loc) {
            // O2: the lock ghost dependences subsume this location.
            self.with_tls(tid, |buf| {
                buf.o2_skipped += 1;
                buf.max_ctr = buf.max_ctr.max(ctr);
            });
            self.flight
                .emit(FlightKind::O2Elision, tid.raw(), site, loc.key(), 1);
            return op();
        }
        let key = loc.key();
        // The one hash of the hot path: stripe indices mask it, the prec
        // table sets index into it, and the open-run entry caches it.
        let fh = fine_hash(key);
        let me = AccessId::new(tid, ctr);
        match kind {
            AccessKind::Read => {
                // The paper's optimistic retry loop validates that `lw` is
                // unchanged across the load. On this substrate shared
                // read-locks are cheap, so the same atomicity comes from
                // holding the stripe's read side across the load: writers
                // (who update `lw` under the write side) cannot interleave,
                // while concurrent readers still proceed in parallel.
                let (value, lw, contended, idx) = {
                    let (shard, contended, idx) = self.stripe_read(fh);
                    let v = op();
                    (v, shard.get(&key).copied().map(unpack), contended, idx)
                };
                self.record_read(tid, ctr, key, fh, idx, lw, contended, site);
                value
            }
            AccessKind::Write => {
                // atomic { o.f = v ; lw ← c } under the stripe lock.
                let (value, prev, contended, idx) = {
                    let (mut shard, contended, idx) = self.stripe_write(fh);
                    let v = op();
                    let prev = shard.insert(key, pack(me));
                    (v, prev.map(unpack), contended, idx)
                };
                self.record_write(tid, ctr, key, fh, idx, prev, false, contended, site);
                value
            }
            AccessKind::ReadWrite => {
                let (value, prev, contended, idx) = {
                    let (mut shard, contended, idx) = self.stripe_write(fh);
                    let prev = shard.get(&key).copied().map(unpack);
                    let v = op();
                    shard.insert(key, pack(me));
                    (v, prev, contended, idx)
                };
                self.record_write(tid, ctr, key, fh, idx, prev, true, contended, site);
                value
            }
        }
    }

    fn on_sync(&self, tid: Tid, ctr: u64, ev: SyncEvent, instr: InstrId) {
        let site = if self.flight.enabled() {
            instr.pack()
        } else {
            NO_SITE
        };
        // One GhostOp flight event per sync operation, with a small code
        // distinguishing the operation class (aux).
        let ghost = |key: u64, code: u64| {
            self.flight.emit(FlightKind::GhostOp, tid.raw(), site, key, code);
        };
        match ev {
            SyncEvent::MonitorEnter { obj } | SyncEvent::Notify { obj, .. } => {
                let key = Loc::Monitor(obj).key();
                ghost(key, 0);
                self.ghost_rw(tid, ctr, key, site);
            }
            SyncEvent::MonitorExit { obj } | SyncEvent::WaitBefore { obj } => {
                let key = Loc::Monitor(obj).key();
                ghost(key, 1);
                self.ghost_write(tid, ctr, key, site);
            }
            SyncEvent::WaitAfter { obj, notifier } => {
                let key = Loc::Monitor(obj).key();
                ghost(key, 2);
                self.ghost_rw(tid, ctr, key, site);
                if let Some((ntid, nctr)) = notifier {
                    self.with_tls(tid, |buf| {
                        buf.signals.push(SignalEdge {
                            notify: AccessId::new(ntid, nctr),
                            wait_after: AccessId::new(tid, ctr),
                        });
                        self.maybe_flush(buf);
                    });
                }
            }
            SyncEvent::Spawn { child } => {
                let key = Loc::ThreadLife(child).key();
                ghost(key, 3);
                self.ghost_write(tid, ctr, key, site);
            }
            SyncEvent::ThreadStart { .. } => {
                let key = Loc::ThreadLife(tid).key();
                ghost(key, 4);
                self.ghost_read(tid, ctr, key, site);
            }
            SyncEvent::Join { child, .. } => {
                let key = Loc::ThreadLife(child).key();
                ghost(key, 5);
                self.ghost_read(tid, ctr, key, site);
            }
            SyncEvent::ThreadEnd => {
                let key = Loc::ThreadLife(tid).key();
                ghost(key, 6);
                self.ghost_write(tid, ctr, key, site);
            }
        }
    }

    fn on_nondet(&self, tid: Tid, value: i64) {
        self.with_tls(tid, |buf| {
            buf.nondet.push(value);
            self.maybe_flush(buf);
        });
    }

    fn on_thread_exit(&self, tid: Tid) {
        let buf = TLS.with(|cell| cell.borrow_mut().take());
        let Some(mut buf) = buf else { return };
        if buf.recorder_id != self.id {
            return;
        }
        // The runtime calls this on the OS thread that ran the LIR
        // thread, so the buffer it owns is `tid`'s.
        debug_assert_eq!(buf.tid, tid);
        let open: Vec<OpenRun> = buf.slots.iter_mut().filter_map(Option::take).collect();
        for run in open {
            Self::close_run(&mut buf, run);
        }
        if self.spill.is_some() {
            self.spill_buf(&mut buf);
        }
        // Final flush: whatever the batch holds (plus the counters and
        // the thread's event-frontier extent) merges at the
        // ownership-transfer boundary.
        self.flush_buf(&mut buf);
        self.update_lw_gauge();
    }
}

impl Drop for LightRecorder {
    fn drop(&mut self) {
        // Unwind exactly what this instance contributed: the gauges are
        // shared process-wide, and other recorders may still be live.
        self.mem_log.sub(self.mem_log_owned.swap(0, Ordering::Relaxed));
        self.mem_lw.sub(self.mem_lw_owned.swap(0, Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_runtime::ObjId;
    use lir::{BlockId, FieldId, FuncId};

    fn iid() -> InstrId {
        InstrId {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        }
    }

    fn field_loc() -> Loc {
        Loc::Field(ObjId(1), FieldId(0))
    }

    fn read(rec: &LightRecorder, tid: Tid, ctr: u64, loc: Loc) -> u64 {
        rec.on_access(tid, ctr, loc, AccessKind::Read, false, iid(), &mut || 7)
    }

    fn write(rec: &LightRecorder, tid: Tid, ctr: u64, loc: Loc) -> u64 {
        rec.on_access(tid, ctr, loc, AccessKind::Write, false, iid(), &mut || 7)
    }

    fn finish(rec: &LightRecorder, tids: &[Tid]) -> Recording {
        for &t in tids {
            rec.on_thread_exit(t);
        }
        rec.take_recording(None, &[])
    }

    /// NOTE: these unit tests drive the recorder from a single OS thread,
    /// simulating multiple LIR threads by flushing between switches (the
    /// TLS buffer is re-keyed per tid by `with_tls`).
    #[test]
    fn cross_thread_dependence_is_recorded() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        write(&rec, t1, 1, field_loc());
        rec.on_thread_exit(t1);
        read(&rec, t2, 1, field_loc());
        let recording = finish(&rec, &[t2]);
        assert_eq!(recording.deps.len(), 1);
        let d = recording.deps[0];
        assert_eq!(d.w, Some(AccessId::new(t1, 1)));
        assert_eq!(d.r_tid, t2);
        assert_eq!((d.r_first, d.r_last), (1, 1));
    }

    #[test]
    fn prec_collapses_consecutive_reads_of_same_write() {
        let rec = LightRecorder::new(LightConfig::basic(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        write(&rec, t1, 1, field_loc());
        rec.on_thread_exit(t1);
        for c in 1..=10 {
            read(&rec, t2, c, field_loc());
        }
        let recording = finish(&rec, &[t2]);
        assert_eq!(recording.deps.len(), 1, "prec must collapse the reads");
        assert_eq!(recording.deps[0].r_first, 1);
        assert_eq!(recording.deps[0].r_last, 10);
    }

    #[test]
    fn o1_merges_across_own_writes() {
        let rec = LightRecorder::new(
            LightConfig { o1: true, o2: false },
            Default::default(),
            Default::default(),
        );
        let t = Tid::ROOT.child(0);
        // W R W R — non-interleaved same-thread sequence.
        write(&rec, t, 1, field_loc());
        read(&rec, t, 2, field_loc());
        write(&rec, t, 3, field_loc());
        read(&rec, t, 4, field_loc());
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.deps.len(), 0);
        assert_eq!(recording.runs.len(), 1);
        let run = &recording.runs[0];
        assert_eq!((run.first, run.last), (1, 4));
        assert_eq!(run.write_ctrs, vec![1, 3]);
    }

    #[test]
    fn basic_mode_splits_at_own_writes() {
        let rec = LightRecorder::new(LightConfig::basic(), Default::default(), Default::default());
        let t = Tid::ROOT.child(0);
        write(&rec, t, 1, field_loc());
        read(&rec, t, 2, field_loc());
        write(&rec, t, 3, field_loc());
        read(&rec, t, 4, field_loc());
        let recording = finish(&rec, &[t]);
        // Two single-write runs, each with its trailing read.
        assert_eq!(recording.runs.len(), 2);
        assert!(recording
            .runs
            .iter()
            .all(|r| r.write_ctrs.len() == 1));
    }

    #[test]
    fn interleaving_write_breaks_the_run() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        write(&rec, t1, 1, field_loc());
        read(&rec, t1, 2, field_loc());
        rec.on_thread_exit(t1);
        // t2 writes, then t1-style reads resume under t2's write: simulate
        // by reading from t1 again in a fresh buffer.
        write(&rec, t2, 1, field_loc());
        rec.on_thread_exit(t2);
        read(&rec, t1, 3, field_loc());
        let recording = finish(&rec, &[t1]);
        // t1's run [1,2]; then a dep t2.1 -> t1.3.
        assert_eq!(recording.runs.len(), 1);
        assert_eq!(recording.deps.len(), 1);
        assert_eq!(recording.deps[0].w, Some(AccessId::new(t2, 1)));
    }

    #[test]
    fn lone_blind_write_records_nothing() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t = Tid::ROOT.child(0);
        write(&rec, t, 1, field_loc());
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.deps.len(), 0);
        assert_eq!(recording.runs.len(), 0);
        assert_eq!(recording.space_longs(), 0);
    }

    #[test]
    fn initial_value_read_is_recorded_with_no_writer() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t = Tid::ROOT.child(0);
        read(&rec, t, 1, field_loc());
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.deps.len(), 1);
        assert_eq!(recording.deps[0].w, None);
    }

    #[test]
    fn o2_skips_guarded_fields() {
        let guarded: std::collections::HashSet<u32> = [0u32].into_iter().collect();
        let rec = LightRecorder::new(LightConfig::default(), guarded, Default::default());
        let t = Tid::ROOT.child(0);
        write(&rec, t, 1, field_loc());
        read(&rec, t, 2, field_loc());
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.deps.len() + recording.runs.len(), 0);
        assert_eq!(recording.stats.o2_skipped, 2);
    }

    #[test]
    fn monitor_events_become_ghost_dependences() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        let obj = ObjId(5);
        rec.on_sync(t1, 1, SyncEvent::MonitorEnter { obj }, iid());
        rec.on_sync(t1, 2, SyncEvent::MonitorExit { obj }, iid());
        rec.on_thread_exit(t1);
        rec.on_sync(t2, 1, SyncEvent::MonitorEnter { obj }, iid());
        rec.on_sync(t2, 2, SyncEvent::MonitorExit { obj }, iid());
        let recording = finish(&rec, &[t2]);
        // t1's enter+exit merge into one run; t2's enter depends on t1's
        // exit (directly or via its own run's w0).
        let t2_records_dep = recording
            .deps
            .iter()
            .any(|d| d.w == Some(AccessId::new(t1, 2)))
            || recording
                .runs
                .iter()
                .any(|r| r.w0 == Some(AccessId::new(t1, 2)));
        assert!(t2_records_dep, "{recording:?}");
    }

    #[test]
    fn nondet_values_are_collected_per_thread() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t = Tid::ROOT;
        rec.on_nondet(t, 11);
        rec.on_nondet(t, 22);
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.nondet[&t], vec![11, 22]);
        assert_eq!(recording.space_longs(), 2);
    }

    #[test]
    fn space_accounting_matches_records() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        write(&rec, t1, 1, field_loc());
        read(&rec, t1, 2, field_loc()); // run [1,2] with 1 write: 5 longs
        rec.on_thread_exit(t1);
        read(&rec, t2, 1, field_loc()); // dep: 4 longs
        let recording = finish(&rec, &[t2]);
        // run [1,2] with one write = 3 + 1; single-read dep = 2.
        assert_eq!(recording.space_longs(), 4 + 2);
    }

    /// Two locations in the same prec set stay open together under the
    /// N-way table: alternating reads collapse into one dep per location
    /// instead of thrashing.
    #[test]
    fn nway_prec_keeps_alternating_locations_open() {
        let rec = LightRecorder::new(LightConfig::basic(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        // Find two distinct locations that land in the same prec set.
        let a = Loc::Field(ObjId(1), FieldId(0));
        let set_a = TlsBuf::set_of(fine_hash(a.key()));
        let b = (2..10_000u32)
            .map(|o| Loc::Field(ObjId(o), FieldId(0)))
            .find(|l| TlsBuf::set_of(fine_hash(l.key())) == set_a)
            .expect("some object collides within 10k candidates");
        write(&rec, t1, 1, a);
        write(&rec, t1, 2, b);
        rec.on_thread_exit(t1);
        for i in 0..5u64 {
            read(&rec, t2, 2 * i + 1, a);
            read(&rec, t2, 2 * i + 2, b);
        }
        let recording = finish(&rec, &[t2]);
        assert_eq!(
            recording.deps.len(),
            2,
            "both locations must keep their open run: {recording:?}"
        );
        for d in &recording.deps {
            assert_eq!(d.r_last - d.r_first, 8, "each dep spans all 5 reads");
        }
    }

    /// Overflowing a set (5 locations, 4 ways) evicts deterministically
    /// and still records every dependence.
    #[test]
    fn prec_set_overflow_evicts_and_records_everything() {
        let rec = LightRecorder::new(LightConfig::basic(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        let a = Loc::Field(ObjId(1), FieldId(0));
        let set_a = TlsBuf::set_of(fine_hash(a.key()));
        let colliders: Vec<Loc> = (2..100_000u32)
            .map(|o| Loc::Field(ObjId(o), FieldId(0)))
            .filter(|l| TlsBuf::set_of(fine_hash(l.key())) == set_a)
            .take(RUN_WAYS)
            .collect();
        assert_eq!(colliders.len(), RUN_WAYS);
        let locs: Vec<Loc> = std::iter::once(a).chain(colliders).collect();
        for (i, &l) in locs.iter().enumerate() {
            write(&rec, t1, i as u64 + 1, l);
        }
        rec.on_thread_exit(t1);
        // Two round-robin sweeps over 5 same-set locations: each access
        // misses (the LRU way is always the next location), so every read
        // becomes its own dep — 10 in total, none lost.
        for sweep in 0..2u64 {
            for (i, &l) in locs.iter().enumerate() {
                read(&rec, t2, sweep * 5 + i as u64 + 1, l);
            }
        }
        let recording = finish(&rec, &[t2]);
        assert_eq!(recording.deps.len(), 10, "{recording:?}");
    }

    /// Growing the stripe count mid-record preserves every last-write
    /// entry (reads after the resize still see their writers) and
    /// re-buckets the contention histogram instead of dropping it: the
    /// histogram always sums to `stripe_contention`.
    #[test]
    fn stripe_resize_mid_record_preserves_lw_and_rebuckets_histogram() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        // Spread writes across many stripes so both split halves move.
        let locs: Vec<Loc> = (1..=300u32).map(|o| Loc::Field(ObjId(o), FieldId(0))).collect();
        for (i, &l) in locs.iter().enumerate() {
            write(&rec, t1, i as u64 + 1, l);
        }
        rec.on_thread_exit(t1);
        assert_eq!(rec.stripe_count(), STRIPE_COUNT);
        // Simulate contended acquisitions (deterministically — real
        // contention needs racing OS threads) before the resize...
        let key = locs[0].key();
        let fh = fine_hash(key);
        let idx_before = fh & (rec.stripe_count() - 1);
        rec.record_read(t2, 1, key, fh, idx_before, None, true, NO_SITE);
        // ...grow twice (256 -> 1024)...
        assert!(rec.grow_stripes());
        assert!(rec.grow_stripes());
        assert_eq!(rec.stripe_count(), 4 * STRIPE_COUNT);
        assert_eq!(rec.stripe_generation(), 2);
        assert_eq!(rec.stripe_resizes(), 2);
        // ...and tally contention on a post-resize index.
        let idx_after = fh & (rec.stripe_count() - 1);
        rec.record_read(t2, 2, key, fh, idx_after, None, true, NO_SITE);
        rec.on_thread_exit(t2);
        // Every writer must still be found under the grown layout.
        let t3 = Tid::ROOT.child(2);
        for (i, &l) in locs.iter().enumerate() {
            read(&rec, t3, i as u64 + 1, l);
        }
        let recording = finish(&rec, &[t3]);
        let resolved = recording
            .deps
            .iter()
            .filter(|d| d.r_tid == Tid::ROOT.child(2) && d.w.is_some())
            .count();
        assert_eq!(resolved, 300, "every last-write entry survived the split");
        assert_eq!(recording.stats.stripe_contention, 2);
        assert_eq!(
            recording.stripe_hist.iter().sum::<u64>(),
            recording.stats.stripe_contention,
            "histogram re-buckets across the resize: {:?}",
            recording.stripe_hist
        );
        assert!(recording.stripe_hist.len() > STRIPE_COUNT);
    }

    /// Forced adaptation walks the layout to the cap without changing
    /// recording bytes, and batch size does not change them either.
    #[test]
    fn tuning_variants_yield_identical_recording_bytes() {
        let record_with = |tuning: Option<RecorderTuning>| {
            let mut rec =
                LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
            if let Some(t) = tuning {
                rec = rec.with_tuning(t);
            }
            let t1 = Tid::ROOT.child(0);
            let t2 = Tid::ROOT.child(1);
            for i in 0..200u64 {
                write(&rec, t1, i + 1, Loc::Field(ObjId(i as u32 % 17 + 1), FieldId(0)));
            }
            rec.on_thread_exit(t1);
            for i in 0..200u64 {
                read(&rec, t2, i + 1, Loc::Field(ObjId(i as u32 % 17 + 1), FieldId(0)));
            }
            rec.on_nondet(t2, 42);
            let recording = finish(&rec, &[t2]);
            (crate::log::write_recording(&recording).to_vec(), rec)
        };
        let (baseline, _) = record_with(None);
        for tuning in [
            RecorderTuning { batch: 1, ..Default::default() },
            RecorderTuning { batch: 64, ..Default::default() },
            RecorderTuning { initial_stripes: 1024, adapt: StripeAdapt::Off, ..Default::default() },
            RecorderTuning { adapt: StripeAdapt::Force, batch: 16, ..Default::default() },
        ] {
            let (bytes, rec) = record_with(Some(tuning));
            assert_eq!(bytes, baseline, "tuning {tuning:?} changed the bytes");
            if tuning.adapt == StripeAdapt::Force {
                let resizes = rec.stripe_resizes();
                assert!(resizes >= 2, "forced adaptation fires at flush boundaries");
                assert_eq!(rec.stripe_count(), STRIPE_COUNT << resizes);
            }
            assert!(rec.batch_flushes() > 0);
        }
    }

    /// Real OS threads hammering private locations while the main thread
    /// forces stripe resizes: the recording's structure must be exact
    /// (one maximal run per thread), proving accessors and the split
    /// protocol never lose or duplicate a last-write entry under load.
    #[test]
    fn concurrent_accesses_survive_forced_resizes() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        const THREADS: usize = 8;
        const EVENTS: u64 = 1000;
        std::thread::scope(|scope| {
            for k in 0..THREADS {
                let rec = &rec;
                scope.spawn(move || {
                    let tid = Tid::ROOT.child(k as u32);
                    let loc = Loc::Field(ObjId(k as u32 + 1), FieldId(7));
                    write(rec, tid, 1, loc);
                    for c in 2..=EVENTS {
                        read(rec, tid, c, loc);
                    }
                    rec.on_thread_exit(tid);
                });
            }
            while rec.stripe_count() < MAX_STRIPE_COUNT {
                assert!(rec.grow_stripes());
            }
        });
        let recording = rec.take_recording(None, &[]);
        assert_eq!(recording.deps.len(), 0, "{recording:?}");
        assert_eq!(recording.runs.len(), THREADS);
        for r in &recording.runs {
            assert_eq!((r.first, r.last), (1, EVENTS));
            assert_eq!(r.write_ctrs, vec![1]);
        }
        assert_eq!(recording.stats.retries, 0);
    }
}
