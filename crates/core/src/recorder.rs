//! The Light recording algorithm (paper Algorithm 1 plus the Section 4.3
//! extensions and optimizations).
//!
//! - **Last-write map with lock striping.** Writes execute inside an atomic
//!   block that also updates the location's last write (`lw ← c`);
//!   atomicity uses 256 pre-allocated striped locks, as in the paper.
//!   Stripe acquisition tries the non-blocking path first and counts the
//!   times it had to block ([`RecordStats::stripe_contention`]).
//! - **Read matching under the shared stripe side.** A read holds the
//!   stripe's read lock across the load, giving the same atomicity as
//!   Section 2.3's optimistic `lw`-resample loop without retries (so
//!   `RecordStats::retries` stays 0 on this substrate); concurrent
//!   readers still proceed in parallel.
//! - **Thread-local dependence buffers.** Detected dependences are pushed
//!   into per-OS-thread buffers with *no synchronization*, merged only at
//!   thread exit (the paper's key cost saving over Leap/Stride).
//! - **`prec` + O1 (Lemma 4.3).** Consecutive same-thread accesses to a
//!   location whose observed last write stays within the sequence collapse
//!   into a single record (a [`DepEdge`] read range or a [`RunRec`]).
//! - **O2 (Lemma 4.2).** Accesses to statically lock-guarded locations are
//!   not recorded at all; the monitor ghost dependences subsume them.
//! - **Synchronization as ghost accesses (Section 4.3).** Monitor
//!   enter/exit, wait/notify and thread start/join/end are modeled as
//!   reads/writes of ghost locations and flow through the same machinery,
//!   so lock orders are captured as flow dependences.

use crate::fastmap::FastMap;
use crate::recording::{AccessId, DepEdge, Recording, RecordStats, RunRec, SignalEdge};
use light_obs::{mem, Flight, FlightKind, NO_SITE};
use light_runtime::{AccessKind, Loc, Recorder, SyncEvent, Tid};
use lir::InstrId;
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const STRIPES: usize = 256;

/// The last-write-map stripe a location key hashes to (a multiplicative
/// hash on the key, as the paper hashes on the field offset). Exposed so
/// post-mortem tooling (`light-profile`, `light-inspect`) attributes
/// contention to the same stripes the recorder locked.
pub fn stripe_of(key: u64) -> usize {
    let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48;
    (h as usize) % STRIPES
}

/// Number of last-write-map stripes (the paper's 256 striped locks).
pub const STRIPE_COUNT: usize = STRIPES;

/// Packs an access id into one word for the last-write table: 24 bits of
/// thread id, 40 bits of counter. Checked in debug builds; the limits are
/// far beyond any workload in this repository.
fn pack(id: AccessId) -> u64 {
    debug_assert!(id.tid.raw() < (1 << 24) && id.ctr < (1 << 40));
    (id.tid.raw() << 40) | id.ctr
}

fn unpack(packed: u64) -> AccessId {
    AccessId::new(Tid::from_raw(packed >> 40), packed & ((1 << 40) - 1))
}

/// Variant configuration (Section 5.4's `V_basic` / `V_O1` / `V_both`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LightConfig {
    /// O1: merge same-thread non-interleaved sequences across writes.
    /// When off, only Algorithm 1's `prec` read-collapsing applies.
    pub o1: bool,
    /// O2: skip recording for consistently lock-guarded locations.
    pub o2: bool,
}

impl Default for LightConfig {
    fn default() -> Self {
        Self { o1: true, o2: true }
    }
}

impl LightConfig {
    /// Algorithm 1 only (`V_basic`).
    pub fn basic() -> Self {
        Self {
            o1: false,
            o2: false,
        }
    }

    /// Algorithm 1 + O1 (`V_O1`).
    pub fn o1_only() -> Self {
        Self { o1: true, o2: false }
    }
}

struct OpenRun {
    loc: u64,
    w0: Option<AccessId>,
    first: u64,
    last: u64,
    own_last_write: Option<u64>,
    write_ctrs: Vec<u64>,
    /// Packed instruction site ([`InstrId::pack`]) of the access that
    /// opened the run — the flight recorder's attribution anchor for the
    /// eventual dep/run record. [`light_obs::NO_SITE`] for ghost events
    /// reported without a site.
    site: u64,
}

#[derive(Default)]
struct TlsBuf {
    recorder_id: u64,
    tid: Tid,
    deps: Vec<DepEdge>,
    runs: Vec<RunRec>,
    signals: Vec<SignalEdge>,
    nondet: Vec<i64>,
    /// Direct-mapped table of open runs (the `prec` state of Algorithm 1
    /// plus O1's open sequences). Fixed-size: a colliding location evicts
    /// the previous occupant by closing its run. This bounds the
    /// per-access cost at a small constant regardless of footprint.
    slots: Vec<Option<OpenRun>>,
    retries: u64,
    o2_skipped: u64,
    stripe_contention: u64,
    /// Per-stripe breakdown of `stripe_contention`; allocated lazily on
    /// the first contended access (zero cost for uncontended runs).
    stripe_hits: Vec<u64>,
    max_ctr: u64,
    spilled_deps: u64,
    spilled_runs: u64,
    spilled_words: u64,
    /// The recorder's flight handle, cloned in at buffer init so the
    /// static close-run path can emit without a recorder reference.
    flight: Flight,
}

const RUN_SLOTS: usize = 256;

impl TlsBuf {
    fn slot_of(key: u64) -> usize {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 56) as usize % RUN_SLOTS
    }

    /// Returns the slot index for `key`, evicting (closing) a colliding
    /// occupant first.
    fn focus(&mut self, key: u64) -> usize {
        if self.slots.is_empty() {
            self.slots = (0..RUN_SLOTS).map(|_| None).collect();
        }
        let idx = Self::slot_of(key);
        let evict = matches!(&self.slots[idx], Some(run) if run.loc != key);
        if evict {
            let old = self.slots[idx].take().expect("matched above");
            LightRecorder::close_run(self, old);
        }
        idx
    }
}

thread_local! {
    static TLS: RefCell<Option<TlsBuf>> = const { RefCell::new(None) };
}

#[derive(Default)]
struct Central {
    deps: Vec<DepEdge>,
    runs: Vec<RunRec>,
    signals: Vec<SignalEdge>,
    nondet: HashMap<Tid, Vec<i64>>,
    retries: u64,
    o2_skipped: u64,
    stripe_contention: u64,
    stripe_hits: Vec<u64>,
    extents: HashMap<Tid, u64>,
    spilled_deps: u64,
    spilled_runs: u64,
    spilled_words: u64,
}

static RECORDER_IDS: AtomicU64 = AtomicU64::new(1);

/// The Light recorder: plug into
/// [`light_runtime::ExecConfig::recorder`] for the original run.
pub struct LightRecorder {
    id: u64,
    config: LightConfig,
    /// Fields whose accesses O2 elides (raw `FieldId`s).
    guarded_fields: std::collections::HashSet<u32>,
    /// Globals whose accesses O2 elides (raw `GlobalId`s).
    guarded_globals: std::collections::HashSet<u32>,
    /// Last-write map: location key -> packed access id. Reads take the
    /// shared side of the stripe's `RwLock` (the paper's volatile read);
    /// writes take the exclusive side (the paper's striped atomic block).
    lw: Vec<RwLock<FastMap<u64, u64>>>,
    central: Mutex<Central>,
    /// Optional disk sink: thread-local buffers flush here when they reach
    /// `spill_threshold` records (the paper's measurement configuration).
    spill: Option<Arc<crate::spill::SpillSink>>,
    spill_threshold: usize,
    /// Flight-recorder handle; disabled by default. When a sink is
    /// attached the recorder emits one compact event per recorded
    /// dependence/run, prec hit, O1 merge, O2 elision, stripe block, and
    /// ghost op. Recording *content* is unaffected either way — logs stay
    /// byte-identical with or without a sink.
    flight: Flight,
    /// Byte gauges for the dependence log ([`mem::subsystem::RECORDER_LOG`])
    /// and the last-write map ([`mem::subsystem::LW_MAP`]). Accounting
    /// happens only at ownership-transfer boundaries — TLS merge at thread
    /// exit, recording handoff — never on the per-access hot path, and the
    /// handles are no-ops when the global registry is disabled. Recording
    /// *content* is unaffected: logs stay byte-identical with gauges on.
    mem_log: mem::MemGauge,
    mem_lw: mem::MemGauge,
    /// Bytes this recorder instance has added to each (globally shared)
    /// gauge, so deltas and `Drop` unwind exactly our own contribution.
    mem_log_owned: AtomicU64,
    mem_lw_owned: AtomicU64,
}

/// Estimated resident heap bytes for one last-write-map entry: the
/// key/value pair plus one byte of hash-table control metadata.
const LW_ENTRY_BYTES: u64 = (std::mem::size_of::<(u64, u64)>() + 1) as u64;

/// Heap bytes resident in a batch of log records, by one fixed cost
/// model: structure size for fixed-width records plus 8 bytes per
/// interior write counter / nondet long. Applied identically when a TLS
/// batch merges into the central log (`add`) and when the recording is
/// taken (`sub`), so the recorder-log gauge drains back to zero at
/// handoff.
fn log_record_bytes(deps: usize, runs: &[RunRec], signals: usize, nondet_longs: usize) -> u64 {
    let run_bytes: u64 = runs
        .iter()
        .map(|r| (std::mem::size_of::<RunRec>() + r.write_ctrs.len() * 8) as u64)
        .sum();
    deps as u64 * std::mem::size_of::<DepEdge>() as u64
        + run_bytes
        + signals as u64 * std::mem::size_of::<SignalEdge>() as u64
        + nondet_longs as u64 * 8
}

impl LightRecorder {
    /// Creates a recorder. `guarded_*` come from the lockset analysis and
    /// are ignored unless `config.o2` is set.
    pub fn new(
        config: LightConfig,
        guarded_fields: std::collections::HashSet<u32>,
        guarded_globals: std::collections::HashSet<u32>,
    ) -> Arc<Self> {
        Arc::new(Self {
            id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
            guarded_fields: if config.o2 {
                guarded_fields
            } else {
                Default::default()
            },
            guarded_globals: if config.o2 {
                guarded_globals
            } else {
                Default::default()
            },
            config,
            lw: (0..STRIPES).map(|_| RwLock::new(FastMap::default())).collect(),
            central: Mutex::new(Central::default()),
            spill: None,
            spill_threshold: 4096,
            flight: Flight::disabled(),
            mem_log: mem::handle(mem::subsystem::RECORDER_LOG),
            mem_lw: mem::handle(mem::subsystem::LW_MAP),
            mem_log_owned: AtomicU64::new(0),
            mem_lw_owned: AtomicU64::new(0),
        })
    }

    /// Re-measures the last-write map (stripe capacities, not lengths:
    /// reserved-but-empty table space is still resident) and moves the
    /// shared gauge by the delta from our previous measurement. Called
    /// only on cold paths (thread exit, recording handoff).
    fn update_lw_gauge(&self) {
        if !self.mem_lw.enabled() {
            return;
        }
        let now: u64 = self
            .lw
            .iter()
            .map(|s| s.read().capacity() as u64 * LW_ENTRY_BYTES)
            .sum();
        let old = self.mem_lw_owned.swap(now, Ordering::Relaxed);
        if now >= old {
            self.mem_lw.add(now - old);
        } else {
            self.mem_lw.sub(old - now);
        }
    }

    /// Attaches a flight-recorder handle. Like [`LightRecorder::with_spill`]
    /// this must be called before the recorder is shared.
    pub fn with_flight(self: Arc<Self>, flight: Flight) -> Arc<Self> {
        let mut inner = Arc::try_unwrap(self).unwrap_or_else(|_| {
            panic!("with_flight must be called before sharing the recorder")
        });
        inner.flight = flight;
        Arc::new(inner)
    }

    /// Enables spill-to-disk: thread-local buffers flush to `sink` when
    /// they reach `threshold` records and are dropped from memory. Space
    /// statistics still account for everything. See [`crate::spill`].
    pub fn with_spill(
        self: Arc<Self>,
        sink: Arc<crate::spill::SpillSink>,
        threshold: usize,
    ) -> Arc<Self> {
        let mut inner = Arc::try_unwrap(self).unwrap_or_else(|_| {
            panic!("with_spill must be called before sharing the recorder")
        });
        inner.spill = Some(sink);
        inner.spill_threshold = threshold.max(1);
        Arc::new(inner)
    }

    /// Flushes (and drops) a TLS buffer's records to the spill sink,
    /// keeping only counters. Called when the buffer exceeds the spill
    /// threshold, and at thread exit.
    fn spill_buf(&self, buf: &mut TlsBuf) {
        let Some(sink) = &self.spill else { return };
        let mut words: Vec<u64> = Vec::with_capacity(buf.deps.len() * 3 + buf.runs.len() * 4);
        for d in buf.deps.drain(..) {
            words.push(d.w.map(pack).unwrap_or(u64::MAX));
            words.push(pack(AccessId::new(d.r_tid, d.r_first)));
            if d.r_last != d.r_first {
                words.push(d.r_last);
            }
            buf.spilled_deps += 1;
        }
        for r in buf.runs.drain(..) {
            words.push(r.w0.map(pack).unwrap_or(u64::MAX));
            words.push(pack(AccessId::new(r.tid, r.first)));
            words.push(r.last);
            words.extend(r.write_ctrs.iter().copied());
            buf.spilled_runs += 1;
        }
        buf.spilled_words += words.len() as u64;
        sink.write_longs(&words);
    }

    /// Extracts the recording after the run completes (all LIR threads
    /// have exited and flushed their buffers).
    pub fn take_recording(
        &self,
        fault: Option<light_runtime::FaultReport>,
        args: &[i64],
    ) -> Recording {
        let central = std::mem::take(&mut *self.central.lock());
        if self.mem_log.enabled() {
            // Same cost model as the thread-exit merge, so the gauge
            // drains to zero once every thread's batch is handed off.
            // min-guarded against ever subtracting more than we added.
            let nondet_longs: usize = central.nondet.values().map(Vec::len).sum();
            let drained = log_record_bytes(
                central.deps.len(),
                &central.runs,
                central.signals.len(),
                nondet_longs,
            );
            let owned = self.mem_log_owned.load(Ordering::Relaxed);
            let sub = drained.min(owned);
            self.mem_log.sub(sub);
            self.mem_log_owned.fetch_sub(sub, Ordering::Relaxed);
        }
        self.update_lw_gauge();
        // Long-integer units, assuming the same per-location grouped log
        // layout Leap's unit (1 long per access) assumes: a dependence is
        // the packed writer id plus the reader counter (+1 when the prec
        // range end differs); a run is w0 + endpoints + its interior write
        // counters.
        let mut space = 0u64;
        for d in &central.deps {
            space += 2 + u64::from(d.r_last != d.r_first);
        }
        for r in &central.runs {
            space += 3 + r.write_ctrs.len() as u64;
        }
        space += central.signals.len() as u64 * 2;
        space += central.nondet.values().map(|v| v.len() as u64).sum::<u64>();
        space += central.spilled_words;
        let stats = RecordStats {
            space_longs: space,
            deps: central.deps.len() as u64 + central.spilled_deps,
            runs: central.runs.len() as u64 + central.spilled_runs,
            retries: central.retries,
            o2_skipped: central.o2_skipped,
            stripe_contention: central.stripe_contention,
        };
        Recording {
            deps: central.deps,
            runs: central.runs,
            signals: central.signals,
            nondet: central.nondet,
            thread_extents: central.extents,
            fault,
            args: args.to_vec(),
            stats,
            provenance: None,
            stripe_hist: central.stripe_hits,
        }
    }

    fn stripe(&self, key: u64) -> &RwLock<FastMap<u64, u64>> {
        &self.lw[stripe_of(key)]
    }

    /// Read-locks `key`'s stripe, trying the non-blocking path first.
    /// The second tuple element is `true` when the thread had to block.
    fn stripe_read(&self, key: u64) -> (parking_lot::RwLockReadGuard<'_, FastMap<u64, u64>>, bool) {
        let stripe = self.stripe(key);
        match stripe.try_read() {
            Some(guard) => (guard, false),
            None => (stripe.read(), true),
        }
    }

    /// Write-locks `key`'s stripe, trying the non-blocking path first.
    fn stripe_write(
        &self,
        key: u64,
    ) -> (parking_lot::RwLockWriteGuard<'_, FastMap<u64, u64>>, bool) {
        let stripe = self.stripe(key);
        match stripe.try_write() {
            Some(guard) => (guard, false),
            None => (stripe.write(), true),
        }
    }

    fn lw_get(&self, key: u64) -> (Option<AccessId>, bool) {
        let (shard, contended) = self.stripe_read(key);
        (shard.get(&key).copied().map(unpack), contended)
    }

    /// Advances `tid`'s recorded event frontier without recording anything
    /// else. Wrapper recorders that deliberately skip some events (e.g. the
    /// sync-only Chimera recorder) must still report every counted event
    /// here, or replay would park threads before their true frontier.
    pub fn note_event(&self, tid: Tid, ctr: u64) {
        self.with_tls(tid, |buf| buf.max_ctr = buf.max_ctr.max(ctr));
    }

    fn with_tls<R>(&self, tid: Tid, f: impl FnOnce(&mut TlsBuf) -> R) -> R {
        TLS.with(|cell| {
            let mut slot = cell.borrow_mut();
            let needs_init = match slot.as_ref() {
                Some(buf) => buf.recorder_id != self.id || buf.tid != tid,
                None => true,
            };
            if needs_init {
                *slot = Some(TlsBuf {
                    recorder_id: self.id,
                    tid,
                    flight: self.flight.clone(),
                    ..TlsBuf::default()
                });
            }
            f(slot.as_mut().expect("initialized above"))
        })
    }

    fn maybe_spill(&self, buf: &mut TlsBuf) {
        if self.spill.is_some() && buf.deps.len() + buf.runs.len() >= self.spill_threshold {
            self.spill_buf(buf);
        }
    }

    fn close_run(buf: &mut TlsBuf, mut run: OpenRun) {
        if run.write_ctrs.is_empty() {
            // Same long-word cost model as `take_recording`'s accounting.
            let cost = 2 + u64::from(run.last != run.first);
            buf.flight.emit(
                FlightKind::DepRecorded,
                buf.tid.raw(),
                run.site,
                run.loc,
                cost,
            );
            buf.deps.push(DepEdge {
                loc: run.loc,
                w: run.w0,
                r_tid: buf.tid,
                r_first: run.first,
                r_last: run.last,
            });
            return;
        }
        // Ghost locations (monitors, thread lifecycles): every operation
        // updates the last-write word, so a foreign dependence can only
        // ever target the run's *last* own write — interior write counters
        // are useless for dependence splitting, and ghost events are never
        // blind-suppressed, so the replay allow-list is unnecessary too.
        // Keep only the first and last own writes (used by the constraint
        // generator's unit rules): a merged lock-region sequence then costs
        // O(1) space however long it ran (Lemma 4.3 at full strength).
        let is_ghost = matches!(run.loc & 7, 4 | 5);
        if is_ghost && run.write_ctrs.len() > 2 {
            let first = *run.write_ctrs.first().expect("nonempty");
            let last = *run.write_ctrs.last().expect("nonempty");
            run.write_ctrs = vec![first, last];
        }
        // A lone write with no observed readers of its own and no external
        // source is a blind-write candidate: record nothing. If a foreign
        // reader depends on it, the reader's own dependence record keeps it
        // alive in the replay schedule.
        if run.w0.is_none() && run.write_ctrs.len() == 1 && run.first == run.last {
            return;
        }
        let cost = 3 + run.write_ctrs.len() as u64;
        buf.flight.emit(
            FlightKind::RunRecorded,
            buf.tid.raw(),
            run.site,
            run.loc,
            cost,
        );
        buf.runs.push(RunRec {
            loc: run.loc,
            tid: buf.tid,
            w0: run.w0,
            first: run.first,
            last: run.last,
            write_ctrs: run.write_ctrs,
        });
    }

    /// Whether `lw` (the observed last write) belongs to the open run.
    fn continues(buf_tid: Tid, run: &OpenRun, lw: Option<AccessId>) -> bool {
        match run.own_last_write {
            Some(w) => lw == Some(AccessId::new(buf_tid, w)),
            None => lw == run.w0,
        }
    }

    /// Tallies one contended stripe acquisition (total + per-stripe) and
    /// emits the flight event.
    fn note_contention(&self, buf: &mut TlsBuf, key: u64, site: u64) {
        buf.stripe_contention += 1;
        if buf.stripe_hits.is_empty() {
            buf.stripe_hits = vec![0; STRIPES];
        }
        let stripe = stripe_of(key);
        buf.stripe_hits[stripe] += 1;
        self.flight
            .emit(FlightKind::StripeBlocked, buf.tid.raw(), site, key, stripe as u64);
    }

    fn record_read(
        &self,
        tid: Tid,
        ctr: u64,
        key: u64,
        lw: Option<AccessId>,
        contended: bool,
        site: u64,
    ) {
        self.with_tls(tid, |buf| {
            buf.max_ctr = buf.max_ctr.max(ctr);
            if contended {
                self.note_contention(buf, key, site);
            }
            let idx = buf.focus(key);
            if let Some(run) = &mut buf.slots[idx] {
                if Self::continues(tid, run, lw) {
                    run.last = ctr;
                    self.flight.emit(FlightKind::PrecHit, tid.raw(), site, key, 1);
                    return;
                }
                let closed = buf.slots[idx].take().expect("checked");
                Self::close_run(buf, closed);
            }
            buf.slots[idx] = Some(OpenRun {
                loc: key,
                w0: lw,
                first: ctr,
                last: ctr,
                own_last_write: None,
                write_ctrs: Vec::new(),
                site,
            });
            self.maybe_spill(buf);
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn record_write(
        &self,
        tid: Tid,
        ctr: u64,
        key: u64,
        prev: Option<AccessId>,
        reads: bool,
        contended: bool,
        site: u64,
    ) {
        self.with_tls(tid, |buf| {
            buf.max_ctr = buf.max_ctr.max(ctr);
            if contended {
                self.note_contention(buf, key, site);
            }
            let extend = self.config.o1 || reads;
            let idx = buf.focus(key);
            if let Some(run) = &mut buf.slots[idx] {
                if extend && Self::continues(tid, run, prev) {
                    run.last = ctr;
                    run.own_last_write = Some(ctr);
                    run.write_ctrs.push(ctr);
                    self.flight.emit(FlightKind::O1Merge, tid.raw(), site, key, 1);
                    return;
                }
                let closed = buf.slots[idx].take().expect("checked");
                Self::close_run(buf, closed);
            }
            buf.slots[idx] = Some(OpenRun {
                loc: key,
                w0: if reads { prev } else { None },
                first: ctr,
                last: ctr,
                own_last_write: Some(ctr),
                write_ctrs: vec![ctr],
                site,
            });
            self.maybe_spill(buf);
        });
    }

    /// Ghost read-modify-write used by monitor/thread events: updates the
    /// last write under the stripe lock and records the dependence.
    fn ghost_rw(&self, tid: Tid, ctr: u64, key: u64, site: u64) {
        let me = AccessId::new(tid, ctr);
        let (mut shard, contended) = self.stripe_write(key);
        let prev = shard.insert(key, pack(me)).map(unpack);
        drop(shard);
        self.record_write(tid, ctr, key, prev, true, contended, site);
    }

    fn ghost_write(&self, tid: Tid, ctr: u64, key: u64, site: u64) {
        let me = AccessId::new(tid, ctr);
        let (mut shard, contended) = self.stripe_write(key);
        let prev = shard.insert(key, pack(me)).map(unpack);
        drop(shard);
        self.record_write(tid, ctr, key, prev, false, contended, site);
    }

    fn ghost_read(&self, tid: Tid, ctr: u64, key: u64, site: u64) {
        let (lw, contended) = self.lw_get(key);
        self.record_read(tid, ctr, key, lw, contended, site);
    }

    fn is_guarded(&self, loc: &Loc) -> bool {
        match loc {
            Loc::Field(_, f) => self.guarded_fields.contains(&f.0),
            Loc::Global(g) => self.guarded_globals.contains(&g.0),
            _ => false,
        }
    }
}

impl Recorder for LightRecorder {
    fn on_access(
        &self,
        tid: Tid,
        ctr: u64,
        loc: Loc,
        kind: AccessKind,
        guarded: bool,
        instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        // Packed only when a flight sink is listening: `InstrId::pack` is a
        // couple of shifts, but the disabled path stays branch-only.
        let site = if self.flight.enabled() {
            instr.pack()
        } else {
            NO_SITE
        };
        if (guarded && self.config.o2) || self.is_guarded(&loc) {
            // O2: the lock ghost dependences subsume this location.
            self.with_tls(tid, |buf| {
                buf.o2_skipped += 1;
                buf.max_ctr = buf.max_ctr.max(ctr);
            });
            self.flight
                .emit(FlightKind::O2Elision, tid.raw(), site, loc.key(), 1);
            return op();
        }
        let key = loc.key();
        let me = AccessId::new(tid, ctr);
        match kind {
            AccessKind::Read => {
                // The paper's optimistic retry loop validates that `lw` is
                // unchanged across the load. On this substrate shared
                // read-locks are cheap, so the same atomicity comes from
                // holding the stripe's read side across the load: writers
                // (who update `lw` under the write side) cannot interleave,
                // while concurrent readers still proceed in parallel.
                let (value, lw, contended) = {
                    let (shard, contended) = self.stripe_read(key);
                    let v = op();
                    (v, shard.get(&key).copied().map(unpack), contended)
                };
                self.record_read(tid, ctr, key, lw, contended, site);
                value
            }
            AccessKind::Write => {
                // atomic { o.f = v ; lw ← c } under the stripe lock.
                let (value, prev, contended) = {
                    let (mut shard, contended) = self.stripe_write(key);
                    let v = op();
                    let prev = shard.insert(key, pack(me));
                    (v, prev.map(unpack), contended)
                };
                self.record_write(tid, ctr, key, prev, false, contended, site);
                value
            }
            AccessKind::ReadWrite => {
                let (value, prev, contended) = {
                    let (mut shard, contended) = self.stripe_write(key);
                    let prev = shard.get(&key).copied().map(unpack);
                    let v = op();
                    shard.insert(key, pack(me));
                    (v, prev, contended)
                };
                self.record_write(tid, ctr, key, prev, true, contended, site);
                value
            }
        }
    }

    fn on_sync(&self, tid: Tid, ctr: u64, ev: SyncEvent, instr: InstrId) {
        let site = if self.flight.enabled() {
            instr.pack()
        } else {
            NO_SITE
        };
        // One GhostOp flight event per sync operation, with a small code
        // distinguishing the operation class (aux).
        let ghost = |key: u64, code: u64| {
            self.flight.emit(FlightKind::GhostOp, tid.raw(), site, key, code);
        };
        match ev {
            SyncEvent::MonitorEnter { obj } | SyncEvent::Notify { obj, .. } => {
                let key = Loc::Monitor(obj).key();
                ghost(key, 0);
                self.ghost_rw(tid, ctr, key, site);
            }
            SyncEvent::MonitorExit { obj } | SyncEvent::WaitBefore { obj } => {
                let key = Loc::Monitor(obj).key();
                ghost(key, 1);
                self.ghost_write(tid, ctr, key, site);
            }
            SyncEvent::WaitAfter { obj, notifier } => {
                let key = Loc::Monitor(obj).key();
                ghost(key, 2);
                self.ghost_rw(tid, ctr, key, site);
                if let Some((ntid, nctr)) = notifier {
                    self.with_tls(tid, |buf| {
                        buf.signals.push(SignalEdge {
                            notify: AccessId::new(ntid, nctr),
                            wait_after: AccessId::new(tid, ctr),
                        });
                    });
                }
            }
            SyncEvent::Spawn { child } => {
                let key = Loc::ThreadLife(child).key();
                ghost(key, 3);
                self.ghost_write(tid, ctr, key, site);
            }
            SyncEvent::ThreadStart { .. } => {
                let key = Loc::ThreadLife(tid).key();
                ghost(key, 4);
                self.ghost_read(tid, ctr, key, site);
            }
            SyncEvent::Join { child, .. } => {
                let key = Loc::ThreadLife(child).key();
                ghost(key, 5);
                self.ghost_read(tid, ctr, key, site);
            }
            SyncEvent::ThreadEnd => {
                let key = Loc::ThreadLife(tid).key();
                ghost(key, 6);
                self.ghost_write(tid, ctr, key, site);
            }
        }
    }

    fn on_nondet(&self, tid: Tid, value: i64) {
        self.with_tls(tid, |buf| buf.nondet.push(value));
    }

    fn on_thread_exit(&self, tid: Tid) {
        let buf = TLS.with(|cell| cell.borrow_mut().take());
        let Some(mut buf) = buf else { return };
        if buf.recorder_id != self.id {
            return;
        }
        let open: Vec<OpenRun> = buf.slots.iter_mut().filter_map(Option::take).collect();
        for run in open {
            Self::close_run(&mut buf, run);
        }
        if self.spill.is_some() {
            self.spill_buf(&mut buf);
        }
        // Account the batch once, at the ownership-transfer boundary —
        // never per record on the hot path. Spilled records were already
        // handed to disk and are deliberately not resident here.
        let merged_bytes = if self.mem_log.enabled() {
            log_record_bytes(buf.deps.len(), &buf.runs, buf.signals.len(), buf.nondet.len())
        } else {
            0
        };
        let mut central = self.central.lock();
        central.deps.append(&mut buf.deps);
        central.runs.append(&mut buf.runs);
        central.signals.append(&mut buf.signals);
        if !buf.nondet.is_empty() {
            central.nondet.insert(tid, std::mem::take(&mut buf.nondet));
        }
        central.retries += buf.retries;
        central.o2_skipped += buf.o2_skipped;
        central.stripe_contention += buf.stripe_contention;
        if !buf.stripe_hits.is_empty() {
            if central.stripe_hits.is_empty() {
                central.stripe_hits = vec![0; STRIPES];
            }
            for (c, h) in central.stripe_hits.iter_mut().zip(&buf.stripe_hits) {
                *c += h;
            }
        }
        central.extents.insert(tid, buf.max_ctr);
        central.spilled_deps += buf.spilled_deps;
        central.spilled_runs += buf.spilled_runs;
        central.spilled_words += buf.spilled_words;
        drop(central);
        if merged_bytes > 0 {
            self.mem_log.add(merged_bytes);
            self.mem_log_owned.fetch_add(merged_bytes, Ordering::Relaxed);
        }
        self.update_lw_gauge();
    }
}

impl Drop for LightRecorder {
    fn drop(&mut self) {
        // Unwind exactly what this instance contributed: the gauges are
        // shared process-wide, and other recorders may still be live.
        self.mem_log.sub(self.mem_log_owned.swap(0, Ordering::Relaxed));
        self.mem_lw.sub(self.mem_lw_owned.swap(0, Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_runtime::ObjId;
    use lir::{BlockId, FieldId, FuncId};

    fn iid() -> InstrId {
        InstrId {
            func: FuncId(0),
            block: BlockId(0),
            idx: 0,
        }
    }

    fn field_loc() -> Loc {
        Loc::Field(ObjId(1), FieldId(0))
    }

    fn read(rec: &LightRecorder, tid: Tid, ctr: u64, loc: Loc) -> u64 {
        rec.on_access(tid, ctr, loc, AccessKind::Read, false, iid(), &mut || 7)
    }

    fn write(rec: &LightRecorder, tid: Tid, ctr: u64, loc: Loc) -> u64 {
        rec.on_access(tid, ctr, loc, AccessKind::Write, false, iid(), &mut || 7)
    }

    fn finish(rec: &LightRecorder, tids: &[Tid]) -> Recording {
        for &t in tids {
            rec.on_thread_exit(t);
        }
        rec.take_recording(None, &[])
    }

    /// NOTE: these unit tests drive the recorder from a single OS thread,
    /// simulating multiple LIR threads by flushing between switches (the
    /// TLS buffer is re-keyed per tid by `with_tls`).
    #[test]
    fn cross_thread_dependence_is_recorded() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        write(&rec, t1, 1, field_loc());
        rec.on_thread_exit(t1);
        read(&rec, t2, 1, field_loc());
        let recording = finish(&rec, &[t2]);
        assert_eq!(recording.deps.len(), 1);
        let d = recording.deps[0];
        assert_eq!(d.w, Some(AccessId::new(t1, 1)));
        assert_eq!(d.r_tid, t2);
        assert_eq!((d.r_first, d.r_last), (1, 1));
    }

    #[test]
    fn prec_collapses_consecutive_reads_of_same_write() {
        let rec = LightRecorder::new(LightConfig::basic(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        write(&rec, t1, 1, field_loc());
        rec.on_thread_exit(t1);
        for c in 1..=10 {
            read(&rec, t2, c, field_loc());
        }
        let recording = finish(&rec, &[t2]);
        assert_eq!(recording.deps.len(), 1, "prec must collapse the reads");
        assert_eq!(recording.deps[0].r_first, 1);
        assert_eq!(recording.deps[0].r_last, 10);
    }

    #[test]
    fn o1_merges_across_own_writes() {
        let rec = LightRecorder::new(
            LightConfig { o1: true, o2: false },
            Default::default(),
            Default::default(),
        );
        let t = Tid::ROOT.child(0);
        // W R W R — non-interleaved same-thread sequence.
        write(&rec, t, 1, field_loc());
        read(&rec, t, 2, field_loc());
        write(&rec, t, 3, field_loc());
        read(&rec, t, 4, field_loc());
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.deps.len(), 0);
        assert_eq!(recording.runs.len(), 1);
        let run = &recording.runs[0];
        assert_eq!((run.first, run.last), (1, 4));
        assert_eq!(run.write_ctrs, vec![1, 3]);
    }

    #[test]
    fn basic_mode_splits_at_own_writes() {
        let rec = LightRecorder::new(LightConfig::basic(), Default::default(), Default::default());
        let t = Tid::ROOT.child(0);
        write(&rec, t, 1, field_loc());
        read(&rec, t, 2, field_loc());
        write(&rec, t, 3, field_loc());
        read(&rec, t, 4, field_loc());
        let recording = finish(&rec, &[t]);
        // Two single-write runs, each with its trailing read.
        assert_eq!(recording.runs.len(), 2);
        assert!(recording
            .runs
            .iter()
            .all(|r| r.write_ctrs.len() == 1));
    }

    #[test]
    fn interleaving_write_breaks_the_run() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        write(&rec, t1, 1, field_loc());
        read(&rec, t1, 2, field_loc());
        rec.on_thread_exit(t1);
        // t2 writes, then t1-style reads resume under t2's write: simulate
        // by reading from t1 again in a fresh buffer.
        write(&rec, t2, 1, field_loc());
        rec.on_thread_exit(t2);
        read(&rec, t1, 3, field_loc());
        let recording = finish(&rec, &[t1]);
        // t1's run [1,2]; then a dep t2.1 -> t1.3.
        assert_eq!(recording.runs.len(), 1);
        assert_eq!(recording.deps.len(), 1);
        assert_eq!(recording.deps[0].w, Some(AccessId::new(t2, 1)));
    }

    #[test]
    fn lone_blind_write_records_nothing() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t = Tid::ROOT.child(0);
        write(&rec, t, 1, field_loc());
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.deps.len(), 0);
        assert_eq!(recording.runs.len(), 0);
        assert_eq!(recording.space_longs(), 0);
    }

    #[test]
    fn initial_value_read_is_recorded_with_no_writer() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t = Tid::ROOT.child(0);
        read(&rec, t, 1, field_loc());
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.deps.len(), 1);
        assert_eq!(recording.deps[0].w, None);
    }

    #[test]
    fn o2_skips_guarded_fields() {
        let guarded: std::collections::HashSet<u32> = [0u32].into_iter().collect();
        let rec = LightRecorder::new(LightConfig::default(), guarded, Default::default());
        let t = Tid::ROOT.child(0);
        write(&rec, t, 1, field_loc());
        read(&rec, t, 2, field_loc());
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.deps.len() + recording.runs.len(), 0);
        assert_eq!(recording.stats.o2_skipped, 2);
    }

    #[test]
    fn monitor_events_become_ghost_dependences() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        let obj = ObjId(5);
        rec.on_sync(t1, 1, SyncEvent::MonitorEnter { obj }, iid());
        rec.on_sync(t1, 2, SyncEvent::MonitorExit { obj }, iid());
        rec.on_thread_exit(t1);
        rec.on_sync(t2, 1, SyncEvent::MonitorEnter { obj }, iid());
        rec.on_sync(t2, 2, SyncEvent::MonitorExit { obj }, iid());
        let recording = finish(&rec, &[t2]);
        // t1's enter+exit merge into one run; t2's enter depends on t1's
        // exit (directly or via its own run's w0).
        let t2_records_dep = recording
            .deps
            .iter()
            .any(|d| d.w == Some(AccessId::new(t1, 2)))
            || recording
                .runs
                .iter()
                .any(|r| r.w0 == Some(AccessId::new(t1, 2)));
        assert!(t2_records_dep, "{recording:?}");
    }

    #[test]
    fn nondet_values_are_collected_per_thread() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t = Tid::ROOT;
        rec.on_nondet(t, 11);
        rec.on_nondet(t, 22);
        let recording = finish(&rec, &[t]);
        assert_eq!(recording.nondet[&t], vec![11, 22]);
        assert_eq!(recording.space_longs(), 2);
    }

    #[test]
    fn space_accounting_matches_records() {
        let rec = LightRecorder::new(LightConfig::default(), Default::default(), Default::default());
        let t1 = Tid::ROOT.child(0);
        let t2 = Tid::ROOT.child(1);
        write(&rec, t1, 1, field_loc());
        read(&rec, t1, 2, field_loc()); // run [1,2] with 1 write: 5 longs
        rec.on_thread_exit(t1);
        read(&rec, t2, 1, field_loc()); // dep: 4 longs
        let recording = finish(&rec, &[t2]);
        // run [1,2] with one write = 3 + 1; single-read dep = 2.
        assert_eq!(recording.space_longs(), 4 + 2);
    }
}
