//! Property test for the central guarantee: for randomized small
//! concurrent programs under randomized chaos schedules, Light's replay is
//! always feasible and always correlated (Theorem 1 + Lemma 4.1).

use light_core::{Light, LightConfig};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::Arc;

/// One statement of a generated worker body.
#[derive(Debug, Clone)]
enum Op {
    /// `g<i> = g<i> + k;`
    Bump(usize, i64),
    /// `let x = g<i>; g<j> = x + k;`
    Copy(usize, usize, i64),
    /// `sync (lk) { g<i> = g<i> + k; }`
    LockedBump(usize, i64),
    /// `if (g<i> > k) { g<j> = k; }`
    Guarded(usize, usize, i64),
}

fn op_strategy(nglobals: usize) -> impl Strategy<Value = Op> {
    let g = 0..nglobals;
    prop_oneof![
        (g.clone(), 1..5i64).prop_map(|(i, k)| Op::Bump(i, k)),
        (g.clone(), g.clone(), 1..5i64).prop_map(|(i, j, k)| Op::Copy(i, j, k)),
        (g.clone(), 1..5i64).prop_map(|(i, k)| Op::LockedBump(i, k)),
        (g.clone(), g.clone(), 1..30i64).prop_map(|(i, j, k)| Op::Guarded(i, j, k)),
    ]
}

/// Renders a full program: `nworkers` threads each running its own body.
fn render(nglobals: usize, bodies: &[Vec<Op>]) -> String {
    let mut src = String::new();
    for i in 0..nglobals {
        let _ = writeln!(src, "global g{i};");
    }
    let _ = writeln!(src, "global lk;\nclass L {{ field pad; }}");
    for (w, body) in bodies.iter().enumerate() {
        let _ = writeln!(src, "fn worker{w}() {{");
        for (s, op) in body.iter().enumerate() {
            match op {
                Op::Bump(i, k) => {
                    let _ = writeln!(src, "    g{i} = g{i} + {k};");
                }
                Op::Copy(i, j, k) => {
                    let _ = writeln!(src, "    let x{s} = g{i}; g{j} = x{s} + {k};");
                }
                Op::LockedBump(i, k) => {
                    let _ = writeln!(src, "    sync (lk) {{ g{i} = g{i} + {k}; }}");
                }
                Op::Guarded(i, j, k) => {
                    let _ = writeln!(src, "    if (g{i} > {k}) {{ g{j} = {k}; }}");
                }
            }
        }
        let _ = writeln!(src, "}}");
    }
    let _ = writeln!(src, "fn main() {{\n    lk = new L();");
    for w in 0..bodies.len() {
        let _ = writeln!(src, "    let t{w} = spawn worker{w}();");
    }
    for w in 0..bodies.len() {
        let _ = writeln!(src, "    join t{w};");
    }
    for i in 0..nglobals {
        let _ = writeln!(src, "    print(g{i});");
    }
    let _ = writeln!(src, "}}");
    src
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_programs_replay_correlated(
        bodies in proptest::collection::vec(
            proptest::collection::vec(op_strategy(3), 1..6),
            2..4,
        ),
        seed in 0u64..1000,
    ) {
        let src = render(3, &bodies);
        let program = Arc::new(lir::parse(&src).expect("generated programs parse"));
        let light = Light::new(program);
        let (recording, original) = light.record_chaos(&[], seed).expect("record");
        prop_assert!(original.completed(), "fault: {:?}\n{src}", original.fault);
        let report = light.replay(&recording).expect("replay pipeline");
        prop_assert!(
            report.correlated,
            "replay fault {:?}\nseed {seed}\n{src}",
            report.outcome.fault
        );
        prop_assert_eq!(
            &original.prints,
            &report.outcome.prints,
            "replay output diverged for seed {} of:\n{}", seed, src
        );
    }

    #[test]
    fn random_programs_replay_correlated_without_optimizations(
        bodies in proptest::collection::vec(
            proptest::collection::vec(op_strategy(2), 1..5),
            2..4,
        ),
        seed in 0u64..1000,
    ) {
        let src = render(2, &bodies);
        let program = Arc::new(lir::parse(&src).expect("generated programs parse"));
        let light = Light::with_config(program, LightConfig::basic());
        let (recording, original) = light.record_chaos(&[], seed).expect("record");
        prop_assert!(original.completed());
        let report = light.replay(&recording).expect("replay pipeline");
        prop_assert!(report.correlated);
        prop_assert_eq!(&original.prints, &report.outcome.prints);
    }
}
