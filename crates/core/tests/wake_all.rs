//! Monitor wake-all replay semantics: replay runs with
//! `wake_all_on_notify`, so every parked waiter re-contends on each
//! notify — and the controlled scheduler must still steer the *recorded*
//! waiter through the monitor first, reproducing the recorded
//! notify → wait_after pairing.

use light_core::Light;
use light_workloads::notify_storm;
use std::collections::HashSet;
use std::sync::Arc;

const WAITERS: i64 = 5;

#[test]
fn replay_reproduces_recorded_wake_order_under_wake_all() {
    let program = notify_storm();
    let light = Light::new(Arc::clone(&program));
    let args = [WAITERS];
    let mut orders = HashSet::new();
    for seed in 0..6 {
        let (recording, original) = light.record_chaos(&args, seed).unwrap();
        assert!(original.completed(), "seed {seed}: {:?}", original.fault);
        // One print per waiter, emitted while holding the monitor: the
        // prints vector is the serialized wake order.
        assert_eq!(original.prints.len(), WAITERS as usize, "seed {seed}");
        assert!(
            !recording.signals.is_empty(),
            "seed {seed}: no notify → wait_after pairings recorded"
        );
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated, "seed {seed}: replay not correlated");
        assert_eq!(
            report.outcome.prints, original.prints,
            "seed {seed}: replay wake order diverged from the recording"
        );
        orders.insert(original.prints.clone());
    }
    // The storm is a genuine decision point: different seeds must produce
    // different wake orders, otherwise the pairing was never exercised.
    assert!(orders.len() > 1, "every seed woke waiters in the same order");
}

#[test]
fn recorded_signal_edges_pair_each_notify_with_one_waiter() {
    let program = notify_storm();
    let light = Light::new(Arc::clone(&program));
    let (recording, original) = light.record_chaos(&[WAITERS], 1).unwrap();
    assert!(original.completed());
    // Every edge maps a notify access to the woken thread's wait-after
    // access on a *different* thread, and no waiter is woken twice by the
    // single-notify rounds (notify_all wake-ups may add more edges, but
    // each wait_after appears at most once).
    let mut woken = HashSet::new();
    for edge in &recording.signals {
        assert_ne!(edge.notify.tid, edge.wait_after.tid, "self-wakeup recorded");
        assert!(
            woken.insert(edge.wait_after),
            "wait_after {:?} paired with two notifies",
            edge.wait_after
        );
    }
    assert!(woken.len() >= WAITERS as usize);
}
