//! End-to-end record/replay tests: Theorem 1's guarantee exercised on real
//! concurrent LIR programs across schedulers, variants and bug types.

use light_core::{Light, LightConfig};
use light_runtime::FaultKind;
use std::sync::Arc;

fn light(src: &str) -> Light {
    Light::new(Arc::new(lir::parse(src).expect("parse")))
}

fn light_with(src: &str, config: LightConfig) -> Light {
    Light::with_config(Arc::new(lir::parse(src).expect("parse")), config)
}

const RACY_COUNTER: &str = "
    global total;
    fn worker(n) {
        let i = 0;
        while (i < n) { total = total + 1; i = i + 1; }
    }
    fn main(n) {
        let t1 = spawn worker(n);
        let t2 = spawn worker(n);
        join t1; join t2;
        print(total);
    }";

#[test]
fn racy_counter_replays_same_total_under_free_scheduling() {
    let light = light(RACY_COUNTER);
    for seed in 0..3 {
        let (recording, original) = light.record(&[40], seed).unwrap();
        assert!(original.completed(), "{:?}", original.fault);
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated, "replay fault: {:?}", report.outcome.fault);
        assert_eq!(original.prints, report.outcome.prints, "seed {seed}");
    }
}

#[test]
fn racy_counter_replays_under_chaos_scheduling() {
    let light = light(RACY_COUNTER);
    for seed in 0..5 {
        let (recording, original) = light.record_chaos(&[10], seed).unwrap();
        assert!(original.completed());
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated);
        assert_eq!(original.prints, report.outcome.prints, "seed {seed}");
    }
}

const CACHE_STYLE_BUG: &str = "
    // Cache4j-style bug: get() checks validity, put() can null the entry
    // in between (atomicity violation -> null dereference).
    class Cache { field entry; }
    class Entry { field value; }
    global cache;

    fn put_fresh() {
        // Reset: briefly nulls the entry before installing a new one.
        cache.entry = null;
        let e = new Entry();
        e.value = 42;
        cache.entry = e;
    }

    fn get_value() {
        let e = cache.entry;
        if (e != null) {
            return e.value;
        }
        return 0;
    }

    fn reader() {
        let i = 0;
        while (i < 8) {
            let e = cache.entry;
            if (e != null) {
                // TOCTOU window: the writer may null the entry here.
                let v = cache.entry.value;
            }
            i = i + 1;
        }
    }

    fn writer() {
        let i = 0;
        while (i < 8) { put_fresh(); i = i + 1; }
    }

    fn main() {
        cache = new Cache();
        put_fresh();
        let t1 = spawn writer();
        let t2 = spawn reader();
        join t1; join t2;
    }";

#[test]
fn null_deref_bug_is_found_and_replayed_with_correlation() {
    let light = light(CACHE_STYLE_BUG);
    let (recording, original) = light
        .find_bug(&[], 0..60)
        .expect("chaos search must expose the TOCTOU bug");
    let fault = original.fault.as_ref().unwrap();
    assert_eq!(fault.kind, FaultKind::NullDeref);

    let report = light.replay(&recording).unwrap();
    let replay_fault = report.outcome.fault.as_ref().expect("bug must replay");
    assert!(
        report.correlated,
        "original {fault} vs replay {replay_fault}"
    );
    // Correlation per Definition 3.3: same thread, counter, statement.
    assert_eq!(replay_fault.tid, fault.tid);
    assert_eq!(replay_fault.ctr, fault.ctr);
    assert_eq!(replay_fault.instr, fault.instr);
}

#[test]
fn bug_replay_is_repeatable() {
    let light = light(CACHE_STYLE_BUG);
    let (recording, _) = light.find_bug(&[], 0..60).expect("bug");
    for _ in 0..3 {
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated);
    }
}

const WAIT_NOTIFY_PIPELINE: &str = "
    global mon; global stage; global result;
    class M { field pad; }
    fn producer(v) {
        sync (mon) {
            stage = v;
            notify_all(mon);
        }
    }
    fn consumer() {
        sync (mon) {
            while (stage == 0) { wait(mon); }
            result = stage * 10;
        }
    }
    fn main() {
        mon = new M();
        let c = spawn consumer();
        let p = spawn producer(7);
        join p; join c;
        print(result);
    }";

#[test]
fn wait_notify_program_replays() {
    let light = light(WAIT_NOTIFY_PIPELINE);
    for seed in 0..6 {
        let (recording, original) = light.record_chaos(&[], seed).unwrap();
        assert!(original.completed(), "seed {seed}: {:?}", original.fault);
        let report = light.replay(&recording).unwrap();
        assert!(
            report.correlated,
            "seed {seed}: {:?}",
            report.outcome.fault
        );
        assert_eq!(original.prints, report.outcome.prints);
    }
}

const NONDET_PROGRAM: &str = "
    global sum;
    fn worker(k) {
        let r = rand(100);
        let t = time();
        sum = sum + r + t * k;
    }
    fn main() {
        let t1 = spawn worker(1);
        let t2 = spawn worker(2);
        join t1; join t2;
        print(sum);
    }";

#[test]
fn nondeterministic_intrinsics_replay_recorded_values() {
    let light = light(NONDET_PROGRAM);
    for seed in 0..4 {
        let (recording, original) = light.record(&[], seed).unwrap();
        assert!(!recording.nondet.is_empty());
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated);
        assert_eq!(original.prints, report.outcome.prints, "seed {seed}");
    }
}

const MAP_PROGRAM: &str = "
    global table; global hits;
    fn put_worker(base) {
        let i = 0;
        while (i < 10) {
            map_put(table, base + i, hash(base + i));
            i = i + 1;
        }
    }
    fn get_worker() {
        let i = 0;
        while (i < 20) {
            if (map_contains(table, i)) { hits = hits + 1; }
            i = i + 1;
        }
    }
    fn main() {
        table = map_new();
        let t1 = spawn put_worker(0);
        let t2 = spawn put_worker(10);
        let t3 = spawn get_worker();
        join t1; join t2; join t3;
        print(map_size(table));
        print(hits);
    }";

#[test]
fn shared_map_program_replays() {
    let light = light(MAP_PROGRAM);
    for seed in 0..4 {
        let (recording, original) = light.record_chaos(&[], seed).unwrap();
        assert!(original.completed(), "{:?}", original.fault);
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated, "seed {seed}");
        assert_eq!(original.prints, report.outcome.prints, "seed {seed}");
    }
}

const LOCKED_PROGRAM: &str = "
    global lock; global balance; class L { field pad; }
    fn deposit(n) {
        let i = 0;
        while (i < n) {
            sync (lock) { balance = balance + 1; }
            i = i + 1;
        }
    }
    fn main(n) {
        lock = new L();
        let t1 = spawn deposit(n);
        let t2 = spawn deposit(n);
        join t1; join t2;
        sync (lock) {
            print(balance);
            assert(balance == 2 * n);
        }
    }";

#[test]
fn variants_all_replay_correctly() {
    for config in [
        LightConfig::basic(),
        LightConfig::o1_only(),
        LightConfig::default(),
    ] {
        let light = light_with(LOCKED_PROGRAM, config);
        let (recording, original) = light.record(&[25], 1).unwrap();
        assert!(original.completed(), "{config:?}: {:?}", original.fault);
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated, "{config:?}");
        assert_eq!(original.prints, report.outcome.prints, "{config:?}");
    }
}

#[test]
fn optimizations_reduce_space() {
    let run_space = |config: LightConfig| {
        let light = light_with(LOCKED_PROGRAM, config);
        let (recording, original) = light.record(&[50], 7).unwrap();
        assert!(original.completed());
        recording.space_longs()
    };
    let basic = run_space(LightConfig::basic());
    let o1 = run_space(LightConfig::o1_only());
    let both = run_space(LightConfig::default());
    assert!(o1 <= basic, "O1 must not increase space: {o1} vs {basic}");
    assert!(both <= o1, "O2 must not increase space: {both} vs {o1}");
    assert!(
        both < basic,
        "combined optimizations must reduce space: {both} vs {basic}"
    );
}

#[test]
fn o2_skips_guarded_location_recording() {
    let light = light(LOCKED_PROGRAM);
    let (recording, _) = light.record(&[20], 3).unwrap();
    assert!(
        recording.stats.o2_skipped > 0,
        "balance is consistently guarded; O2 must fire"
    );
}

#[test]
fn recording_log_round_trips_through_disk() {
    let light = light(RACY_COUNTER);
    let (recording, _) = light.record(&[15], 0).unwrap();
    let dir = std::env::temp_dir().join(format!("light-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("counter.lrec");
    light_core::save_recording(&recording, &path).unwrap();
    let loaded = light_core::load_recording(&path).unwrap();
    assert_eq!(loaded.deps, recording.deps);
    assert_eq!(loaded.runs, recording.runs);
    // The loaded recording replays too.
    let report = light.replay(&loaded).unwrap();
    assert!(report.correlated);
    std::fs::remove_dir_all(&dir).unwrap();
}

const ARRAY_PROGRAM: &str = "
    global work; global acc;
    fn filler(lo, hi) {
        let i = lo;
        while (i < hi) { work[i] = i * 2; i = i + 1; }
    }
    fn summer(n) {
        let i = 0;
        while (i < n) { acc = acc + work[i]; i = i + 1; }
    }
    fn main(n) {
        work = new [n];
        let t1 = spawn filler(0, n / 2);
        let t2 = spawn filler(n / 2, n);
        join t1; join t2;
        let t3 = spawn summer(n);
        join t3;
        print(acc);
    }";

#[test]
fn shared_array_program_replays() {
    let light = light(ARRAY_PROGRAM);
    let (recording, original) = light.record(&[24], 5).unwrap();
    assert!(original.completed(), "{:?}", original.fault);
    let report = light.replay(&recording).unwrap();
    assert!(report.correlated);
    assert_eq!(original.prints, report.outcome.prints);
}

const ASSERT_BUG: &str = "
    global x; global y;
    fn t1() { x = 1; y = 1; }
    fn t2() {
        // Reads x then y while t1 writes x then y: observing y == 1 with a
        // stale x == 0 requires t1 to run entirely between the two reads.
        let a = x;
        let b = y;
        assert(b <= a);
    }
    fn main() {
        let h1 = spawn t1();
        let h2 = spawn t2();
        join h1; join h2;
    }";

#[test]
fn assertion_violation_replays_with_same_value() {
    let light = light(ASSERT_BUG);
    if let Some((recording, original)) = light.find_bug(&[], 0..80) {
        let fault = original.fault.unwrap();
        assert_eq!(fault.kind, FaultKind::AssertFailed);
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated, "{:?}", report.outcome.fault);
    } else {
        panic!("chaos search should expose the assertion violation");
    }
}

#[test]
fn clean_runs_have_empty_schedules_when_single_threaded() {
    let light = light("fn main() { let x = 1 + 2; print(x); }");
    let (recording, original) = light.record(&[], 0).unwrap();
    assert!(original.completed());
    // A single-threaded program still records its thread-lifecycle events,
    // but replay must succeed trivially.
    let report = light.replay(&recording).unwrap();
    assert!(report.correlated);
    assert_eq!(report.outcome.prints, vec!["3".to_string()]);
}

#[test]
fn solver_stats_are_reported() {
    let light = light(RACY_COUNTER);
    let (recording, _) = light.record(&[10], 0).unwrap();
    let report = light.replay(&recording).unwrap();
    assert!(report.schedule_len > 0);
    assert!(report.solve_stats.hard_constraints > 0);
}

const LOCKED_ARRAY_PROGRAM: &str = "
    global lock; global sums; class L { field pad; }
    fn worker(id, n) {
        let i = 0;
        while (i < n) {
            sync (lock) { sums[(id + i) % 4] = sums[(id + i) % 4] + 1; }
            i = i + 1;
        }
    }
    fn main(n) {
        lock = new L();
        sums = new [4];
        let t1 = spawn worker(0, n);
        let t2 = spawn worker(1, n);
        join t1; join t2;
        sync (lock) {
            let total = sums[0] + sums[1] + sums[2] + sums[3];
            assert(total == 2 * n);
            print(total);
        }
    }";

#[test]
fn bulk_o2_elides_guarded_array_recording() {
    // With O2, the consistently-locked array's accesses are not recorded:
    // the monitor dependences subsume them (Lemma 4.2 on allocation sites).
    let with_o2 = light(LOCKED_ARRAY_PROGRAM);
    assert!(
        !with_o2.analysis().guarded_allocs.is_empty(),
        "the sums allocation site must be detected as guarded"
    );
    let (rec_o2, out) = with_o2.record(&[30], 3).unwrap();
    assert!(out.completed(), "{:?}", out.fault);

    let without = light_with(LOCKED_ARRAY_PROGRAM, LightConfig::o1_only());
    let (rec_plain, out) = without.record(&[30], 3).unwrap();
    assert!(out.completed());

    // The remaining records are dominated by the monitor ghost
    // dependences, which O2 keeps by design; the array's own records must
    // be gone.
    assert!(
        rec_o2.space_longs() * 3 < rec_plain.space_longs() * 2,
        "bulk O2 must cut recording substantially: {} vs {}",
        rec_o2.space_longs(),
        rec_plain.space_longs()
    );
    assert!(rec_o2.stats.o2_skipped > 0);
}

#[test]
fn bulk_o2_recording_still_replays_correlated() {
    let light = light(LOCKED_ARRAY_PROGRAM);
    for seed in 0..4 {
        let (recording, original) = light.record_chaos(&[15], seed).unwrap();
        assert!(original.completed());
        let report = light.replay(&recording).unwrap();
        assert!(report.correlated, "seed {seed}: {:?}", report.outcome.fault);
        assert_eq!(original.prints, report.outcome.prints, "seed {seed}");
    }
}

#[test]
fn deadlock_is_reproduced_as_blocked_replay() {
    // Section 4.3: modeling locks as ghost accesses means replay neither
    // misses recorded deadlocks nor introduces new ones. A replayed
    // deadlock manifests as a blocked run: every thread parks at its
    // recorded frontier and the watchdog fires.
    let src = "
        global a; global b; class L { field pad; }
        fn left() { sync (a) { sync (b) { } } }
        fn right() { sync (b) { sync (a) { } } }
        fn main() {
            a = new L();
            b = new L();
            let t1 = spawn left();
            let t2 = spawn right();
            join t1; join t2;
        }";
    let mut light = light(src);
    light.set_replay_options(light_core::ReplayOptions {
        gate_timeout: std::time::Duration::from_secs(2),
        wall_timeout: std::time::Duration::from_secs(3),
        ..Default::default()
    });
    let (recording, original) = light
        .find_bug(&[], 0..40)
        .expect("some seed must deadlock");
    assert_eq!(
        original.fault.as_ref().unwrap().kind,
        FaultKind::Deadlock
    );
    let report = light.replay(&recording).unwrap();
    assert!(
        report.correlated,
        "deadlocked recording must replay as a blocked run: {:?}",
        report.outcome.fault
    );
}
