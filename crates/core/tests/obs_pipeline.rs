//! Observability integration tests: trace-sink span coverage of the
//! record → solve → replay pipeline, no-op-sink byte-identity of
//! recordings, and metric-snapshot persistence.

use light_core::obs::{
    chrome_trace_json, MetricsRegistry, NullSink, TraceEvent, TraceSink,
};
use light_core::{write_recording, Light};
use std::sync::Arc;

const RACY_COUNTER: &str = "
    global total;
    fn worker(n) {
        let i = 0;
        while (i < n) { total = total + 1; i = i + 1; }
    }
    fn main(n) {
        let t1 = spawn worker(n);
        let t2 = spawn worker(n);
        join t1; join t2;
        print(total);
    }";

fn light(src: &str) -> Light {
    Light::new(Arc::new(lir::parse(src).expect("parse")))
}

#[test]
fn trace_sink_sees_every_pipeline_phase() {
    let mut light = light(RACY_COUNTER);
    let sink = Arc::new(TraceSink::new());
    light.set_sink(sink.clone());

    let (recording, original) = light.record(&[20], 1).unwrap();
    assert!(original.completed());
    let report = light.replay(&recording).unwrap();
    assert!(report.correlated);

    let events = sink.events();
    let complete_names: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Complete { name, .. } => Some(*name),
            _ => None,
        })
        .collect();
    for phase in ["record", "constraint-build", "solve", "replay-run"] {
        assert!(
            complete_names.contains(&phase),
            "missing pipeline span {phase:?}; saw {complete_names:?}"
        );
    }
    // Program threads get their own lanes (root + 2 workers, during both
    // the recorded and the replayed run).
    let lanes: std::collections::HashSet<u64> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ThreadName { tid, .. } => Some(*tid),
            _ => None,
        })
        .collect();
    assert!(lanes.len() >= 3, "expected >=3 thread lanes, got {lanes:?}");

    // The export is structurally valid Chrome trace JSON.
    let json = chrome_trace_json(&events);
    assert!(json.trim_start().starts_with('{'));
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"ph\": \"X\""));
    assert!(json.contains("\"name\": \"solve\""));

    // The report's snapshot carries the same phases plus counter sections.
    let phase_names: Vec<&str> = report.metrics.phases.iter().map(|p| p.name.as_str()).collect();
    for phase in ["constraint-build", "solve", "replay-run"] {
        assert!(phase_names.contains(&phase), "snapshot phases: {phase_names:?}");
    }
    assert!(report.metrics.record.is_some());
    assert!(report.metrics.solver.is_some());
    let sched = report.metrics.scheduler.expect("controlled replay metrics");
    assert_eq!(sched.schedule_len, u64::from(report.schedule_len));
}

#[test]
fn metrics_registry_collects_phases_and_counters() {
    let mut light = light(RACY_COUNTER);
    let registry = Arc::new(MetricsRegistry::new());
    light.set_sink(registry.clone());

    let (recording, _) = light.record(&[15], 3).unwrap();
    light.replay(&recording).unwrap();

    let snap = registry.snapshot();
    let phases: Vec<&str> = snap.phases.iter().map(|p| p.name.as_str()).collect();
    for phase in ["record", "constraint-build", "solve", "replay-run"] {
        assert!(phases.contains(&phase), "registry phases: {phases:?}");
    }
    // The record-phase counters arrive through the sink interface.
    assert_eq!(
        snap.counters.get("record.deps").copied(),
        Some(recording.stats.deps)
    );
}

#[test]
fn sinks_do_not_perturb_the_recording_bytes() {
    // The recorder hot path never consults the sink, so the recorded
    // bytes must be identical whether tracing is off, a no-op sink is
    // attached, a full trace sink is live, or run-id telemetry is on.
    let base = light(RACY_COUNTER);
    let mut nulled = light(RACY_COUNTER);
    nulled.set_sink(Arc::new(NullSink));
    let mut traced = light(RACY_COUNTER);
    traced.set_sink(Arc::new(TraceSink::new()));
    let mut watched = light(RACY_COUNTER);
    watched.set_sink(Arc::new(TraceSink::new()));
    watched.set_run_id(light_core::obs::RunId::fresh());

    for seed in 0..3 {
        let encode = |l: &Light| {
            let (recording, _) = l.record_chaos(&[12], seed).unwrap();
            write_recording(&recording).to_vec()
        };
        let b0 = encode(&base);
        assert_eq!(b0, encode(&nulled), "NullSink changed the log, seed {seed}");
        assert_eq!(b0, encode(&traced), "TraceSink changed the log, seed {seed}");
        assert_eq!(b0, encode(&watched), "run-id telemetry changed the log, seed {seed}");
    }
}

#[test]
fn mem_gauges_do_not_perturb_the_recording_bytes() {
    // Byte accounting happens at ownership-transfer boundaries only and
    // never touches record *content*: logs must stay byte-identical with
    // the memory plane enabled, and the recorder-log / lw-map gauges must
    // actually see the run (nonzero high-water mark).
    let reg = light_core::obs::mem::global();
    let baseline = light(RACY_COUNTER);
    let before: Vec<Vec<u8>> = (0..3)
        .map(|seed| {
            let (recording, _) = baseline.record_chaos(&[12], seed).unwrap();
            write_recording(&recording).to_vec()
        })
        .collect();

    reg.set_enabled(true);
    // Gauge handles bind at recorder construction, so build the gauged
    // pipeline only after enabling.
    let gauged = light(RACY_COUNTER);
    for (seed, want) in before.iter().enumerate() {
        let (recording, _) = gauged.record_chaos(&[12], seed as u64).unwrap();
        assert_eq!(
            &write_recording(&recording).to_vec(),
            want,
            "mem gauges changed the log, seed {seed}"
        );
    }
    let snap = reg.snapshot();
    reg.set_enabled(false);
    let log = snap
        .subsystems
        .get(light_core::obs::mem::subsystem::RECORDER_LOG)
        .copied()
        .expect("recorder-log gauge populated");
    assert!(log.peak_bytes > 0, "recorder-log never saw the run: {snap:?}");
    let lw = snap
        .subsystems
        .get(light_core::obs::mem::subsystem::LW_MAP)
        .copied()
        .expect("lw-map gauge populated");
    assert!(lw.peak_bytes > 0, "lw-map never saw the run: {snap:?}");
}

#[test]
fn recorder_tuning_does_not_perturb_the_recording_bytes() {
    // The recorder hot path's runtime layout — batch size, initial stripe
    // count, and adaptive growth — must never shape recording content:
    // logs stay byte-identical for a fixed seed under every tuning.
    use light_core::{RecorderTuning, StripeAdapt};
    let base = light(RACY_COUNTER);
    let variants = [
        ("batch=1", RecorderTuning { batch: 1, ..Default::default() }),
        ("batch=64", RecorderTuning { batch: 64, ..Default::default() }),
        ("batch=4096", RecorderTuning { batch: 4096, ..Default::default() }),
        (
            "stripes=16 fixed",
            RecorderTuning {
                initial_stripes: 16,
                adapt: StripeAdapt::Off,
                ..Default::default()
            },
        ),
        (
            "stripes=1024 fixed",
            RecorderTuning {
                initial_stripes: 1024,
                adapt: StripeAdapt::Off,
                ..Default::default()
            },
        ),
        (
            "forced adaptation",
            RecorderTuning {
                adapt: StripeAdapt::Force,
                batch: 8,
                ..Default::default()
            },
        ),
    ];
    for seed in 0..3 {
        let (recording, _) = base.record_chaos(&[12], seed).unwrap();
        let want = write_recording(&recording).to_vec();
        for (name, tuning) in variants {
            let mut tuned = light(RACY_COUNTER);
            tuned.set_recorder_tuning(tuning);
            let (recording, _) = tuned.record_chaos(&[12], seed).unwrap();
            assert_eq!(
                write_recording(&recording).to_vec(),
                want,
                "{name} changed the log, seed {seed}"
            );
        }
    }
}

#[test]
fn forced_adaptation_surfaces_in_metrics_and_prec_hits_are_stable() {
    // Chaos scheduling serializes the run, so contention never triggers
    // growth naturally; Force walks the resize machinery anyway. The
    // resize/flush lifecycle must surface through the metrics sink, and
    // the prec hit rate (flight `prec-hit` events) must be unchanged by
    // the N-way table's layout knobs — collapsing is keyed on location
    // identity, not table geometry.
    use light_core::obs::{FlightEvent, FlightKind, FlightSink};
    use light_core::{RecorderTuning, StripeAdapt};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct PrecCounter(AtomicU64);
    impl FlightSink for PrecCounter {
        fn record(&self, ev: &FlightEvent) {
            if ev.kind == FlightKind::PrecHit {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    let count_prec_hits = |tuning: Option<RecorderTuning>| {
        let mut l = light(RACY_COUNTER);
        if let Some(t) = tuning {
            l.set_recorder_tuning(t);
        }
        let registry = Arc::new(MetricsRegistry::new());
        l.set_sink(registry.clone());
        let sink = Arc::new(PrecCounter::default());
        l.set_flight_sink(sink.clone());
        l.record_chaos(&[12], 7).unwrap();
        (sink.0.load(Ordering::Relaxed), registry.snapshot())
    };
    let (base_hits, base_snap) = count_prec_hits(None);
    assert!(base_hits > 0, "workload must exercise prec collapsing");
    assert_eq!(base_snap.counters.get("record.stripe_resizes"), Some(&0));
    assert_eq!(
        base_snap.counters.get("record.stripe_count"),
        Some(&(light_core::STRIPE_COUNT as u64))
    );

    let (forced_hits, forced_snap) = count_prec_hits(Some(RecorderTuning {
        adapt: StripeAdapt::Force,
        batch: 8,
        ..Default::default()
    }));
    assert_eq!(forced_hits, base_hits, "prec hit rate must not change");
    let resizes = *forced_snap
        .counters
        .get("record.stripe_resizes")
        .expect("resize counter emitted");
    assert!(resizes > 0, "Force must grow the map: {forced_snap:?}");
    assert_eq!(
        forced_snap.counters.get("record.stripe_count"),
        Some(&((light_core::STRIPE_COUNT as u64) << resizes))
    );
    assert!(
        forced_snap.counters.get("record.batch_flushes").copied() >= Some(1),
        "flush counter emitted: {forced_snap:?}"
    );
}

#[test]
fn run_id_threads_through_replay_and_trace_export() {
    let mut light = light(RACY_COUNTER);
    let sink = Arc::new(TraceSink::new());
    light.set_sink(sink.clone());
    let id = light_core::obs::RunId::fresh();
    light.set_run_id(id);

    let (recording, _) = light.record(&[10], 2).unwrap();
    let report = light.replay(&recording).unwrap();
    // The report joins back to the invocation's causal id.
    assert_eq!(report.run_id, Some(id));

    // The trace stream carries the RunContext metadata, and the Chrome
    // export groups pipeline spans under the run's pid.
    let events = sink.events();
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::RunContext { run_id, .. } if *run_id == id.to_string()
    )));
    let json = chrome_trace_json(&events);
    assert!(json.contains(&format!("\"run {id}\"")));
    assert!(json.contains(&format!("\"pid\": {}", id.as_pid())));
    // Without a run id, reports carry none.
    let plain = Light::new(light.program().clone());
    assert_eq!(plain.replay(&recording).unwrap().run_id, None);
}

#[test]
fn snapshot_roundtrips_through_the_log() {
    let light = light(RACY_COUNTER);
    let (mut recording, _) = light.record(&[25], 9).unwrap();
    // Force a nonzero value into the v2-only field so the roundtrip is
    // discriminating.
    recording.stats.stripe_contention += 17;

    let dir = std::env::temp_dir().join("light-obs-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("rt-{}.lrec", std::process::id()));
    light_core::save_recording(&recording, &path).unwrap();
    let loaded = light_core::load_recording(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.stats, recording.stats);
    let a = recording.snapshot().to_json().to_json();
    let b = loaded.snapshot().to_json().to_json();
    assert_eq!(a, b, "snapshot JSON must survive save/load");
    assert!(a.contains("\"stripe_contention\""));
}
