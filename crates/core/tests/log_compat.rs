//! Backward compatibility of the binary log against **checked-in golden
//! fixtures**: `tests/fixtures/{v1,v2,v3}.lrec` are real byte images of
//! the three format generations, so a reader regression (or an
//! unannounced layout change) fails here even if the in-tree writer and
//! reader drift together.
//!
//! Regenerate after an *intentional* format bump with:
//!
//! ```text
//! cargo test -p light-core --test log_compat -- --ignored regenerate
//! ```

use light_core::{
    peek_log_version, read_recording, write_recording, AccessId, DepEdge, ExploreProvenance,
    RecordStats, Recording, RunRec, SignalEdge, LOG_FORMAT_VERSION,
};
use light_runtime::{FaultKind, FaultReport, Tid, Value};
use lir::{BlockId, FuncId, InstrId};
use std::collections::HashMap;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The canonical fixture recording: every section populated, fully
/// deterministic (the writer sorts its hash maps).
fn fixture() -> Recording {
    let t1 = Tid::ROOT.child(0);
    let t2 = Tid::ROOT.child(1);
    let mut nondet = HashMap::new();
    nondet.insert(t1, vec![5, -11, 400]);
    Recording {
        deps: vec![
            DepEdge {
                loc: 8,
                w: Some(AccessId::new(t1, 4)),
                r_tid: t2,
                r_first: 2,
                r_last: 6,
            },
            DepEdge {
                loc: 16,
                w: None,
                r_tid: t1,
                r_first: 1,
                r_last: 1,
            },
        ],
        runs: vec![RunRec {
            loc: 8,
            tid: t2,
            w0: Some(AccessId::new(t1, 9)),
            first: 10,
            last: 18,
            write_ctrs: vec![11, 14],
        }],
        signals: vec![SignalEdge {
            notify: AccessId::new(t1, 6),
            wait_after: AccessId::new(t2, 8),
        }],
        nondet,
        thread_extents: [(t1, 12u64), (t2, 19u64)].into_iter().collect(),
        fault: Some(FaultReport {
            tid: t2,
            ctr: 19,
            instr: InstrId {
                func: FuncId(2),
                block: BlockId(0),
                idx: 5,
            },
            line: 31,
            kind: FaultKind::AssertFailed,
            value: Value::NULL,
            detail: "assert total == 40".into(),
        }),
        args: vec![4, 10],
        stats: RecordStats {
            space_longs: 23,
            deps: 2,
            runs: 1,
            retries: 1,
            o2_skipped: 7,
            stripe_contention: 3,
        },
        provenance: Some(ExploreProvenance {
            strategy: "race".into(),
            seed: 99,
            schedules: 512,
            minimized: true,
            trace_segments: 4,
        }),
    }
}

/// The provenance section's byte length for the fixture (presence byte +
/// length-prefixed strategy + seed + schedules + minimized + segments).
fn provenance_len(rec: &Recording) -> usize {
    1 + 4 + rec.provenance.as_ref().unwrap().strategy.len() + 8 + 8 + 1 + 8
}

/// Derives the exact v2 byte image from v3 bytes: drop the provenance
/// section, rewrite the version field.
fn v2_bytes(v3: &[u8], rec: &Recording) -> Vec<u8> {
    let mut v = v3.to_vec();
    v.truncate(v.len() - provenance_len(rec));
    v[4..8].copy_from_slice(&2u32.to_le_bytes());
    v
}

/// Derives the exact v1 byte image: v2 minus the trailing
/// `stripe_contention` word.
fn v1_bytes(v3: &[u8], rec: &Recording) -> Vec<u8> {
    let mut v = v2_bytes(v3, rec);
    v.truncate(v.len() - 8);
    v[4..8].copy_from_slice(&1u32.to_le_bytes());
    v
}

/// Regenerates the golden fixtures. Run explicitly (`--ignored`) after an
/// intentional format change, and commit the result.
#[test]
#[ignore = "writes tests/fixtures/*.lrec; run after intentional format bumps"]
fn regenerate() {
    let rec = fixture();
    let v3 = write_recording(&rec);
    std::fs::create_dir_all(fixture_path("")).unwrap();
    std::fs::write(fixture_path("v3.lrec"), &v3).unwrap();
    std::fs::write(fixture_path("v2.lrec"), v2_bytes(&v3, &rec)).unwrap();
    std::fs::write(fixture_path("v1.lrec"), v1_bytes(&v3, &rec)).unwrap();
}

fn load_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("missing fixture {name} (run the `regenerate` test): {e}"))
}

#[test]
fn current_writer_matches_v3_golden_bytes() {
    // Byte-for-byte: any layout change must come with a version bump and
    // regenerated fixtures, never silently.
    let golden = load_fixture("v3.lrec");
    assert_eq!(
        write_recording(&fixture()).as_ref(),
        golden.as_slice(),
        "serialized bytes drifted from tests/fixtures/v3.lrec"
    );
}

#[test]
fn v3_golden_fixture_round_trips() {
    let bytes = load_fixture("v3.lrec");
    assert_eq!(peek_log_version(&bytes).unwrap(), LOG_FORMAT_VERSION);
    let back = read_recording(&bytes).unwrap();
    let rec = fixture();
    assert_eq!(back.deps, rec.deps);
    assert_eq!(back.runs, rec.runs);
    assert_eq!(back.signals, rec.signals);
    assert_eq!(back.nondet, rec.nondet);
    assert_eq!(back.thread_extents, rec.thread_extents);
    assert_eq!(back.fault, rec.fault);
    assert_eq!(back.args, rec.args);
    assert_eq!(back.stats, rec.stats);
    assert_eq!(back.provenance, rec.provenance);
}

#[test]
fn v2_golden_fixture_loads_without_provenance() {
    let bytes = load_fixture("v2.lrec");
    assert_eq!(peek_log_version(&bytes).unwrap(), 2);
    let back = read_recording(&bytes).unwrap();
    let rec = fixture();
    assert_eq!(back.deps, rec.deps);
    assert_eq!(back.stats, rec.stats, "v2 carries the full stats block");
    assert_eq!(back.provenance, None, "v2 predates provenance");
}

#[test]
fn v1_golden_fixture_loads_with_default_contention() {
    let bytes = load_fixture("v1.lrec");
    assert_eq!(peek_log_version(&bytes).unwrap(), 1);
    let back = read_recording(&bytes).unwrap();
    let rec = fixture();
    assert_eq!(back.deps, rec.deps);
    assert_eq!(back.runs, rec.runs);
    assert_eq!(
        back.stats.stripe_contention, 0,
        "v1 predates stripe_contention; reader defaults it"
    );
    assert_eq!(back.stats.o2_skipped, rec.stats.o2_skipped);
    assert_eq!(back.provenance, None);
}
