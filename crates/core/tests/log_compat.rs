//! Backward compatibility of the binary log against **checked-in golden
//! fixtures**: `tests/fixtures/{v1,v2,v3,v4}.lrec` are real byte images
//! of the four format generations, so a reader regression (or an
//! unannounced layout change) fails here even if the in-tree writer and
//! reader drift together.
//!
//! Regenerate after an *intentional* format bump with:
//!
//! ```text
//! cargo test -p light-core --test log_compat -- --ignored regenerate
//! ```

use light_core::{
    peek_log_version, read_recording, write_recording, AccessId, DepEdge, ExploreProvenance,
    RecordStats, Recording, RunRec, SignalEdge, LOG_FORMAT_VERSION, STRIPE_COUNT,
};
use light_runtime::{FaultKind, FaultReport, Tid, Value};
use lir::{BlockId, FuncId, InstrId};
use std::collections::HashMap;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The canonical fixture recording: every section populated, fully
/// deterministic (the writer sorts its hash maps).
fn fixture() -> Recording {
    let t1 = Tid::ROOT.child(0);
    let t2 = Tid::ROOT.child(1);
    let mut nondet = HashMap::new();
    nondet.insert(t1, vec![5, -11, 400]);
    let mut stripe_hist = vec![0u64; STRIPE_COUNT];
    stripe_hist[10] = 2;
    stripe_hist[200] = 1;
    Recording {
        deps: vec![
            DepEdge {
                loc: 8,
                w: Some(AccessId::new(t1, 4)),
                r_tid: t2,
                r_first: 2,
                r_last: 6,
            },
            DepEdge {
                loc: 16,
                w: None,
                r_tid: t1,
                r_first: 1,
                r_last: 1,
            },
        ],
        runs: vec![RunRec {
            loc: 8,
            tid: t2,
            w0: Some(AccessId::new(t1, 9)),
            first: 10,
            last: 18,
            write_ctrs: vec![11, 14],
        }],
        signals: vec![SignalEdge {
            notify: AccessId::new(t1, 6),
            wait_after: AccessId::new(t2, 8),
        }],
        nondet,
        thread_extents: [(t1, 12u64), (t2, 19u64)].into_iter().collect(),
        fault: Some(FaultReport {
            tid: t2,
            ctr: 19,
            instr: InstrId {
                func: FuncId(2),
                block: BlockId(0),
                idx: 5,
            },
            line: 31,
            kind: FaultKind::AssertFailed,
            value: Value::NULL,
            detail: "assert total == 40".into(),
        }),
        args: vec![4, 10],
        stats: RecordStats {
            space_longs: 23,
            deps: 2,
            runs: 1,
            retries: 1,
            o2_skipped: 7,
            stripe_contention: 3,
        },
        provenance: Some(ExploreProvenance {
            strategy: "race".into(),
            seed: 99,
            schedules: 512,
            minimized: true,
            trace_segments: 4,
        }),
        stripe_hist,
    }
}

/// The stripe-histogram section's byte length for the fixture (count word
/// plus one `(u32, u64)` pair per non-zero stripe).
fn stripe_hist_len(rec: &Recording) -> usize {
    4 + rec.stripe_hist_sparse().len() * 12
}

/// The provenance section's byte length for the fixture (presence byte +
/// length-prefixed strategy + seed + schedules + minimized + segments).
fn provenance_len(rec: &Recording) -> usize {
    1 + 4 + rec.provenance.as_ref().unwrap().strategy.len() + 8 + 8 + 1 + 8
}

/// Derives the exact v3 byte image from v4 bytes: drop the stripe
/// histogram section, rewrite the version field.
fn v3_bytes(v4: &[u8], rec: &Recording) -> Vec<u8> {
    let mut v = v4.to_vec();
    v.truncate(v.len() - stripe_hist_len(rec));
    v[4..8].copy_from_slice(&3u32.to_le_bytes());
    v
}

/// Derives the exact v2 byte image: v3 minus the provenance section.
fn v2_bytes(v4: &[u8], rec: &Recording) -> Vec<u8> {
    let mut v = v3_bytes(v4, rec);
    v.truncate(v.len() - provenance_len(rec));
    v[4..8].copy_from_slice(&2u32.to_le_bytes());
    v
}

/// Derives the exact v1 byte image: v2 minus the trailing
/// `stripe_contention` word.
fn v1_bytes(v4: &[u8], rec: &Recording) -> Vec<u8> {
    let mut v = v2_bytes(v4, rec);
    v.truncate(v.len() - 8);
    v[4..8].copy_from_slice(&1u32.to_le_bytes());
    v
}

/// Regenerates the golden fixtures. Run explicitly (`--ignored`) after an
/// intentional format change, and commit the result.
#[test]
#[ignore = "writes tests/fixtures/*.lrec; run after intentional format bumps"]
fn regenerate() {
    let rec = fixture();
    let v4 = write_recording(&rec);
    std::fs::create_dir_all(fixture_path("")).unwrap();
    std::fs::write(fixture_path("v4.lrec"), &v4).unwrap();
    std::fs::write(fixture_path("v3.lrec"), v3_bytes(&v4, &rec)).unwrap();
    std::fs::write(fixture_path("v2.lrec"), v2_bytes(&v4, &rec)).unwrap();
    std::fs::write(fixture_path("v1.lrec"), v1_bytes(&v4, &rec)).unwrap();
}

fn load_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("missing fixture {name} (run the `regenerate` test): {e}"))
}

#[test]
fn current_writer_matches_v4_golden_bytes() {
    // Byte-for-byte: any layout change must come with a version bump and
    // regenerated fixtures, never silently.
    let golden = load_fixture("v4.lrec");
    assert_eq!(
        write_recording(&fixture()).as_ref(),
        golden.as_slice(),
        "serialized bytes drifted from tests/fixtures/v4.lrec"
    );
}

#[test]
fn v4_golden_fixture_round_trips() {
    let bytes = load_fixture("v4.lrec");
    assert_eq!(peek_log_version(&bytes).unwrap(), LOG_FORMAT_VERSION);
    let back = read_recording(&bytes).unwrap();
    let rec = fixture();
    assert_eq!(back.deps, rec.deps);
    assert_eq!(back.runs, rec.runs);
    assert_eq!(back.signals, rec.signals);
    assert_eq!(back.nondet, rec.nondet);
    assert_eq!(back.thread_extents, rec.thread_extents);
    assert_eq!(back.fault, rec.fault);
    assert_eq!(back.args, rec.args);
    assert_eq!(back.stats, rec.stats);
    assert_eq!(back.provenance, rec.provenance);
    assert_eq!(back.stripe_hist, rec.stripe_hist);
}

#[test]
fn v3_golden_fixture_loads_with_empty_stripe_hist() {
    let bytes = load_fixture("v3.lrec");
    assert_eq!(peek_log_version(&bytes).unwrap(), 3);
    let back = read_recording(&bytes).unwrap();
    let rec = fixture();
    assert_eq!(back.deps, rec.deps);
    assert_eq!(back.stats, rec.stats, "v3 carries the full stats block");
    assert_eq!(back.provenance, rec.provenance);
    assert!(
        back.stripe_hist.is_empty(),
        "v3 predates the stripe histogram; reader defaults it"
    );
}

#[test]
fn v2_golden_fixture_loads_without_provenance() {
    let bytes = load_fixture("v2.lrec");
    assert_eq!(peek_log_version(&bytes).unwrap(), 2);
    let back = read_recording(&bytes).unwrap();
    let rec = fixture();
    assert_eq!(back.deps, rec.deps);
    assert_eq!(back.stats, rec.stats, "v2 carries the full stats block");
    assert_eq!(back.provenance, None, "v2 predates provenance");
}

#[test]
fn snapshot_json_round_trips_across_all_golden_versions() {
    // Every log generation's recording must produce a MetricsSnapshot
    // whose JSON parses back to an identical snapshot — the registry
    // stores snapshots as JSON and must reread entries ingested from
    // recordings of any vintage.
    use light_core::obs::{json::Value, MetricsSnapshot};
    for name in ["v1.lrec", "v2.lrec", "v3.lrec", "v4.lrec"] {
        let back = read_recording(&load_fixture(name)).unwrap();
        let snap = back.snapshot();
        let json = snap.to_json().to_json();
        let parsed = MetricsSnapshot::from_json(&Value::parse(&json).unwrap());
        assert_eq!(parsed, snap, "snapshot JSON roundtrip for {name}");
    }
    // The versions are discriminating: v4 carries the stripe histogram,
    // v1 predates stripe_contention entirely.
    let v4 = read_recording(&load_fixture("v4.lrec")).unwrap().snapshot();
    assert!(!v4.stripe_hist.is_empty());
    let v1 = read_recording(&load_fixture("v1.lrec")).unwrap().snapshot();
    assert!(v1.stripe_hist.is_empty());
    assert_eq!(v1.record.unwrap().stripe_contention, 0);
}

#[test]
fn v1_golden_fixture_loads_with_default_contention() {
    let bytes = load_fixture("v1.lrec");
    assert_eq!(peek_log_version(&bytes).unwrap(), 1);
    let back = read_recording(&bytes).unwrap();
    let rec = fixture();
    assert_eq!(back.deps, rec.deps);
    assert_eq!(back.runs, rec.runs);
    assert_eq!(
        back.stats.stripe_contention, 0,
        "v1 predates stripe_contention; reader defaults it"
    );
    assert_eq!(back.stats.o2_skipped, rec.stats.o2_skipped);
    assert_eq!(back.provenance, None);
}
