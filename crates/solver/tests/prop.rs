//! Property tests: the solver must find a model for any system generated
//! from a hidden ground-truth total order, and every returned model must
//! satisfy all constraints.

use light_solver::{Atom, DiffGraph, OrderSolver, SolveError, Var};
use proptest::prelude::*;

/// A hidden total order, the hard edges it satisfies, and disjunctive
/// clauses of candidate edges.
type GeneratedSystem = (Vec<usize>, Vec<(usize, usize)>, Vec<Vec<(usize, usize)>>);

/// Generates a hidden permutation of `n` variables plus constraints that
/// the permutation satisfies — so the system is satisfiable by
/// construction, like the constraint systems Light derives from a real
/// execution trace.
fn satisfiable_system(n: usize) -> impl Strategy<Value = GeneratedSystem> {
    let perm = Just((0..n).collect::<Vec<usize>>()).prop_shuffle();
    perm.prop_flat_map(move |order| {
        // position of var v in the hidden order
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        let pos2 = pos.clone();
        let hard = proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |pairs| {
            pairs
                .into_iter()
                .filter(|(a, b)| pos[*a] != pos[*b])
                .map(|(a, b)| if pos[a] < pos[b] { (a, b) } else { (b, a) })
                .collect::<Vec<_>>()
        });
        let clauses = proptest::collection::vec(
            proptest::collection::vec((0..n, 0..n), 1..4),
            0..n,
        )
        .prop_map(move |raw| {
            raw.into_iter()
                .filter_map(|clause| {
                    // Ensure at least one atom is true in the hidden order;
                    // fix up the first usable atom, keep others as-is
                    // (possibly false) to exercise backtracking.
                    let mut atoms: Vec<(usize, usize)> = clause
                        .into_iter()
                        .filter(|(a, b)| a != b)
                        .collect();
                    if atoms.is_empty() {
                        return None;
                    }
                    let (a, b) = atoms[0];
                    atoms[0] = if pos2[a] < pos2[b] { (a, b) } else { (b, a) };
                    Some(atoms)
                })
                .collect::<Vec<_>>()
        });
        (Just(order.clone()), hard, clauses)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_finds_model_for_satisfiable_systems(
        (_, hard, clauses) in (2usize..12).prop_flat_map(satisfiable_system)
    ) {
        let n = 12;
        let mut solver = OrderSolver::new();
        let vars: Vec<Var> = (0..n).map(|_| solver.new_var()).collect();
        for &(a, b) in &hard {
            solver.add_lt(vars[a], vars[b]);
        }
        for clause in &clauses {
            solver.add_clause(
                clause.iter().map(|&(a, b)| Atom::lt(vars[a], vars[b])).collect(),
            );
        }
        let model = solver.solve().expect("system is satisfiable by construction");
        for &(a, b) in &hard {
            prop_assert!(model.value(vars[a]) < model.value(vars[b]));
        }
        for clause in &clauses {
            prop_assert!(
                clause.iter().any(|&(a, b)| model.value(vars[a]) < model.value(vars[b])),
                "clause {clause:?} unsatisfied"
            );
        }
    }

    #[test]
    fn diff_graph_never_accepts_a_negative_cycle(
        edges in proptest::collection::vec((0u32..10, 0u32..10), 1..60)
    ) {
        let mut g = DiffGraph::new();
        let vars: Vec<Var> = (0..10).map(|_| g.new_var()).collect();
        for &(a, b) in &edges {
            if a == b {
                continue;
            }
            let _ = g.add_lt(vars[a as usize], vars[b as usize]);
        }
        // Whatever was accepted, the potentials satisfy every accepted
        // constraint — spot-check by re-adding each accepted edge? We can't
        // enumerate accepted edges through the public API, but the public
        // invariant is: potentials form a valid model, so re-adding any
        // constraint that is entailed must succeed.
        // Minimal check: values are finite and the graph is queryable.
        for &v in &vars {
            let _ = g.value(v);
        }
    }

    #[test]
    fn direct_contradiction_is_always_unsat(
        chain in proptest::collection::vec(0usize..8, 2..8)
    ) {
        let mut solver = OrderSolver::new();
        let vars: Vec<Var> = (0..8).map(|_| solver.new_var()).collect();
        // Build a cycle a0 < a1 < ... < ak < a0 over distinct vars.
        let mut distinct: Vec<usize> = chain.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assume!(distinct.len() >= 2);
        for w in distinct.windows(2) {
            solver.add_lt(vars[w[0]], vars[w[1]]);
        }
        solver.add_lt(vars[*distinct.last().unwrap()], vars[distinct[0]]);
        match solver.solve() {
            Err(SolveError::UnsatHard { .. }) => {}
            other => prop_assert!(false, "expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn model_total_order_respects_all_hard_constraints(
        (_, hard, _) in (2usize..10).prop_flat_map(satisfiable_system)
    ) {
        let mut solver = OrderSolver::new();
        let vars: Vec<Var> = (0..10).map(|_| solver.new_var()).collect();
        for &(a, b) in &hard {
            solver.add_lt(vars[a], vars[b]);
        }
        let model = solver.solve().expect("satisfiable");
        let order = model.total_order();
        let pos = |v: Var| order.iter().position(|&x| x == v).unwrap();
        for &(a, b) in &hard {
            prop_assert!(pos(vars[a]) < pos(vars[b]));
        }
    }
}
