//! Unsat-core extraction: delta-minimize an infeasible constraint system
//! to a minimal subset that is still infeasible.
//!
//! Lemma 4.1 rules infeasibility out for systems built from real
//! recordings, so an unsatisfiable Equation-1 instance always means
//! something *outside* the model went wrong — a stale recording replayed
//! against a changed program, a corrupted log, a hand-edited constraint.
//! The minimal core is the diagnosis: the smallest set of orderings that
//! cannot coexist, which a caller can then map back to the dependences
//! that produced them.

use crate::solver::{Atom, OrderSolver, SolveError};

/// Indices (into the caller's constraint lists) of a minimal infeasible
/// subset: removing any single member makes the remainder satisfiable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnsatCore {
    /// Surviving hard (unit) constraints, by index into `hard`.
    pub hard: Vec<usize>,
    /// Surviving disjunctive clauses, by index into `clauses`.
    pub clauses: Vec<usize>,
}

impl UnsatCore {
    /// Total constraints in the core.
    pub fn len(&self) -> usize {
        self.hard.len() + self.clauses.len()
    }

    /// Whether the core is empty (never true for a real core).
    pub fn is_empty(&self) -> bool {
        self.hard.is_empty() && self.clauses.is_empty()
    }
}

/// Solves the subset of constraints selected by `hard_on` / `clause_on`.
/// Returns `true` when the subset is *provably* unsatisfiable within the
/// decision budget (budget exhaustion counts as "not proven").
fn subset_unsat(
    num_vars: usize,
    hard: &[Atom],
    clauses: &[Vec<Atom>],
    hard_on: &[bool],
    clause_on: &[bool],
    budget: u64,
) -> bool {
    let mut solver = OrderSolver::new().with_budget(budget);
    for _ in 0..num_vars {
        solver.new_var();
    }
    for (atom, &on) in hard.iter().zip(hard_on) {
        if on {
            solver.add_lt(atom.left, atom.right);
        }
    }
    for (clause, &on) in clauses.iter().zip(clause_on) {
        if on {
            solver.add_clause(clause.clone());
        }
    }
    matches!(
        solver.solve(),
        Err(SolveError::UnsatHard { .. } | SolveError::UnsatClauses)
    )
}

/// Minimizes an unsatisfiable constraint system to a minimal infeasible
/// core by destructive (deletion-based) minimization: every constraint is
/// tentatively dropped, and kept out iff the remainder is still provably
/// unsatisfiable. The result is 1-minimal — removing any surviving
/// constraint makes the rest satisfiable — though not necessarily a
/// globally smallest core.
///
/// Returns `None` when the full system is not provably unsatisfiable
/// within `budget` decisions per subset solve (i.e. it is satisfiable, or
/// too hard to decide).
pub fn minimize_unsat_core(
    num_vars: usize,
    hard: &[Atom],
    clauses: &[Vec<Atom>],
    budget: u64,
) -> Option<UnsatCore> {
    let mut hard_on = vec![true; hard.len()];
    let mut clause_on = vec![true; clauses.len()];
    if !subset_unsat(num_vars, hard, clauses, &hard_on, &clause_on, budget) {
        return None;
    }

    // Narrow to the first provably-unsat component before any deletion
    // pass: no atom crosses components, so a minimal core always lives
    // entirely inside one of them, and every probe below then solves
    // only that component's constraints. (An empty clause belongs to no
    // component; if that is the culprit, no component is unsat on its
    // own and the full-width passes below still find it.)
    let comps = crate::turbo::decompose(num_vars, hard, clauses);
    if comps.len() > 1 {
        for comp in &comps {
            if comp.hard_idx.is_empty() && comp.clause_idx.is_empty() {
                continue;
            }
            let mut comp_hard = vec![false; hard.len()];
            let mut comp_clauses = vec![false; clauses.len()];
            for &i in &comp.hard_idx {
                comp_hard[i] = true;
            }
            for &i in &comp.clause_idx {
                comp_clauses[i] = true;
            }
            if subset_unsat(num_vars, hard, clauses, &comp_hard, &comp_clauses, budget) {
                hard_on = comp_hard;
                clause_on = comp_clauses;
                break;
            }
        }
    }

    // Coarse first cut: if the hard constraints alone are contradictory
    // (the common case — a dependence cycle), every clause can go at once.
    let no_clauses = vec![false; clauses.len()];
    if subset_unsat(num_vars, hard, clauses, &hard_on, &no_clauses, budget) {
        clause_on = no_clauses;
    }

    // Linear deletion pass over clauses, then hard constraints.
    for i in 0..clauses.len() {
        if !clause_on[i] {
            continue;
        }
        clause_on[i] = false;
        if !subset_unsat(num_vars, hard, clauses, &hard_on, &clause_on, budget) {
            clause_on[i] = true;
        }
    }
    for i in 0..hard.len() {
        if !hard_on[i] {
            continue;
        }
        hard_on[i] = false;
        if !subset_unsat(num_vars, hard, clauses, &hard_on, &clause_on, budget) {
            hard_on[i] = true;
        }
    }

    Some(UnsatCore {
        hard: (0..hard.len()).filter(|&i| hard_on[i]).collect(),
        clauses: (0..clauses.len()).filter(|&i| clause_on[i]).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Var;

    fn atoms(pairs: &[(u32, u32)]) -> Vec<Atom> {
        pairs.iter().map(|&(a, b)| Atom::lt(Var(a), Var(b))).collect()
    }

    #[test]
    fn satisfiable_system_has_no_core() {
        let hard = atoms(&[(0, 1), (1, 2)]);
        assert_eq!(minimize_unsat_core(3, &hard, &[], 10_000), None);
    }

    #[test]
    fn cycle_core_drops_irrelevant_constraints() {
        // 0<1, 1<0 is the cycle; 2<3 and a clause are noise.
        let hard = atoms(&[(2, 3), (0, 1), (1, 0)]);
        let clauses = vec![atoms(&[(2, 3), (3, 2)])];
        let core = minimize_unsat_core(4, &hard, &clauses, 10_000).unwrap();
        assert_eq!(core.hard, vec![1, 2]);
        assert!(core.clauses.is_empty());
        assert_eq!(core.len(), 2);
    }

    #[test]
    fn clause_only_contradiction_survives() {
        // Two opposing unit clauses; no hard constraints at all.
        let clauses = vec![atoms(&[(0, 1)]), atoms(&[(1, 0)]), atoms(&[(0, 2), (2, 0)])];
        let core = minimize_unsat_core(3, &[], &clauses, 10_000).unwrap();
        assert!(core.hard.is_empty());
        assert_eq!(core.clauses, vec![0, 1]);
    }

    #[test]
    fn core_is_one_minimal() {
        // A 3-cycle through hard constraints plus a redundant second path.
        let hard = atoms(&[(0, 1), (1, 2), (2, 0), (0, 2)]);
        let core = minimize_unsat_core(3, &hard, &[], 10_000).unwrap();
        // Dropping any surviving member must yield a satisfiable rest.
        for &skip in &core.hard {
            let kept: Vec<Atom> = core
                .hard
                .iter()
                .filter(|&&i| i != skip)
                .map(|&i| hard[i])
                .collect();
            assert_eq!(
                minimize_unsat_core(3, &kept, &[], 10_000),
                None,
                "core not minimal: still unsat without hard[{skip}]"
            );
        }
    }

    #[test]
    fn core_narrows_to_the_unsat_component() {
        // Component {0,1} is healthy noise; component {2,3} has the
        // cycle. Narrowing restricts the deletion passes to {2,3}.
        let hard = atoms(&[(0, 1), (2, 3), (3, 2)]);
        let clauses = vec![atoms(&[(0, 1)]), atoms(&[(2, 3), (3, 2)])];
        let core = minimize_unsat_core(4, &hard, &clauses, 10_000).unwrap();
        assert_eq!(core.hard, vec![1, 2]);
        assert!(core.clauses.is_empty());
    }

    #[test]
    fn mixed_core_spans_hard_and_clauses() {
        // hard 0<1 plus unit clause 1<0: both must survive.
        let hard = atoms(&[(0, 1)]);
        let clauses = vec![atoms(&[(1, 0)]), atoms(&[(0, 1), (1, 0)])];
        let core = minimize_unsat_core(2, &hard, &clauses, 10_000).unwrap();
        assert_eq!(core.hard, vec![0]);
        assert_eq!(core.clauses, vec![0]);
    }
}
