//! An Integer Difference Logic ordering solver.
//!
//! Light's replay phase (paper Section 4.2) discharges a constraint system
//! to an SMT solver using only the Integer Difference Logic theory: order
//! variables `O(c)`, hard constraints `O(c_w) < O(c_r)` for each flow
//! dependence, thread-local order constraints, and binary disjunctions for
//! non-interference (Equation 1). No program-value arithmetic is involved —
//! that is the paper's central argument for why record-based replay avoids
//! the solver limitations that cripple computation-based replay.
//!
//! This crate implements exactly that fragment:
//!
//! - [`DiffGraph`] — an incremental difference-constraint graph maintaining
//!   a valid potential function (Cotton–Maler refinement, negative-cycle
//!   conflict detection, O(1) backtracking);
//! - [`OrderSolver`] — DPLL-style backtracking over one disjunct per
//!   clause, with the graph as the theory oracle, producing a [`Model`]
//!   whose [`Model::total_order`] is the replay schedule;
//! - [`OrderSolver::solve_turbo`] — the same answer computed
//!   component-sharded: Equation 1 never couples distinct locations, so
//!   the system splits into independent components solved in parallel
//!   (preprocessed, optionally cached across solves) and merged into one
//!   deterministic model.

mod graph;
mod solver;
mod turbo;
mod unsat;

pub use graph::{AddResult, DiffGraph, Var};
pub use solver::{Atom, Model, OrderSolver, SolveError, SolveStats};
pub use turbo::{decompose, Component, ComponentCache, PrepStats, TurboOptions, TurboSolve, TurboStats};
pub use unsat::{minimize_unsat_core, UnsatCore};
