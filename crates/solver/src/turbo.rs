//! Turbo solving: component-sharded parallel search with constraint
//! preprocessing and an incremental component cache.
//!
//! Equation 1's non-interference disjunctions only ever couple order
//! variables of accesses to the *same* location, and hard constraints
//! follow individual dependences, so the constraint graph of a recording
//! decomposes into independent components connected by no atom at all. A
//! model for the whole system is then just a model per component laid out
//! side by side, and Lemma 4.1 (real recordings are satisfiable) holds
//! component-wise — each component is itself the image of a real partial
//! execution. This module exploits that structure three ways:
//!
//! 1. **Decomposition** ([`decompose`]) — union-find over the variables
//!    touched by hard atoms and clauses splits the system into
//!    independent sub-systems that are solved on a scoped thread pool and
//!    merged deterministically (components in smallest-variable order,
//!    per-component values rank-compressed and offset), so the merged
//!    [`Model`] never depends on thread completion order.
//! 2. **Preprocessing** — unit clauses are promoted to hard facts before
//!    the search, atoms contradicted by those facts are dropped, entailed
//!    clauses and duplicate/subsumed clauses are eliminated, and the
//!    survivors are ordered fail-first by *remaining* width.
//! 3. **Incremental re-solve** ([`ComponentCache`]) — a shared cache
//!    keyed by a component's exact local constraint system lets repeated
//!    solves (light-explore candidate recordings, light-doctor probes)
//!    reuse components whose location groups did not change.
//!
//! Recordings with a single component (the common case once monitor and
//! thread-lifecycle ghosts weave threads together) fall back to the
//! sequential search and keep byte-identical schedules.

use crate::graph::{AddResult, DiffGraph, Var};
use crate::solver::{run_search, Atom, Model, OrderSolver, SolveError, SolveStats};
use std::borrow::Cow;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning for [`OrderSolver::solve_turbo`].
#[derive(Debug, Clone)]
pub struct TurboOptions {
    /// Worker threads for the component pool. `0` means one per available
    /// core; always capped by the component count.
    pub workers: usize,
    /// Run the preprocessing pass before each component search.
    pub preprocess: bool,
    /// Reuse solved components across solves that share location groups.
    pub cache: Option<ComponentCache>,
}

impl Default for TurboOptions {
    fn default() -> Self {
        Self {
            workers: 0,
            preprocess: true,
            cache: None,
        }
    }
}

/// What preprocessing removed or promoted, summed over all components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrepStats {
    /// Single-atom clauses promoted to hard constraints.
    pub promoted_units: u64,
    /// Disjuncts dropped (duplicates within a clause, or contradicted by
    /// the accumulated hard facts).
    pub dropped_atoms: u64,
    /// Whole clauses dropped (duplicates, or entailed by hard facts).
    pub dropped_clauses: u64,
    /// Clauses eliminated because a strict subset clause subsumes them.
    pub subsumed_clauses: u64,
}

impl PrepStats {
    fn absorb(&mut self, other: &PrepStats) {
        self.promoted_units += other.promoted_units;
        self.dropped_atoms += other.dropped_atoms;
        self.dropped_clauses += other.dropped_clauses;
        self.subsumed_clauses += other.subsumed_clauses;
    }
}

/// Statistics for one [`OrderSolver::solve_turbo`] call.
#[derive(Debug, Clone, Default)]
pub struct TurboStats {
    /// Independent components the system split into (`1` means the exact
    /// sequential path ran).
    pub components: u64,
    /// Variable count of the widest component.
    pub widest_component: u64,
    /// Worker threads used for the component pool.
    pub workers: u64,
    /// Components answered from the [`ComponentCache`].
    pub cache_hits: u64,
    /// Components solved fresh while a cache was attached.
    pub cache_misses: u64,
    /// Aggregate preprocessing effect.
    pub prep: PrepStats,
    /// Per-component search statistics, in deterministic component order.
    pub per_component: Vec<SolveStats>,
}

impl TurboStats {
    /// Converts to the unified observability section.
    pub fn metrics(&self) -> light_obs::TurboMetrics {
        light_obs::TurboMetrics {
            components: self.components,
            widest_component: self.widest_component,
            workers: self.workers,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            promoted_units: self.prep.promoted_units,
            dropped_clauses: self.prep.dropped_clauses + self.prep.subsumed_clauses,
        }
    }
}

/// A successful [`OrderSolver::solve_turbo`]: the merged model, aggregate
/// search statistics (decisions and backtracks summed over components),
/// and the turbo-specific breakdown.
#[derive(Debug)]
pub struct TurboSolve {
    pub model: Model,
    pub stats: SolveStats,
    pub turbo: TurboStats,
}

/// One independent sub-system of a constraint system, with every atom
/// rewritten to local variable ids (`0..vars.len()`); local id `i` names
/// global variable `vars[i]`.
#[derive(Debug)]
pub struct Component {
    /// Member variables by global id, ascending.
    pub vars: Vec<Var>,
    /// Hard atoms in local terms, original assertion order.
    pub hard: Vec<Atom>,
    /// Clauses in local terms, original assertion order.
    pub clauses: Vec<Vec<Atom>>,
    /// Global indices (into the caller's `hard`) of this component's
    /// hard atoms, parallel to `hard`.
    pub hard_idx: Vec<usize>,
    /// Global indices (into the caller's `clauses`) of this component's
    /// clauses, parallel to `clauses`.
    pub clause_idx: Vec<usize>,
}

/// Union-find with path halving; roots are always the smallest member id
/// so component identity is stable under iteration order.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }

    /// Number of disjoint sets, singletons included. Roots are exactly
    /// the self-parented entries, so no finds are needed.
    fn count_roots(&self) -> usize {
        self.parent.iter().enumerate().filter(|&(i, &p)| p as usize == i).count()
    }
}

/// Unions every variable pair that a hard atom orders or a clause
/// mentions together (choosing a disjunct couples every atom of its
/// clause).
fn connect(num_vars: usize, hard: &[Atom], clauses: &[Vec<Atom>]) -> UnionFind {
    let mut uf = UnionFind::new(num_vars);
    for a in hard {
        uf.union(a.left.0, a.right.0);
    }
    for clause in clauses {
        let mut anchor: Option<u32> = None;
        for a in clause {
            uf.union(a.left.0, a.right.0);
            match anchor {
                None => anchor = Some(a.left.0),
                Some(x) => uf.union(x, a.left.0),
            }
        }
    }
    uf
}

/// Splits a constraint system into independent components: variables are
/// connected when a hard atom orders them or a clause mentions both
/// (choosing a disjunct couples every atom of its clause). Components
/// come back ordered by their smallest global variable id; every variable
/// lands in exactly one (unconstrained variables form singletons).
///
/// Empty clauses touch no variable and are skipped — callers must check
/// for them separately.
pub fn decompose(num_vars: usize, hard: &[Atom], clauses: &[Vec<Atom>]) -> Vec<Component> {
    let mut uf = connect(num_vars, hard, clauses);

    // Iterating variables in ascending order and rooting each set at its
    // smallest member yields components already sorted by smallest id.
    let mut comp_of: Vec<u32> = vec![0; num_vars];
    let mut local_of: Vec<u32> = vec![0; num_vars];
    let mut index_of_root: HashMap<u32, usize> = HashMap::new();
    let mut comps: Vec<Component> = Vec::new();
    for v in 0..num_vars as u32 {
        let root = uf.find(v);
        let idx = *index_of_root.entry(root).or_insert_with(|| {
            comps.push(Component {
                vars: Vec::new(),
                hard: Vec::new(),
                clauses: Vec::new(),
                hard_idx: Vec::new(),
                clause_idx: Vec::new(),
            });
            comps.len() - 1
        });
        comp_of[v as usize] = idx as u32;
        local_of[v as usize] = comps[idx].vars.len() as u32;
        comps[idx].vars.push(Var(v));
    }

    let local = |v: Var| Var(local_of[v.index()]);
    for (i, a) in hard.iter().enumerate() {
        let idx = comp_of[a.left.index()] as usize;
        comps[idx].hard.push(Atom::lt(local(a.left), local(a.right)));
        comps[idx].hard_idx.push(i);
    }
    for (i, clause) in clauses.iter().enumerate() {
        let Some(first) = clause.first() else { continue };
        let idx = comp_of[first.left.index()] as usize;
        comps[idx]
            .clauses
            .push(clause.iter().map(|a| Atom::lt(local(a.left), local(a.right))).collect());
        comps[idx].clause_idx.push(i);
    }
    comps
}

/// Unit propagation runs to fixpoint or this many passes, whichever
/// comes first.
const MAX_PROP_PASSES: usize = 8;

/// Subsumption is quadratic in the clause count; components with more
/// clauses skip it.
const SUBSUME_MAX_CLAUSES: usize = 512;

/// Sorted `(left, right)` pairs: the canonical form used for subset
/// tests in subsumption.
fn normalize(atoms: &[Atom]) -> Vec<(u32, u32)> {
    let mut key: Vec<(u32, u32)> = atoms.iter().map(|a| (a.left.0, a.right.0)).collect();
    key.sort_unstable();
    key
}

/// Order-independent clause fingerprint: a commutative sum of mixed atom
/// bits, so dedup needs no sorted key allocation per clause.
fn fingerprint(atoms: &[Atom]) -> u64 {
    atoms.iter().fold(0u64, |acc, a| {
        let x = (((a.left.0 as u64) << 32) | a.right.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        acc.wrapping_add(x ^ (x >> 31))
    })
}

/// Whether sorted `a` is a subset of sorted `b`.
fn subset_of(a: &[(u32, u32)], b: &[(u32, u32)]) -> bool {
    let mut bi = b.iter();
    a.iter().all(|x| bi.any(|y| y == x))
}

/// Bitset transitive closure over strict order edges. Every solver atom
/// is a strict `<`, so on an acyclic edge set entailment and
/// contradiction reduce to reachability: `a < b` is entailed iff `a`
/// reaches `b`, and contradicted iff `b` reaches `a`. One build per
/// propagation pass replaces a mark/assert/undo graph probe per atom.
struct Closure {
    words: usize,
    bits: Vec<u64>,
}

impl Closure {
    /// Builds the closure, or `None` when the edges contain a cycle.
    fn build(num_vars: usize, edges: &[Atom]) -> Option<Closure> {
        let words = num_vars.div_ceil(64);
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); num_vars];
        let mut indegree = vec![0u32; num_vars];
        for a in edges {
            succs[a.left.index()].push(a.right.0);
            indegree[a.right.index()] += 1;
        }
        // Kahn's algorithm; a cycle keeps some indegree positive forever.
        let mut topo: Vec<u32> = Vec::with_capacity(num_vars);
        let mut ready: Vec<u32> =
            (0..num_vars as u32).filter(|&v| indegree[v as usize] == 0).collect();
        while let Some(v) = ready.pop() {
            topo.push(v);
            for &s in &succs[v as usize] {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        if topo.len() != num_vars {
            return None;
        }
        // Reverse topological order finishes every successor before `v`,
        // so reach(v) is the union over direct successors s of {s} ∪
        // reach(s). The scratch row sidesteps aliasing into `bits`.
        let mut bits = vec![0u64; num_vars * words];
        let mut row = vec![0u64; words];
        for &v in topo.iter().rev() {
            if succs[v as usize].is_empty() {
                continue;
            }
            row.fill(0);
            for &s in &succs[v as usize] {
                row[s as usize >> 6] |= 1u64 << (s & 63);
                let from = s as usize * words;
                for (w, slot) in row.iter_mut().enumerate() {
                    *slot |= bits[from + w];
                }
            }
            bits[v as usize * words..(v as usize + 1) * words].copy_from_slice(&row);
        }
        Some(Closure { words, bits })
    }

    fn reaches(&self, from: Var, to: Var) -> bool {
        self.bits[from.index() * self.words + (to.index() >> 6)] & (1u64 << (to.index() & 63)) != 0
    }
}

/// Preprocesses one component (in local terms). Returns the unit atoms
/// promoted to hard facts and the surviving clauses, fail-first ordered.
/// Every step is a satisfiability-preserving rewrite: atoms are dropped
/// only when the accumulated hard facts contradict them, clauses only
/// when the facts entail them or a subset clause subsumes them.
///
/// # Errors
///
/// [`SolveError::UnsatHard`] when the hard atoms alone are cyclic,
/// [`SolveError::UnsatClauses`] when propagation empties a clause or a
/// promoted unit contradicts the facts.
/// A preprocessed clause: borrowed from the component when untouched,
/// owned once propagation dropped an atom from it.
type PrepClause<'a> = Cow<'a, [Atom]>;

fn preprocess<'a>(
    num_vars: usize,
    hard: &[Atom],
    clauses: &'a [Vec<Atom>],
    stats: &mut PrepStats,
) -> Result<(Vec<Atom>, Vec<PrepClause<'a>>), SolveError> {
    // Hard atoms alone must be acyclic. When they are not, the offending
    // atom is named by replaying the insertion order through a difference
    // graph — exactly the atom the sequential solver's hard-assertion
    // phase would report.
    let mut closure = match Closure::build(num_vars, hard) {
        Some(c) => c,
        None => {
            let mut graph = DiffGraph::new();
            for _ in 0..num_vars {
                graph.new_var();
            }
            for &a in hard {
                if graph.add_lt(a.left, a.right) == AddResult::NegativeCycle {
                    return Err(SolveError::UnsatHard { constraint: a });
                }
            }
            unreachable!("topological sort found a cycle the difference graph did not");
        }
    };

    // Dedup without allocating per clause: a clause is only copied when
    // it actually repeats an atom (clauses are short, so the scan is a
    // cheap quadratic), and duplicate clauses are found through an
    // order-independent fingerprint with an exact set comparison on hit.
    // A fingerprint collision between distinct clauses keeps both —
    // dedup is an optimization, never a soundness requirement.
    let mut seen: HashMap<(usize, u64), u32> = HashMap::with_capacity(clauses.len());
    let mut work: Vec<Option<Cow<'a, [Atom]>>> = Vec::with_capacity(clauses.len());
    for clause in clauses {
        let mut atoms: Cow<'a, [Atom]> = Cow::Borrowed(clause.as_slice());
        if clause.iter().enumerate().any(|(i, a)| clause[..i].contains(a)) {
            let mut unique: Vec<Atom> = Vec::with_capacity(clause.len());
            for &a in clause {
                if unique.contains(&a) {
                    stats.dropped_atoms += 1;
                } else {
                    unique.push(a);
                }
            }
            atoms = Cow::Owned(unique);
        }
        match seen.entry((atoms.len(), fingerprint(&atoms))) {
            Entry::Occupied(e) => {
                let prior = work[*e.get() as usize]
                    .as_deref()
                    .expect("dedup stage drops no work slots");
                // Atoms within each side are unique, so equal length plus
                // containment means set equality.
                if atoms.iter().all(|a| prior.contains(a)) {
                    stats.dropped_clauses += 1;
                } else {
                    work.push(Some(atoms));
                }
            }
            Entry::Vacant(e) => {
                e.insert(work.len() as u32);
                work.push(Some(atoms));
            }
        }
    }

    // Unit propagation to fixpoint: promoted units become hard edges,
    // which can entail or contradict further atoms on the next pass. The
    // closure is rebuilt once per promoting pass — every batch of new
    // units is checked for cycles before anything downstream trusts it.
    let mut edges: Vec<Atom> = hard.to_vec();
    let mut promoted: Vec<Atom> = Vec::new();
    for _ in 0..MAX_PROP_PASSES {
        let mut changed = false;
        let mut new_units = false;
        for slot in work.iter_mut() {
            let Some(atoms) = slot else { continue };
            if atoms.iter().any(|&a| closure.reaches(a.left, a.right)) {
                stats.dropped_clauses += 1;
                *slot = None;
                changed = true;
                continue;
            }
            // Copy-on-write: most clauses lose no atom and stay borrowed.
            if atoms.iter().any(|&a| a.left == a.right || closure.reaches(a.right, a.left)) {
                let owned = atoms.to_mut();
                let before = owned.len();
                owned.retain(|&a| a.left != a.right && !closure.reaches(a.right, a.left));
                stats.dropped_atoms += (before - owned.len()) as u64;
                changed = true;
            }
            match atoms.len() {
                0 => return Err(SolveError::UnsatClauses),
                1 => {
                    let unit = atoms[0];
                    promoted.push(unit);
                    edges.push(unit);
                    stats.promoted_units += 1;
                    *slot = None;
                    changed = true;
                    new_units = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
        if new_units {
            closure = match Closure::build(num_vars, &edges) {
                Some(c) => c,
                // Hard atoms alone were acyclic, so the cycle involves a
                // promoted unit — a clause-level contradiction.
                None => return Err(SolveError::UnsatClauses),
            };
        }
    }

    let mut rest: Vec<Cow<'a, [Atom]>> = work.into_iter().flatten().collect();

    // Subsumption: a clause that is a strict subset of another makes the
    // superset redundant (any disjunct satisfying the subset satisfies
    // the superset too). Equal clauses were already deduped, so only
    // strictly shorter clauses can subsume — candidates pair a clause
    // with one from a longer length bucket, and a uniform-width clause
    // set (the common case) skips the quadratic scan outright.
    let lengths: HashSet<usize> = rest.iter().map(|c| c.len()).collect();
    if rest.len() <= SUBSUME_MAX_CLAUSES && lengths.len() > 1 {
        let keys: Vec<Vec<(u32, u32)>> = rest.iter().map(|c| normalize(c)).collect();
        let mut by_len: Vec<usize> = (0..rest.len()).collect();
        by_len.sort_by_key(|&i| keys[i].len());
        let mut keep = vec![true; rest.len()];
        for (pos, &i) in by_len.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            for &j in &by_len[pos + 1..] {
                if keep[j] && keys[i].len() < keys[j].len() && subset_of(&keys[i], &keys[j]) {
                    keep[j] = false;
                    stats.subsumed_clauses += 1;
                }
            }
        }
        let mut it = keep.iter();
        rest.retain(|_| *it.next().expect("keep parallel to rest"));
    }

    // Fail-first: shortest remaining width searches (and fails) first.
    rest.sort_by_key(|c| c.len());
    Ok((promoted, rest))
}

/// Exact identity of a component's local constraint system. Full
/// structural equality — not a digest — so a cache hit can never alias a
/// different system.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    num_vars: u32,
    hard: Vec<Atom>,
    clauses: Vec<Vec<Atom>>,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    result: Result<Vec<i64>, SolveError>,
    stats: SolveStats,
}

#[derive(Debug)]
struct CacheState {
    map: HashMap<CacheKey, CacheEntry>,
    hits: u64,
    misses: u64,
    /// Byte gauge for [`light_obs::mem::subsystem::SOLVER_CACHE`], moved
    /// only under the cache mutex at store time (clones share this state,
    /// so one cache accounts once). `bytes` remembers our contribution so
    /// `Drop` unwinds exactly it from the shared gauge.
    mem: light_obs::mem::MemGauge,
    bytes: u64,
}

impl Default for CacheState {
    fn default() -> Self {
        CacheState {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            mem: light_obs::mem::handle(light_obs::mem::subsystem::SOLVER_CACHE),
            bytes: 0,
        }
    }
}

impl Drop for CacheState {
    fn drop(&mut self) {
        self.mem.sub(std::mem::take(&mut self.bytes));
    }
}

/// Estimated resident heap bytes of one cache entry (key + value),
/// counting the variable-length atom/assignment payloads the structs own.
fn cache_entry_bytes(key: &CacheKey, entry: &CacheEntry) -> u64 {
    let atoms = key.hard.len()
        + key
            .clauses
            .iter()
            .map(|c| c.len() + std::mem::size_of::<Vec<Atom>>() / std::mem::size_of::<Atom>())
            .sum::<usize>();
    let assignment = entry.result.as_ref().map_or(0, Vec::len);
    (std::mem::size_of::<CacheKey>()
        + std::mem::size_of::<CacheEntry>()
        + atoms * std::mem::size_of::<Atom>()
        + assignment * 8) as u64
}

/// Entries beyond this are not inserted (the cache only ever affects
/// time, never results, so a full cache simply stops growing).
const CACHE_CAP: usize = 4096;

/// A shared, thread-safe cache of solved components keyed by their exact
/// local constraint system. Clones share storage, so one cache handed to
/// repeated solves (a `light-explore` search, `light-doctor` probes)
/// turns unchanged location groups into lookups.
#[derive(Debug, Clone, Default)]
pub struct ComponentCache {
    inner: Arc<Mutex<CacheState>>,
}

impl ComponentCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached component count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count across all solves sharing this cache.
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("cache lock").hits
    }

    /// Lifetime miss count across all solves sharing this cache.
    pub fn misses(&self) -> u64 {
        self.inner.lock().expect("cache lock").misses
    }

    fn lookup(&self, key: &CacheKey) -> Option<CacheEntry> {
        let mut state = self.inner.lock().expect("cache lock");
        match state.map.get(key).cloned() {
            Some(entry) => {
                state.hits += 1;
                Some(entry)
            }
            None => {
                state.misses += 1;
                None
            }
        }
    }

    fn store(&self, key: CacheKey, entry: CacheEntry) {
        let mut state = self.inner.lock().expect("cache lock");
        if state.map.len() < CACHE_CAP {
            // Account at the ownership boundary (the entry enters the
            // shared cache), replacement-aware so re-stores do not leak.
            if state.mem.enabled() {
                let added = cache_entry_bytes(&key, &entry);
                let replaced = state
                    .map
                    .get(&key)
                    .map_or(0, |old| cache_entry_bytes(&key, old));
                state.mem.add(added);
                state.mem.sub(replaced);
                state.bytes = state.bytes.saturating_add(added).saturating_sub(replaced);
            }
            state.map.insert(key, entry);
        }
    }
}

/// The outcome of one component's solve, in local terms.
struct CompOutcome {
    result: Result<Vec<i64>, SolveError>,
    stats: SolveStats,
    prep: PrepStats,
    cached: bool,
}

/// Components wider than this skip preprocessing: the closure bitset is
/// quadratic in the variable count (`vars²/8` bytes per build), and
/// decomposition keeps the cases preprocessing helps far below this.
const PREP_MAX_VARS: usize = 4096;

/// The uncached part of one component's solve: optional preprocessing,
/// then the shared search on a private graph with a disabled flight
/// handle (tick events from worker threads would interleave
/// meaninglessly).
fn search_component(
    comp: &Component,
    preprocess_on: bool,
    max_decisions: u64,
    prep: &mut PrepStats,
    stats: &mut SolveStats,
) -> Result<Vec<i64>, SolveError> {
    let preprocess_on = preprocess_on && comp.vars.len() <= PREP_MAX_VARS;
    let (promoted, clauses) = if preprocess_on {
        preprocess(comp.vars.len(), &comp.hard, &comp.clauses, prep)?
    } else {
        let borrowed = comp.clauses.iter().map(|c| Cow::Borrowed(c.as_slice())).collect();
        (Vec::new(), borrowed)
    };
    let hard_owned;
    let hard: &[Atom] = if promoted.is_empty() {
        &comp.hard
    } else {
        let mut with_units = comp.hard.clone();
        with_units.extend(promoted);
        hard_owned = with_units;
        &hard_owned
    };
    let mut graph = DiffGraph::new();
    for _ in 0..comp.vars.len() {
        graph.new_var();
    }
    let mut order: Vec<u32> = (0..clauses.len() as u32).collect();
    order.sort_by_key(|&i| clauses[i as usize].len());
    run_search(
        &mut graph,
        hard,
        &clauses,
        &order,
        max_decisions,
        &light_obs::Flight::default(),
        stats,
    )
}

/// Solves one component: cache lookup, then [`search_component`], then
/// cache store.
fn solve_component(
    comp: &Component,
    preprocess_on: bool,
    cache: Option<&ComponentCache>,
    max_decisions: u64,
) -> CompOutcome {
    let key = cache.map(|_| CacheKey {
        num_vars: comp.vars.len() as u32,
        hard: comp.hard.clone(),
        clauses: comp.clauses.clone(),
    });
    if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
        if let Some(hit) = cache.lookup(key) {
            return CompOutcome {
                result: hit.result,
                stats: hit.stats,
                prep: PrepStats::default(),
                cached: true,
            };
        }
    }

    let started = Instant::now();
    let mut prep = PrepStats::default();
    let mut stats = SolveStats {
        vars: comp.vars.len() as u64,
        hard_constraints: comp.hard.len() as u64,
        clauses: comp.clauses.len() as u64,
        ..SolveStats::default()
    };
    let result = search_component(comp, preprocess_on, max_decisions, &mut prep, &mut stats);
    stats.solve_time = started.elapsed();

    if let (Some(cache), Some(key)) = (cache, key) {
        cache.store(
            key,
            CacheEntry {
                result: result.clone(),
                stats,
            },
        );
    }
    CompOutcome {
        result,
        stats,
        prep,
        cached: false,
    }
}

/// At most this many per-component flight events are emitted per solve
/// (wide synthetic systems would otherwise flood the ring).
const COMPONENT_EVENT_CAP: usize = 256;

impl OrderSolver {
    /// Component-sharded parallel solve. Decomposes the system, solves
    /// each component on a scoped worker pool (preprocessed and cached
    /// per [`TurboOptions`]), and merges the partial models into one
    /// deterministic total model: components in smallest-variable order,
    /// each rank-compressed and offset past its predecessors. The result
    /// is identical for any worker count.
    ///
    /// Systems with at most one component (or an empty clause, which
    /// belongs to no component) delegate to the exact sequential search,
    /// so their models — and the schedules built from them — stay
    /// byte-identical to [`OrderSolver::solve_with_stats`].
    ///
    /// # Errors
    ///
    /// [`SolveError`], aggregated across components in the sequential
    /// phase order: a hard contradiction anywhere wins (the sequential
    /// solver asserts every hard atom before searching), then clause
    /// unsat, then budget exhaustion; ties resolve to the earliest
    /// component. Each component gets the full decision budget.
    pub fn solve_turbo(&mut self, opts: &TurboOptions) -> Result<TurboSolve, SolveError> {
        let start = Instant::now();
        if self.clauses.iter().any(Vec::is_empty) {
            return self.solve_sequential_as_turbo();
        }
        // Count components with union-find alone before materializing the
        // clause-cloning decomposition: a single-component system — every
        // real recording once ghost edges weave its threads together —
        // pays only this linear scan on top of the sequential search.
        if connect(self.num_vars(), &self.hard, &self.clauses).count_roots() <= 1 {
            return self.solve_sequential_as_turbo();
        }
        let comps = decompose(self.num_vars(), &self.hard, &self.clauses);

        let workers = if opts.workers == 0 {
            std::thread::available_parallelism().map(usize::from).unwrap_or(1)
        } else {
            opts.workers
        }
        .clamp(1, comps.len());

        let max_decisions = self.max_decisions;
        let slots: Vec<Mutex<Option<CompOutcome>>> = comps.iter().map(|_| Mutex::new(None)).collect();
        if workers == 1 {
            for (comp, slot) in comps.iter().zip(&slots) {
                *slot.lock().expect("slot lock") =
                    Some(solve_component(comp, opts.preprocess, opts.cache.as_ref(), max_decisions));
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let (next, comps, slots, cache) = (&next, &comps, &slots, &opts.cache);
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(comp) = comps.get(i) else { break };
                        let out = solve_component(comp, opts.preprocess, cache.as_ref(), max_decisions);
                        *slots[i].lock().expect("slot lock") = Some(out);
                    });
                }
            });
        }
        let outcomes: Vec<CompOutcome> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock")
                    .expect("every component solved")
            })
            .collect();

        // Error aggregation mirrors the sequential phase order; the
        // failing hard atom is remapped back to global variables.
        let mut hard_err: Option<SolveError> = None;
        let (mut clause_err, mut budget_err) = (false, false);
        for (comp, out) in comps.iter().zip(&outcomes) {
            match &out.result {
                Err(SolveError::UnsatHard { constraint }) => {
                    if hard_err.is_none() {
                        hard_err = Some(SolveError::UnsatHard {
                            constraint: Atom::lt(
                                comp.vars[constraint.left.index()],
                                comp.vars[constraint.right.index()],
                            ),
                        });
                    }
                }
                Err(SolveError::UnsatClauses) => clause_err = true,
                Err(SolveError::BudgetExhausted) => budget_err = true,
                Ok(_) => {}
            }
        }

        let mut stats = SolveStats {
            vars: self.num_vars() as u64,
            hard_constraints: self.hard.len() as u64,
            clauses: self.clauses.len() as u64,
            ..SolveStats::default()
        };
        let mut turbo = TurboStats {
            components: comps.len() as u64,
            workers: workers as u64,
            ..TurboStats::default()
        };
        for (comp, out) in comps.iter().zip(&outcomes) {
            stats.decisions += out.stats.decisions;
            stats.backtracks += out.stats.backtracks;
            turbo.widest_component = turbo.widest_component.max(comp.vars.len() as u64);
            if opts.cache.is_some() {
                if out.cached {
                    turbo.cache_hits += 1;
                } else {
                    turbo.cache_misses += 1;
                }
            }
            turbo.prep.absorb(&out.prep);
            turbo.per_component.push(out.stats);
        }

        // Observability: one event per component (capped), then the
        // aggregate tick the profiler's solver attribution keys on.
        for (comp, out) in comps.iter().zip(&outcomes).take(COMPONENT_EVENT_CAP) {
            self.flight.emit(
                light_obs::FlightKind::SolverComponent,
                0,
                light_obs::NO_SITE,
                comp.vars.len() as u64,
                out.stats.decisions,
            );
        }
        self.flight.emit(
            light_obs::FlightKind::SolverTick,
            0,
            light_obs::NO_SITE,
            stats.decisions,
            stats.backtracks,
        );

        if let Some(err) = hard_err {
            return Err(err);
        }
        if clause_err {
            return Err(SolveError::UnsatClauses);
        }
        if budget_err {
            return Err(SolveError::BudgetExhausted);
        }

        // Deterministic merge: rank-compress each component's values
        // (strict orders survive compression; ties break by local id)
        // and lay components out consecutively. No constraint crosses
        // components, so any relative placement is a valid model.
        let mut values = vec![0i64; self.num_vars()];
        let mut offset = 0i64;
        for (comp, out) in comps.iter().zip(&outcomes) {
            let local = match &out.result {
                Ok(values) => values,
                Err(_) => unreachable!("errors returned above"),
            };
            let mut by_value: Vec<usize> = (0..local.len()).collect();
            by_value.sort_by_key(|&i| (local[i], i));
            for (rank, &i) in by_value.iter().enumerate() {
                values[comp.vars[i].index()] = offset + rank as i64;
            }
            offset += local.len() as i64;
        }
        stats.solve_time = start.elapsed();
        Ok(TurboSolve {
            model: Model::from_values(values),
            stats,
            turbo,
        })
    }

    /// The `components <= 1` path: run the exact sequential search and
    /// wrap it in turbo bookkeeping.
    fn solve_sequential_as_turbo(&mut self) -> Result<TurboSolve, SolveError> {
        let (model, stats) = self.solve_with_stats()?;
        Ok(TurboSolve {
            model,
            stats,
            turbo: TurboStats {
                components: 1,
                widest_component: stats.vars,
                workers: 1,
                per_component: vec![stats],
                ..TurboStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two independent 3-variable groups, each with a hard edge and a
    /// clause; plus one isolated variable.
    fn two_group_solver() -> OrderSolver {
        let mut s = OrderSolver::new();
        let v: Vec<Var> = (0..7).map(|_| s.new_var()).collect();
        s.add_lt(v[0], v[1]);
        s.add_clause(vec![Atom::lt(v[2], v[0]), Atom::lt(v[1], v[2])]);
        s.add_lt(v[3], v[4]);
        s.add_clause(vec![Atom::lt(v[5], v[3]), Atom::lt(v[4], v[5])]);
        s
    }

    fn check_model(s: &OrderSolver, model: &Model) {
        for atom in &s.hard {
            assert!(model.value(atom.left) < model.value(atom.right), "hard {atom} violated");
        }
        for clause in &s.clauses {
            assert!(
                clause.iter().any(|a| model.value(a.left) < model.value(a.right)),
                "clause unsatisfied"
            );
        }
    }

    #[test]
    fn decompose_splits_independent_groups() {
        let s = two_group_solver();
        let comps = decompose(s.num_vars(), &s.hard, &s.clauses);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].vars, vec![Var(0), Var(1), Var(2)]);
        assert_eq!(comps[1].vars, vec![Var(3), Var(4), Var(5)]);
        assert_eq!(comps[2].vars, vec![Var(6)]);
        assert_eq!(comps[0].hard_idx, vec![0]);
        assert_eq!(comps[1].clause_idx, vec![1]);
        // Local atoms reference only local variables.
        for comp in &comps {
            let n = comp.vars.len() as u32;
            for a in &comp.hard {
                assert!(a.left.0 < n && a.right.0 < n);
            }
        }
    }

    #[test]
    fn turbo_model_satisfies_all_constraints() {
        let mut s = two_group_solver();
        let solved = s.solve_turbo(&TurboOptions::default()).unwrap();
        assert_eq!(solved.turbo.components, 3);
        assert!(solved.turbo.widest_component >= 3);
        check_model(&s, &solved.model);
    }

    #[test]
    fn turbo_is_deterministic_across_worker_counts() {
        let baseline = {
            let mut s = two_group_solver();
            let opts = TurboOptions { workers: 1, ..TurboOptions::default() };
            s.solve_turbo(&opts).unwrap()
        };
        for workers in [2, 8] {
            let mut s = two_group_solver();
            let opts = TurboOptions { workers, ..TurboOptions::default() };
            let solved = s.solve_turbo(&opts).unwrap();
            for v in 0..s.num_vars() as u32 {
                assert_eq!(
                    solved.model.value(Var(v)),
                    baseline.model.value(Var(v)),
                    "var {v} differs at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn single_component_is_byte_identical_to_sequential() {
        let build = || {
            let mut s = OrderSolver::new();
            let v: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
            s.add_lt(v[0], v[1]);
            s.add_lt(v[1], v[2]);
            s.add_clause(vec![Atom::lt(v[3], v[0]), Atom::lt(v[2], v[3])]);
            s
        };
        let (seq, _) = build().solve_with_stats().unwrap();
        let turbo = build().solve_turbo(&TurboOptions::default()).unwrap();
        assert_eq!(turbo.turbo.components, 1);
        for v in 0..4u32 {
            assert_eq!(seq.value(Var(v)), turbo.model.value(Var(v)));
        }
    }

    #[test]
    fn preprocessing_promotes_units_and_subsumes() {
        let mut stats = PrepStats::default();
        let a = Var(0);
        let b = Var(1);
        let c = Var(2);
        let hard = vec![Atom::lt(a, b)];
        let clauses = vec![
            vec![Atom::lt(b, c)],                 // unit: promoted
            vec![Atom::lt(b, c), Atom::lt(c, a)], // entailed once b<c is hard
            vec![Atom::lt(b, a), Atom::lt(a, c)], // b<a contradicted: a<c promoted
            vec![Atom::lt(a, b), Atom::lt(a, b)], // dup atom, then entailed
        ];
        let (promoted, rest) = preprocess(3, &hard, &clauses, &mut stats).unwrap();
        assert!(rest.is_empty(), "all clauses resolved: {rest:?}");
        assert_eq!(promoted, vec![Atom::lt(b, c), Atom::lt(a, c)]);
        assert_eq!(stats.promoted_units, 2);
        assert_eq!(stats.dropped_atoms, 2);
        assert_eq!(stats.dropped_clauses, 2);
    }

    #[test]
    fn preprocessing_subsumption_drops_supersets() {
        let mut stats = PrepStats::default();
        // Disconnected atom pairs so nothing is entailed or contradicted.
        let clauses = vec![
            vec![Atom::lt(Var(0), Var(1)), Atom::lt(Var(2), Var(3))],
            vec![Atom::lt(Var(0), Var(1)), Atom::lt(Var(2), Var(3)), Atom::lt(Var(4), Var(5))],
        ];
        let (promoted, rest) = preprocess(6, &[], &clauses, &mut stats).unwrap();
        assert!(promoted.is_empty());
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].len(), 2);
        assert_eq!(stats.subsumed_clauses, 1);
    }

    #[test]
    fn preprocessing_detects_unsat() {
        let mut stats = PrepStats::default();
        let a = Var(0);
        let b = Var(1);
        // Unit b<a against hard a<b: clause-level unsat.
        let clauses = [vec![Atom::lt(b, a)]];
        let err = preprocess(2, &[Atom::lt(a, b)], &clauses, &mut stats);
        assert_eq!(err.unwrap_err(), SolveError::UnsatClauses);
    }

    #[test]
    fn turbo_reports_hard_unsat_with_global_atoms() {
        let mut s = OrderSolver::new();
        let v: Vec<Var> = (0..5).map(|_| s.new_var()).collect();
        s.add_lt(v[0], v[1]); // healthy component
        s.add_lt(v[3], v[4]); // cycle component
        s.add_lt(v[4], v[3]);
        let err = s.solve_turbo(&TurboOptions::default()).unwrap_err();
        match err {
            SolveError::UnsatHard { constraint } => {
                assert!(constraint.left.0 >= 3 && constraint.right.0 >= 3, "global ids: {constraint}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn turbo_reports_clause_unsat() {
        let mut s = OrderSolver::new();
        let v: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        s.add_lt(v[0], v[1]);
        s.add_clause(vec![Atom::lt(v[2], v[3])]);
        s.add_clause(vec![Atom::lt(v[3], v[2])]);
        assert_eq!(
            s.solve_turbo(&TurboOptions::default()).unwrap_err(),
            SolveError::UnsatClauses
        );
    }

    #[test]
    fn empty_clause_falls_back_to_sequential() {
        let mut s = OrderSolver::new();
        let _ = s.new_var();
        let _ = s.new_var();
        s.add_clause(vec![]);
        assert_eq!(
            s.solve_turbo(&TurboOptions::default()).unwrap_err(),
            SolveError::UnsatClauses
        );
    }

    #[test]
    fn cache_reuses_components_across_solves() {
        // Structurally distinct groups so no component aliases another
        // within one solve and the hit counts are exact.
        let build = || {
            let mut s = OrderSolver::new();
            let v: Vec<Var> = (0..7).map(|_| s.new_var()).collect();
            s.add_lt(v[0], v[1]);
            s.add_clause(vec![Atom::lt(v[2], v[0]), Atom::lt(v[1], v[2])]);
            s.add_lt(v[3], v[4]);
            s.add_lt(v[4], v[5]);
            s.add_clause(vec![Atom::lt(v[5], v[3]), Atom::lt(v[3], v[5])]);
            s
        };
        let cache = ComponentCache::new();
        let opts = TurboOptions {
            cache: Some(cache.clone()),
            ..TurboOptions::default()
        };
        let mut s = build();
        let first = s.solve_turbo(&opts).unwrap();
        assert_eq!(first.turbo.cache_hits, 0);
        assert_eq!(first.turbo.cache_misses, 3);
        let second = s.solve_turbo(&opts).unwrap();
        assert_eq!(second.turbo.cache_hits, 3);
        assert_eq!(second.turbo.cache_misses, 0);
        assert_eq!(cache.len(), 3);
        for v in 0..s.num_vars() as u32 {
            assert_eq!(first.model.value(Var(v)), second.model.value(Var(v)));
        }
    }

    #[test]
    fn cache_dedupes_identical_components_within_one_solve() {
        // `two_group_solver`'s groups are structurally identical in
        // local terms; with one worker the second group is answered by
        // the first group's entry.
        let opts = TurboOptions {
            workers: 1,
            cache: Some(ComponentCache::new()),
            ..TurboOptions::default()
        };
        let mut s = two_group_solver();
        let solved = s.solve_turbo(&opts).unwrap();
        assert_eq!(solved.turbo.cache_hits, 1);
        assert_eq!(solved.turbo.cache_misses, 2);
        check_model(&s, &solved.model);
    }

    #[test]
    fn turbo_stats_aggregate_per_component() {
        let mut s = two_group_solver();
        let solved = s.solve_turbo(&TurboOptions::default()).unwrap();
        assert_eq!(solved.turbo.per_component.len(), 3);
        let summed: u64 = solved.turbo.per_component.iter().map(|c| c.decisions).sum();
        assert_eq!(solved.stats.decisions, summed);
        assert_eq!(solved.stats.vars, 7);
        let m = solved.turbo.metrics();
        assert_eq!(m.components, 3);
        assert_eq!(m.workers, solved.turbo.workers);
    }
}
