//! The ordering solver: conjunction of clauses over strict-order atoms,
//! solved by backtracking search with the difference graph as the theory.

use crate::graph::{AddResult, DiffGraph, Var};
use std::fmt;
use std::time::{Duration, Instant};

/// An atom `left < right`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom {
    pub left: Var,
    pub right: Var,
}

impl Atom {
    /// Builds `left < right`.
    pub fn lt(left: Var, right: Var) -> Self {
        Self { left, right }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O({}) < O({})", self.left.0, self.right.0)
    }
}

/// Why solving failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The hard (unit) constraints are contradictory.
    UnsatHard { constraint: Atom },
    /// No choice of disjuncts satisfies every clause.
    UnsatClauses,
    /// The configured search budget was exhausted.
    BudgetExhausted,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::UnsatHard { constraint } => {
                write!(f, "hard constraint {constraint} is inconsistent")
            }
            SolveError::UnsatClauses => write!(f, "disjunctive clauses are unsatisfiable"),
            SolveError::BudgetExhausted => write!(f, "solver budget exhausted"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Search statistics for one [`OrderSolver::solve`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    pub decisions: u64,
    pub backtracks: u64,
    pub vars: u64,
    pub hard_constraints: u64,
    pub clauses: u64,
    pub solve_time: Duration,
}

impl SolveStats {
    /// Converts to the unified observability section.
    pub fn metrics(&self) -> light_obs::SolverMetrics {
        light_obs::SolverMetrics {
            vars: self.vars,
            hard_constraints: self.hard_constraints,
            clauses: self.clauses,
            decisions: self.decisions,
            backtracks: self.backtracks,
            solve_ns: self.solve_time.as_nanos() as u64,
        }
    }
}

impl From<&SolveStats> for light_obs::SolverMetrics {
    fn from(stats: &SolveStats) -> Self {
        stats.metrics()
    }
}

/// A satisfying assignment mapping each variable to an integer such that
/// all chosen atoms hold.
#[derive(Debug, Clone)]
pub struct Model {
    values: Vec<i64>,
}

impl Model {
    /// Builds a model from raw per-variable values (index = variable id).
    pub(crate) fn from_values(values: Vec<i64>) -> Self {
        Self { values }
    }

    /// The value assigned to `v`.
    pub fn value(&self, v: Var) -> i64 {
        self.values[v.index()]
    }

    /// All variables sorted by assigned value (ties broken by variable id):
    /// a total order consistent with every constraint.
    pub fn total_order(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = (0..self.values.len() as u32).map(Var).collect();
        vars.sort_by_key(|v| (self.values[v.index()], v.0));
        vars
    }
}

/// A solver instance: create variables, assert hard orderings and
/// disjunctive clauses, then [`OrderSolver::solve`].
///
/// This is the fragment of Integer Difference Logic that Light's replay
/// constraint system (Equation 1) needs: strict-order atoms, conjunction of
/// binary disjunctions, no arithmetic over program values.
///
/// # Example
///
/// ```
/// use light_solver::{OrderSolver, Atom};
///
/// let mut solver = OrderSolver::new();
/// let w1 = solver.new_var();
/// let r1 = solver.new_var();
/// let w2 = solver.new_var();
/// let r2 = solver.new_var();
/// solver.add_lt(w1, r1); // flow dependence w1 -> r1
/// solver.add_lt(w2, r2); // flow dependence w2 -> r2
/// // Non-interference: r1 before w2, or r2 before w1.
/// solver.add_clause(vec![Atom::lt(r1, w2), Atom::lt(r2, w1)]);
/// let model = solver.solve().expect("satisfiable");
/// assert!(model.value(w1) < model.value(r1));
/// assert!(model.value(r1) < model.value(w2) || model.value(r2) < model.value(w1));
/// ```
#[derive(Debug, Default)]
pub struct OrderSolver {
    pub(crate) graph: DiffGraph,
    pub(crate) hard: Vec<Atom>,
    pub(crate) clauses: Vec<Vec<Atom>>,
    pub(crate) max_decisions: u64,
    pub(crate) flight: light_obs::Flight,
    /// Cached smallest-first clause permutation, rebuilt lazily after
    /// [`OrderSolver::add_clause`] invalidates it.
    order: Option<Vec<u32>>,
}

/// How many search decisions pass between two `solver-tick` flight events
/// (plus one final tick when the search completes).
const TICK_EVERY: u64 = 4096;

impl OrderSolver {
    /// Creates an empty solver with the default search budget.
    pub fn new() -> Self {
        Self {
            max_decisions: 50_000_000,
            ..Self::default()
        }
    }

    /// Caps the number of search decisions before giving up.
    pub fn with_budget(mut self, max_decisions: u64) -> Self {
        self.max_decisions = max_decisions;
        self
    }

    /// Attaches a flight recorder. The search loop emits a `solver-tick`
    /// event (loc = decisions so far, aux = backtracks so far) every few
    /// thousand decisions and once on completion, giving profilers a
    /// phase-progress trace without timing every decision.
    pub fn set_flight(&mut self, flight: light_obs::Flight) {
        self.flight = flight;
    }

    /// Allocates a fresh order variable.
    pub fn new_var(&mut self) -> Var {
        self.graph.new_var()
    }

    /// Current variable count.
    pub fn num_vars(&self) -> usize {
        self.graph.num_vars()
    }

    /// Asserts the hard constraint `a < b`.
    pub fn add_lt(&mut self, a: Var, b: Var) {
        self.hard.push(Atom::lt(a, b));
    }

    /// Asserts a disjunction of atoms (at least one must hold).
    /// An empty clause makes the system unsatisfiable.
    pub fn add_clause(&mut self, atoms: Vec<Atom>) {
        self.clauses.push(atoms);
        self.order = None;
    }

    /// Solves the system.
    ///
    /// # Errors
    ///
    /// [`SolveError`] when the system is unsatisfiable or the search budget
    /// is exhausted.
    pub fn solve(&mut self) -> Result<Model, SolveError> {
        self.solve_with_stats().map(|(m, _)| m)
    }

    /// Solves and reports search statistics.
    ///
    /// # Errors
    ///
    /// See [`OrderSolver::solve`].
    pub fn solve_with_stats(&mut self) -> Result<(Model, SolveStats), SolveError> {
        let start = Instant::now();
        let mut stats = SolveStats {
            vars: self.num_vars() as u64,
            hard_constraints: self.hard.len() as u64,
            clauses: self.clauses.len() as u64,
            ..SolveStats::default()
        };

        // Sort clauses smallest-first (units behave like hard constraints).
        // The permutation is computed once and reused across solves instead
        // of cloning and re-sorting the clause list every call.
        if self.order.is_none() {
            let mut order: Vec<u32> = (0..self.clauses.len() as u32).collect();
            order.sort_by_key(|&i| self.clauses[i as usize].len());
            self.order = Some(order);
        }
        let order = self.order.as_deref().expect("order cached above");

        let values = run_search(
            &mut self.graph,
            &self.hard,
            &self.clauses,
            order,
            self.max_decisions,
            &self.flight,
            &mut stats,
        )?;
        stats.solve_time = start.elapsed();
        Ok((Model { values }, stats))
    }
}

/// The core search: asserts `hard`, then runs the depth-first
/// one-atom-per-clause search visiting `clauses` in the sequence given by
/// the `order` permutation. On success returns the potential of every
/// graph variable. Leaves `graph` popped back to empty so it can be
/// reused. Shared by the sequential path and `turbo`'s per-component
/// solves (which pass a disabled flight handle so tick events never
/// interleave across worker threads).
pub(crate) fn run_search<C: AsRef<[Atom]>>(
    graph: &mut DiffGraph,
    hard: &[Atom],
    clauses: &[C],
    order: &[u32],
    max_decisions: u64,
    flight: &light_obs::Flight,
    stats: &mut SolveStats,
) -> Result<Vec<i64>, SolveError> {
    for &atom in hard {
        if graph.add_lt(atom.left, atom.right) == AddResult::NegativeCycle {
            graph.pop_to(0);
            return Err(SolveError::UnsatHard { constraint: atom });
        }
    }
    if clauses.iter().any(|c| c.as_ref().is_empty()) {
        graph.pop_to(0);
        return Err(SolveError::UnsatClauses);
    }

    // Depth-first search over one atom per clause.
    struct DecisionFrame {
        clause: usize,
        atom: usize,
        mark: usize,
    }
    let clause_at = |pos: usize| clauses[order[pos] as usize].as_ref();
    let mut trail: Vec<DecisionFrame> = Vec::new();
    let mut clause_idx = 0usize;
    'search: while clause_idx < order.len() {
        let mut atom_idx = 0usize;
        loop {
            if stats.decisions >= max_decisions {
                graph.pop_to(0);
                return Err(SolveError::BudgetExhausted);
            }
            if atom_idx < clause_at(clause_idx).len() {
                let atom = clause_at(clause_idx)[atom_idx];
                stats.decisions += 1;
                if stats.decisions.is_multiple_of(TICK_EVERY) {
                    flight.emit(
                        light_obs::FlightKind::SolverTick,
                        0,
                        light_obs::NO_SITE,
                        stats.decisions,
                        stats.backtracks,
                    );
                }
                let mark = graph.mark();
                if graph.add_lt(atom.left, atom.right) == AddResult::Ok {
                    trail.push(DecisionFrame {
                        clause: clause_idx,
                        atom: atom_idx,
                        mark,
                    });
                    clause_idx += 1;
                    continue 'search;
                }
                atom_idx += 1;
            } else {
                // Exhausted this clause: backtrack.
                stats.backtracks += 1;
                let Some(frame) = trail.pop() else {
                    graph.pop_to(0);
                    return Err(SolveError::UnsatClauses);
                };
                graph.pop_to(frame.mark);
                clause_idx = frame.clause;
                atom_idx = frame.atom + 1;
            }
        }
    }

    let values: Vec<i64> = (0..graph.num_vars() as u32)
        .map(|v| graph.value(Var(v)))
        .collect();
    flight.emit(
        light_obs::FlightKind::SolverTick,
        0,
        light_obs::NO_SITE,
        stats.decisions,
        stats.backtracks,
    );
    // Reset graph state so solve() can be called again.
    graph.pop_to(0);
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_is_sat() {
        let mut s = OrderSolver::new();
        let a = s.new_var();
        let model = s.solve().unwrap();
        assert_eq!(model.value(a), 0);
    }

    #[test]
    fn hard_cycle_is_unsat() {
        let mut s = OrderSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_lt(a, b);
        s.add_lt(b, a);
        assert!(matches!(s.solve(), Err(SolveError::UnsatHard { .. })));
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = OrderSolver::new();
        let _ = s.new_var();
        s.add_clause(vec![]);
        assert_eq!(s.solve().unwrap_err(), SolveError::UnsatClauses);
    }

    #[test]
    fn clause_forces_backtracking() {
        // hard: a < b, b < c.
        // clause1: (c < a) ∨ (a < c)  -- first disjunct conflicts.
        let mut s = OrderSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_lt(a, b);
        s.add_lt(b, c);
        s.add_clause(vec![Atom::lt(c, a), Atom::lt(a, c)]);
        let model = s.solve().unwrap();
        assert!(model.value(a) < model.value(c));
    }

    #[test]
    fn interacting_clauses_need_deep_backtracking() {
        // Chain of choices where the first option is always a trap.
        let mut s = OrderSolver::new();
        let vars: Vec<_> = (0..8).map(|_| s.new_var()).collect();
        // Hard chain on even vars: v0 < v2 < v4 < v6.
        s.add_lt(vars[0], vars[2]);
        s.add_lt(vars[2], vars[4]);
        s.add_lt(vars[4], vars[6]);
        // Clauses whose first atoms build toward a cycle with the chain.
        s.add_clause(vec![Atom::lt(vars[6], vars[1]), Atom::lt(vars[1], vars[0])]);
        s.add_clause(vec![Atom::lt(vars[1], vars[4]), Atom::lt(vars[6], vars[3])]);
        s.add_clause(vec![Atom::lt(vars[4], vars[1]), Atom::lt(vars[3], vars[7])]);
        let model = s.solve().unwrap();
        // Verify every clause has a true disjunct.
        let holds = |a: Var, b: Var| model.value(a) < model.value(b);
        assert!(holds(vars[6], vars[1]) || holds(vars[1], vars[0]));
        assert!(holds(vars[1], vars[4]) || holds(vars[6], vars[3]));
        assert!(holds(vars[4], vars[1]) || holds(vars[3], vars[7]));
    }

    #[test]
    fn unsat_clause_combination() {
        let mut s = OrderSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(vec![Atom::lt(a, b)]);
        s.add_clause(vec![Atom::lt(b, a)]);
        assert_eq!(s.solve().unwrap_err(), SolveError::UnsatClauses);
    }

    #[test]
    fn total_order_is_consistent() {
        let mut s = OrderSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_lt(b, a);
        s.add_lt(a, c);
        let model = s.solve().unwrap();
        let order = model.total_order();
        let pos = |v: Var| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(b) < pos(a));
        assert!(pos(a) < pos(c));
    }

    #[test]
    fn budget_exhaustion_reports() {
        let mut s = OrderSolver::new().with_budget(2);
        let vars: Vec<_> = (0..6).map(|_| s.new_var()).collect();
        for w in vars.windows(2) {
            s.add_clause(vec![Atom::lt(w[0], w[1]), Atom::lt(w[1], w[0])]);
        }
        // Forcing conflicts exhausts two decisions quickly.
        s.add_lt(vars[5], vars[0]);
        match s.solve() {
            Err(SolveError::BudgetExhausted) | Err(SolveError::UnsatClauses) | Ok(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn solve_is_repeatable() {
        let mut s = OrderSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_lt(a, b);
        let m1 = s.solve().unwrap();
        let m2 = s.solve().unwrap();
        assert_eq!(m1.value(a), m2.value(a));
        assert_eq!(m1.value(b), m2.value(b));
    }

    #[test]
    fn stats_are_populated() {
        let mut s = OrderSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_lt(a, b);
        s.add_clause(vec![Atom::lt(b, a), Atom::lt(a, b)]);
        let (_, stats) = s.solve_with_stats().unwrap();
        assert_eq!(stats.hard_constraints, 1);
        assert_eq!(stats.clauses, 1);
        assert!(stats.decisions >= 1);
    }
}
