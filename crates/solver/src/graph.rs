//! Incremental difference-constraint graph with potential functions.
//!
//! Maintains a set of constraints of the form `x - y ≤ c` over integer
//! variables, represented as weighted edges `y → x` with weight `c`. The
//! invariant is a *valid potential* `π` with `π(x) ≤ π(y) + c` for every
//! edge — equivalently, the graph has no negative cycle and `π` is a
//! feasible solution. Edges are added one at a time with the
//! Cotton–Maler refinement algorithm (Dijkstra over reduced costs);
//! removing the most recently added edges (backtracking) is O(1) because a
//! potential valid for a superset of constraints stays valid for a subset.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A variable in the difference graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: Var,
    to: Var,
    weight: i64,
}

/// Result of attempting to add a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddResult {
    /// Constraint accepted; potentials updated.
    Ok,
    /// Constraint rejected: it would create a negative cycle. The graph is
    /// unchanged.
    NegativeCycle,
}

/// An incremental difference-logic constraint graph.
#[derive(Debug, Clone, Default)]
pub struct DiffGraph {
    /// Outgoing adjacency: edge indices by source variable.
    out_edges: Vec<Vec<usize>>,
    edges: Vec<Edge>,
    potential: Vec<i64>,
    /// Statistics: relabel operations performed.
    relabels: u64,
}

impl DiffGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh variable with potential 0.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.potential.len() as u32);
        self.potential.push(0);
        self.out_edges.push(Vec::new());
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.potential.len()
    }

    /// Number of active constraints.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Total potential-relabel operations (a work measure).
    pub fn relabels(&self) -> u64 {
        self.relabels
    }

    /// A mark for later [`DiffGraph::pop_to`].
    pub fn mark(&self) -> usize {
        self.edges.len()
    }

    /// Removes every constraint added after `mark`.
    pub fn pop_to(&mut self, mark: usize) {
        while self.edges.len() > mark {
            let e = self.edges.pop().expect("len checked");
            let popped = self.out_edges[e.from.index()].pop();
            debug_assert_eq!(popped, Some(self.edges.len()));
        }
    }

    /// Adds the constraint `x - y ≤ c`.
    ///
    /// Returns [`AddResult::NegativeCycle`] (leaving the graph unchanged)
    /// if the constraint contradicts the existing ones.
    pub fn add_le(&mut self, x: Var, y: Var, c: i64) -> AddResult {
        // Edge y → x with weight c; π(x) ≤ π(y) + c must hold.
        let (u, v, w) = (y, x, c);
        if self.potential[v.index()] <= self.potential[u.index()] + w {
            self.push_edge(u, v, w);
            return AddResult::Ok;
        }

        // Refine potentials via Dijkstra on reduced costs, starting from v.
        // δ(v) = π(u) + w − π(v) < 0; processing u with δ < 0 means the new
        // edge closes a negative cycle.
        let n = self.num_vars();
        let mut delta: Vec<i64> = vec![0; n];
        let mut finalized: Vec<bool> = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
        let dv = self.potential[u.index()] + w - self.potential[v.index()];
        delta[v.index()] = dv;
        heap.push(Reverse((dv, v.0)));

        let mut new_potentials: Vec<(usize, i64)> = Vec::new();
        while let Some(Reverse((d, node))) = heap.pop() {
            let node_idx = node as usize;
            if finalized[node_idx] || d > delta[node_idx] {
                continue;
            }
            if d >= 0 {
                break;
            }
            if node_idx == u.index() {
                // Negative cycle through the new edge.
                return AddResult::NegativeCycle;
            }
            finalized[node_idx] = true;
            let new_pi = self.potential[node_idx] + d;
            new_potentials.push((node_idx, new_pi));
            self.relabels += 1;
            for &ei in &self.out_edges[node_idx] {
                let e = self.edges[ei];
                let succ = e.to.index();
                if finalized[succ] {
                    continue;
                }
                // Reduced cost with the tentative new potential of `node`.
                let cand = new_pi + e.weight - self.potential[succ];
                if cand < delta[succ].min(0) {
                    delta[succ] = cand;
                    heap.push(Reverse((cand, e.to.0)));
                }
            }
        }

        for (idx, pi) in new_potentials {
            self.potential[idx] = pi;
        }
        debug_assert!(self.potential[v.index()] <= self.potential[u.index()] + w);
        self.push_edge(u, v, w);
        AddResult::Ok
    }

    /// Adds the strict constraint `x < y` (i.e. `x - y ≤ -1`).
    pub fn add_lt(&mut self, x: Var, y: Var) -> AddResult {
        self.add_le(x, y, -1)
    }

    fn push_edge(&mut self, from: Var, to: Var, weight: i64) {
        let idx = self.edges.len();
        self.edges.push(Edge { from, to, weight });
        self.out_edges[from.index()].push(idx);
    }

    /// A feasible integer assignment: `value(x) - value(y) ≤ c` for every
    /// constraint.
    pub fn value(&self, v: Var) -> i64 {
        self.potential[v.index()]
    }

    /// Whether `a < b` is already entailed... conservatively: by the
    /// current potentials being strict. (Sound to use only as a heuristic:
    /// potentials are one feasible model, so `value(a) < value(b)` does NOT
    /// prove entailment — callers must re-add the constraint to rely on it.)
    pub fn currently_before(&self, a: Var, b: Var) -> bool {
        self.value(a) < self.value(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_satisfiable() {
        let mut g = DiffGraph::new();
        let a = g.new_var();
        let b = g.new_var();
        let c = g.new_var();
        assert_eq!(g.add_lt(a, b), AddResult::Ok);
        assert_eq!(g.add_lt(b, c), AddResult::Ok);
        assert!(g.value(a) < g.value(b));
        assert!(g.value(b) < g.value(c));
    }

    #[test]
    fn two_cycle_is_rejected() {
        let mut g = DiffGraph::new();
        let a = g.new_var();
        let b = g.new_var();
        assert_eq!(g.add_lt(a, b), AddResult::Ok);
        assert_eq!(g.add_lt(b, a), AddResult::NegativeCycle);
        // Graph must be unchanged: the first constraint still holds.
        assert!(g.value(a) < g.value(b));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn long_cycle_is_rejected() {
        let mut g = DiffGraph::new();
        let vars: Vec<Var> = (0..10).map(|_| g.new_var()).collect();
        for w in vars.windows(2) {
            assert_eq!(g.add_lt(w[0], w[1]), AddResult::Ok);
        }
        assert_eq!(g.add_lt(vars[9], vars[0]), AddResult::NegativeCycle);
    }

    #[test]
    fn non_strict_zero_cycle_is_fine() {
        let mut g = DiffGraph::new();
        let a = g.new_var();
        let b = g.new_var();
        assert_eq!(g.add_le(a, b, 0), AddResult::Ok);
        assert_eq!(g.add_le(b, a, 0), AddResult::Ok); // a == b allowed
        assert_eq!(g.value(a), g.value(b));
    }

    #[test]
    fn backtracking_restores_feasibility() {
        let mut g = DiffGraph::new();
        let a = g.new_var();
        let b = g.new_var();
        assert_eq!(g.add_lt(a, b), AddResult::Ok);
        let mark = g.mark();
        let c = g.new_var();
        assert_eq!(g.add_lt(b, c), AddResult::Ok);
        assert_eq!(g.add_lt(c, a), AddResult::NegativeCycle);
        g.pop_to(mark);
        assert_eq!(g.num_edges(), 1);
        // After popping, b < a is now consistent via c? No: c's edge is
        // gone; b < a directly contradicts a < b.
        assert_eq!(g.add_lt(b, a), AddResult::NegativeCycle);
        // But c < a is fine now.
        assert_eq!(g.add_lt(c, a), AddResult::Ok);
        assert!(g.value(c) < g.value(a));
    }

    #[test]
    fn bounded_window_constraints() {
        // x - y ≤ 5 and y - x ≤ -3  =>  3 ≤ x - y ≤ 5.
        let mut g = DiffGraph::new();
        let x = g.new_var();
        let y = g.new_var();
        assert_eq!(g.add_le(x, y, 5), AddResult::Ok);
        assert_eq!(g.add_le(y, x, -3), AddResult::Ok);
        let (vx, vy) = (g.value(x), g.value(y));
        assert!(vx - vy <= 5 && vy - vx <= -3, "model {vx},{vy}");
        // Tightening into infeasibility: x - y ≤ 2 contradicts y - x ≤ -3.
        assert_eq!(g.add_le(x, y, 2), AddResult::NegativeCycle);
    }

    #[test]
    fn diamond_with_many_paths() {
        let mut g = DiffGraph::new();
        let vars: Vec<Var> = (0..6).map(|_| g.new_var()).collect();
        assert_eq!(g.add_lt(vars[0], vars[1]), AddResult::Ok);
        assert_eq!(g.add_lt(vars[0], vars[2]), AddResult::Ok);
        assert_eq!(g.add_lt(vars[1], vars[3]), AddResult::Ok);
        assert_eq!(g.add_lt(vars[2], vars[3]), AddResult::Ok);
        assert_eq!(g.add_lt(vars[3], vars[4]), AddResult::Ok);
        assert_eq!(g.add_lt(vars[4], vars[5]), AddResult::Ok);
        assert_eq!(g.add_lt(vars[5], vars[0]), AddResult::NegativeCycle);
        for w in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)] {
            assert!(g.value(vars[w.0]) < g.value(vars[w.1]));
        }
    }
}
