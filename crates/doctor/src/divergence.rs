//! Online replay divergence detection.
//!
//! [`DivergenceChecker`] implements [`Recorder`] and rides along a replay
//! run: every instrumented access flows through [`Recorder::on_access`]
//! *after* the scheduler has admitted the event, so the checker observes
//! exactly the enforced global order. It cross-checks each read against
//! the flow dependence the reference recording promised for that slot
//! (Theorem 1: reads observing the recorded writers is precisely what
//! correct replay means) and, on the first mismatch, captures a
//! structured [`DivergenceReport`] and raises the run's halt flag so the
//! broken replay stops instead of running to a misleading end state.
//!
//! Reads with no covering dependence or run in the reference — O2-skipped
//! lockset-guarded accesses, thread-local traffic — are counted but never
//! flagged: the recording is deliberately silent about them (Lemma 4.2),
//! so any writer is acceptable.

use light_core::{AccessId, DepEdge, Recording, RunRec};
use light_runtime::{AccessKind, HaltFlag, Loc, Recorder, SyncEvent, Tid};
use lir::{InstrId, Program};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// What a read slot is entitled to observe, per the reference recording.
#[derive(Debug, Clone)]
enum Expect {
    /// A dependence edge: every read in the range observes this writer
    /// (`None` = the location's initial value).
    Dep { w: Option<AccessId> },
    /// A non-interleaved run (O1): reads observe the run's own latest
    /// preceding write, or `w0` before the first own write.
    Run {
        w0: Option<AccessId>,
        write_ctrs: Vec<u64>,
    },
}

/// One covered counter range `[first, last]` of a thread on a location.
#[derive(Debug, Clone)]
struct Span {
    first: u64,
    last: u64,
    expect: Expect,
}

/// An entry of the recent-event ring buffer (the enforced order as the
/// scheduler admitted it — the "last N scheduler decisions" of a report).
#[derive(Debug, Clone, Copy)]
struct RingEvent {
    tid: Tid,
    ctr: u64,
    what: RingWhat,
}

#[derive(Debug, Clone, Copy)]
enum RingWhat {
    Access { loc: Loc, kind: AccessKind },
    Sync { name: &'static str },
}

/// A rendered entry of [`DivergenceReport::recent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedEvent {
    pub tid: Tid,
    pub ctr: u64,
    /// `"read @total"`, `"write obj1.head"`, `"rmw map(obj2)"`, or a sync
    /// event name like `"monitor-enter"`.
    pub what: String,
}

impl std::fmt::Display for ObservedEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}) {}", self.tid, self.ctr, self.what)
    }
}

/// A replay divergence: a read observed a different writer than the
/// reference recording promised for its slot.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// The reading thread.
    pub tid: Tid,
    /// The thread-local slot (instrumentation counter) of the read.
    pub ctr: u64,
    /// The dynamic location, rendered (`@total`, `obj1.head`, ...).
    pub loc: String,
    /// The raw location key (see `Loc::key`), for programmatic matching.
    pub loc_key: u64,
    /// The source-level variable, resolved through the program's symbol
    /// tables (`global total`, field `head`, ...).
    pub variable: String,
    /// 1-based source line of the reading instruction (0 if unknown).
    pub line: u32,
    /// The writer the reference recording expected (`None` = initial value).
    pub expected: Option<AccessId>,
    /// The writer actually observed (`None` = initial value).
    pub actual: Option<AccessId>,
    /// The last scheduler-admitted events before the mismatch, oldest first.
    pub recent: Vec<ObservedEvent>,
}

impl DivergenceReport {
    fn writer(w: &Option<AccessId>) -> String {
        match w {
            Some(id) => format!("write {id}"),
            None => "the initial value".to_string(),
        }
    }

    /// A multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "replay diverged at thread {} slot {}: read of {} ({}, line {})\n  expected {}\n  observed {}\n",
            self.tid,
            self.ctr,
            self.loc,
            self.variable,
            self.line,
            Self::writer(&self.expected),
            Self::writer(&self.actual),
        );
        out.push_str("  last scheduler decisions before the mismatch:\n");
        for ev in &self.recent {
            out.push_str(&format!("    {ev}\n"));
        }
        out
    }
}

impl std::fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Aggregate counters of one checked replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Reads cross-checked against a covering dependence or run.
    pub checked_reads: u64,
    /// Reads with no covering record (guarded/thread-local) — not flagged.
    pub uncovered_reads: u64,
    /// Mismatches seen (only the first is reported in full).
    pub mismatches: u64,
}

/// Mutable checker state, serialized under one lock. The lock also
/// guarantees that `last_writer` reflects the scheduler-admitted order:
/// `on_access` runs between the scheduler's admission gates.
#[derive(Default)]
struct State {
    /// Location key → the last writer admitted so far (absent = initial).
    last_writer: HashMap<u64, AccessId>,
    recent: VecDeque<RingEvent>,
    report: Option<DivergenceReport>,
    stats: CheckStats,
}

/// The divergence detector. Attach to a replay via
/// [`light_core::replay_observed`] with a shared [`HaltFlag`]; see
/// [`crate::doctor_replay`] for the packaged pipeline.
pub struct DivergenceChecker {
    program: Arc<Program>,
    /// `(thread, location key)` → covered spans, sorted by `first`.
    index: HashMap<(Tid, u64), Vec<Span>>,
    halt: HaltFlag,
    recent_cap: usize,
    state: Mutex<State>,
}

impl DivergenceChecker {
    /// Builds a checker from the reference recording's dependences and
    /// runs. `recent_cap` bounds the recent-event ring buffer.
    pub fn new(
        program: Arc<Program>,
        reference: &Recording,
        recent_cap: usize,
        halt: HaltFlag,
    ) -> Self {
        let mut index: HashMap<(Tid, u64), Vec<Span>> = HashMap::new();
        for &DepEdge {
            loc,
            w,
            r_tid,
            r_first,
            r_last,
        } in &reference.deps
        {
            index.entry((r_tid, loc)).or_default().push(Span {
                first: r_first,
                last: r_last,
                expect: Expect::Dep { w },
            });
        }
        for RunRec {
            loc,
            tid,
            w0,
            first,
            last,
            write_ctrs,
        } in &reference.runs
        {
            index.entry((*tid, *loc)).or_default().push(Span {
                first: *first,
                last: *last,
                expect: Expect::Run {
                    w0: *w0,
                    write_ctrs: write_ctrs.clone(),
                },
            });
        }
        for spans in index.values_mut() {
            spans.sort_by_key(|s| s.first);
        }
        Self {
            program,
            index,
            halt,
            recent_cap: recent_cap.max(1),
            state: Mutex::new(State::default()),
        }
    }

    /// The expected writer for a read by `tid` at slot `ctr` on `loc`:
    /// `None` = no covering record (lenient), `Some(w)` = the promised
    /// writer (itself `None` for the initial value).
    fn expected(&self, tid: Tid, ctr: u64, loc_key: u64) -> Option<Option<AccessId>> {
        let spans = self.index.get(&(tid, loc_key))?;
        let i = spans.partition_point(|s| s.first <= ctr).checked_sub(1)?;
        let span = &spans[i];
        if ctr > span.last {
            return None;
        }
        match &span.expect {
            Expect::Dep { w } => Some(*w),
            Expect::Run { w0, write_ctrs } => {
                // The run's own latest write strictly before this read,
                // else the external writer the run started from.
                match write_ctrs.iter().rev().find(|&&w| w < ctr) {
                    Some(&w) => Some(Some(AccessId::new(tid, w))),
                    None => Some(*w0),
                }
            }
        }
    }

    /// Resolves a location to a source-level variable name.
    fn variable(&self, loc: Loc) -> String {
        match loc {
            Loc::Global(g) => match self.program.globals.get(g.0 as usize) {
                Some(name) => format!("global {name}"),
                None => format!("global #{}", g.0),
            },
            Loc::Field(_, f) => match self.program.field_names.get(f.0 as usize) {
                Some(name) => format!("field {name}"),
                None => format!("field #{}", f.0),
            },
            Loc::Elem(_, i) => format!("array element [{i}]"),
            Loc::MapState(_) => "map contents".to_string(),
            Loc::Monitor(_) => "monitor state".to_string(),
            Loc::ThreadLife(t) => format!("thread {t} lifecycle"),
        }
    }

    fn render_ring(recent: &VecDeque<RingEvent>) -> Vec<ObservedEvent> {
        recent
            .iter()
            .map(|ev| ObservedEvent {
                tid: ev.tid,
                ctr: ev.ctr,
                what: match ev.what {
                    RingWhat::Access { loc, kind } => {
                        let verb = match kind {
                            AccessKind::Read => "read",
                            AccessKind::Write => "write",
                            AccessKind::ReadWrite => "rmw",
                        };
                        format!("{verb} {loc}")
                    }
                    RingWhat::Sync { name } => name.to_string(),
                },
            })
            .collect()
    }

    fn push_ring(&self, st: &mut State, ev: RingEvent) {
        if st.recent.len() == self.recent_cap {
            st.recent.pop_front();
        }
        st.recent.push_back(ev);
    }

    /// The first divergence seen, if any.
    pub fn report(&self) -> Option<DivergenceReport> {
        self.state.lock().report.clone()
    }

    /// Aggregate counters for the checked replay.
    pub fn stats(&self) -> CheckStats {
        self.state.lock().stats
    }
}

impl DivergenceChecker {
    /// The shared cross-check: record the event, verify the read side
    /// against the reference, track the write side. A read-modify-write
    /// observes the *previous* writer before installing itself.
    fn observe(
        &self,
        tid: Tid,
        ctr: u64,
        loc: Loc,
        kind: AccessKind,
        instr: InstrId,
        ring: RingWhat,
    ) {
        let key = loc.key();
        let mut st = self.state.lock();
        self.push_ring(&mut st, RingEvent { tid, ctr, what: ring });
        if kind.reads() {
            match self.expected(tid, ctr, key) {
                None => st.stats.uncovered_reads += 1,
                Some(expected) => {
                    st.stats.checked_reads += 1;
                    let actual = st.last_writer.get(&key).copied();
                    if actual != expected {
                        st.stats.mismatches += 1;
                        if st.report.is_none() {
                            st.report = Some(DivergenceReport {
                                tid,
                                ctr,
                                loc: loc.to_string(),
                                loc_key: key,
                                variable: self.variable(loc),
                                line: self.program.line_of(instr),
                                expected,
                                actual,
                                recent: Self::render_ring(&st.recent),
                            });
                            self.halt.set();
                        }
                    }
                }
            }
        }
        if kind.writes() {
            st.last_writer.insert(key, AccessId::new(tid, ctr));
        }
    }
}

impl Recorder for DivergenceChecker {
    fn on_access(
        &self,
        tid: Tid,
        ctr: u64,
        loc: Loc,
        kind: AccessKind,
        _guarded: bool,
        instr: InstrId,
        op: &mut dyn FnMut() -> u64,
    ) -> u64 {
        let value = op();
        self.observe(tid, ctr, loc, kind, instr, RingWhat::Access { loc, kind });
        value
    }

    fn on_sync(&self, tid: Tid, ctr: u64, ev: SyncEvent, instr: InstrId) {
        // Mirror the recorder's ghost-access model (Section 4.3): sync
        // events are reads/writes of monitor and thread-lifecycle
        // locations, so lock-acquisition and join-order divergences are
        // cross-checked exactly like data reads.
        let (name, loc, kind) = match ev {
            SyncEvent::MonitorEnter { obj } => {
                ("monitor-enter", Loc::Monitor(obj), AccessKind::ReadWrite)
            }
            SyncEvent::MonitorExit { obj } => {
                ("monitor-exit", Loc::Monitor(obj), AccessKind::Write)
            }
            SyncEvent::WaitBefore { obj } => {
                ("wait-release", Loc::Monitor(obj), AccessKind::Write)
            }
            SyncEvent::WaitAfter { obj, .. } => {
                ("wait-reacquire", Loc::Monitor(obj), AccessKind::ReadWrite)
            }
            SyncEvent::Notify { obj, .. } => {
                ("notify", Loc::Monitor(obj), AccessKind::ReadWrite)
            }
            SyncEvent::Spawn { child } => {
                ("spawn", Loc::ThreadLife(child), AccessKind::Write)
            }
            SyncEvent::ThreadStart { .. } => {
                ("thread-start", Loc::ThreadLife(tid), AccessKind::Read)
            }
            SyncEvent::Join { child, .. } => {
                ("join", Loc::ThreadLife(child), AccessKind::Read)
            }
            SyncEvent::ThreadEnd => ("thread-end", Loc::ThreadLife(tid), AccessKind::Write),
        };
        self.observe(tid, ctr, loc, kind, instr, RingWhat::Sync { name });
    }

    fn on_nondet(&self, _tid: Tid, _value: i64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dep(loc: u64, w: Option<AccessId>, r_tid: Tid, r_first: u64, r_last: u64) -> DepEdge {
        DepEdge {
            loc,
            w,
            r_tid,
            r_first,
            r_last,
        }
    }

    fn empty_recording() -> Recording {
        Recording {
            deps: Vec::new(),
            runs: Vec::new(),
            signals: Vec::new(),
            nondet: HashMap::new(),
            thread_extents: HashMap::new(),
            fault: None,
            args: Vec::new(),
            stats: Default::default(),
            provenance: None,
            stripe_hist: Vec::new(),
        }
    }

    fn program() -> Arc<Program> {
        Arc::new(lir::parse("global x; fn main() { x = 1; print(x); }").unwrap())
    }

    #[test]
    fn expected_writer_lookup_covers_deps_and_runs() {
        let t1 = Tid::ROOT;
        let t2 = Tid::ROOT.child(0);
        let mut rec = empty_recording();
        let loc = Loc::Global(lir::GlobalId(0)).key();
        rec.deps.push(dep(loc, Some(AccessId::new(t2, 7)), t1, 3, 5));
        rec.runs.push(RunRec {
            loc,
            tid: t1,
            w0: Some(AccessId::new(t2, 9)),
            first: 10,
            last: 20,
            write_ctrs: vec![12, 15],
        });
        let checker = DivergenceChecker::new(program(), &rec, 8, HaltFlag::new());
        // Dep range: every slot expects the external writer.
        assert_eq!(checker.expected(t1, 3, loc), Some(Some(AccessId::new(t2, 7))));
        assert_eq!(checker.expected(t1, 5, loc), Some(Some(AccessId::new(t2, 7))));
        // Outside any span: lenient.
        assert_eq!(checker.expected(t1, 6, loc), None);
        assert_eq!(checker.expected(t1, 2, loc), None);
        assert_eq!(checker.expected(t2, 3, loc), None);
        // Run interior: before own writes → w0, after → latest own write.
        assert_eq!(checker.expected(t1, 11, loc), Some(Some(AccessId::new(t2, 9))));
        assert_eq!(checker.expected(t1, 13, loc), Some(Some(AccessId::new(t1, 12))));
        assert_eq!(checker.expected(t1, 20, loc), Some(Some(AccessId::new(t1, 15))));
    }

    #[test]
    fn mismatch_produces_report_and_halts() {
        let t1 = Tid::ROOT;
        let t2 = Tid::ROOT.child(0);
        let mut rec = empty_recording();
        let loc = Loc::Global(lir::GlobalId(0));
        rec.deps
            .push(dep(loc.key(), Some(AccessId::new(t2, 2)), t1, 4, 4));
        let halt = HaltFlag::new();
        let checker = DivergenceChecker::new(program(), &rec, 8, halt.clone());
        let instr = lir::InstrId {
            func: lir::FuncId(0),
            block: lir::BlockId(0),
            idx: 0,
        };
        let mut op = || 0u64;
        // The promised writer never runs; t1 writes the location itself.
        checker.on_access(t1, 1, loc, AccessKind::Write, false, instr, &mut op);
        checker.on_access(t1, 4, loc, AccessKind::Read, false, instr, &mut op);
        assert!(halt.is_set());
        let report = checker.report().expect("divergence must be reported");
        assert_eq!(report.tid, t1);
        assert_eq!(report.ctr, 4);
        assert_eq!(report.variable, "global x");
        assert_eq!(report.expected, Some(AccessId::new(t2, 2)));
        assert_eq!(report.actual, Some(AccessId::new(t1, 1)));
        assert_eq!(report.recent.len(), 2);
        let stats = checker.stats();
        assert_eq!(stats.checked_reads, 1);
        assert_eq!(stats.mismatches, 1);
    }

    #[test]
    fn matching_replay_is_clean_and_uncovered_reads_are_lenient() {
        let t1 = Tid::ROOT;
        let t2 = Tid::ROOT.child(0);
        let mut rec = empty_recording();
        let loc = Loc::Global(lir::GlobalId(0));
        rec.deps
            .push(dep(loc.key(), Some(AccessId::new(t2, 1)), t1, 2, 3));
        let halt = HaltFlag::new();
        let checker = DivergenceChecker::new(program(), &rec, 8, halt.clone());
        let instr = lir::InstrId {
            func: lir::FuncId(0),
            block: lir::BlockId(0),
            idx: 0,
        };
        let mut op = || 0u64;
        checker.on_access(t2, 1, loc, AccessKind::Write, false, instr, &mut op);
        checker.on_access(t1, 2, loc, AccessKind::Read, false, instr, &mut op);
        checker.on_access(t1, 3, loc, AccessKind::Read, false, instr, &mut op);
        // An uncovered read (no span at slot 9): counted, not flagged.
        checker.on_access(t1, 9, loc, AccessKind::Read, false, instr, &mut op);
        assert!(!halt.is_set());
        assert!(checker.report().is_none());
        let stats = checker.stats();
        assert_eq!(stats.checked_reads, 2);
        assert_eq!(stats.uncovered_reads, 1);
        assert_eq!(stats.mismatches, 0);
    }
}
