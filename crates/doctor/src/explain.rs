//! "No schedule exists because…" — UNSAT-core explanations.
//!
//! Lemma 4.1 guarantees that the Equation-1 constraint system of any
//! *real* recording is satisfiable, so an unsatisfiable system is always
//! a diagnosis: the recording is corrupt, truncated, or belongs to a
//! different program version. [`explain_unsat`] delta-minimizes the
//! infeasible system to a 1-minimal core (via
//! `light_solver::minimize_unsat_core`), maps each surviving constraint
//! back to the source dependence that emitted it — location, variable
//! name, `.lir` lines of the accesses — and renders the contradiction as
//! a short causal story.

use light_core::{AccessId, ConstraintKind, ConstraintSystem, CoreConstraint, Recording};
use lir::{Instr, Program};

/// One constraint of the minimal core, resolved to source terms.
#[derive(Debug, Clone)]
pub struct ExplainedConstraint {
    /// Which rule of Equation 1 emitted the constraint.
    pub kind: ConstraintKind,
    /// Hard constraints hold unconditionally; soft ones are one branch of
    /// a disjunction (write-write disjointness).
    pub hard: bool,
    /// The orderings the constraint imposes (`a` before `b`). A soft
    /// constraint lists every branch of its disjunction.
    pub orders: Vec<(AccessId, AccessId)>,
    /// The source variable behind the location, when the constraint is
    /// location-specific (`global total`, `field head`, ...).
    pub variable: Option<String>,
    /// 1-based `.lir` source lines of the static accesses to that
    /// variable (sorted, deduplicated).
    pub lines: Vec<u32>,
}

impl ExplainedConstraint {
    /// A one-line rendering.
    pub fn render(&self) -> String {
        let orders: Vec<String> = self
            .orders
            .iter()
            .map(|(a, b)| format!("{a} < {b}"))
            .collect();
        let mut out = format!(
            "[{}] {}: {}",
            if self.hard { "hard" } else { "soft" },
            self.kind.describe(),
            orders.join(" or "),
        );
        if let Some(v) = &self.variable {
            out.push_str(&format!(" — on {v}"));
            if !self.lines.is_empty() {
                let lines: Vec<String> = self.lines.iter().map(|l| l.to_string()).collect();
                out.push_str(&format!(" (lines {})", lines.join(", ")));
            }
        }
        out
    }
}

/// The minimal explanation of an infeasible constraint system.
#[derive(Debug, Clone)]
pub struct UnsatExplanation {
    /// The 1-minimal core: removing any single constraint makes the rest
    /// satisfiable.
    pub core: Vec<ExplainedConstraint>,
    /// Constraints in the full system, for scale.
    pub total_constraints: usize,
}

impl UnsatExplanation {
    /// The full human-readable story.
    pub fn render(&self) -> String {
        let mut out = format!(
            "no schedule exists: {} of {} constraints are mutually contradictory\n",
            self.core.len(),
            self.total_constraints,
        );
        for c in &self.core {
            out.push_str("  - ");
            out.push_str(&c.render());
            out.push('\n');
        }
        out.push_str(
            "a real Light recording always admits a schedule (Lemma 4.1), so the\n\
             recording is corrupt, truncated, or from a different program version.\n",
        );
        out
    }
}

impl std::fmt::Display for UnsatExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Decodes a dynamic location key (see `Loc::key` in `light-runtime`:
/// low 3 bits tag the variant, the rest is the id) to a source variable.
fn variable_of(program: &Program, key: u64) -> String {
    let id = key >> 3;
    match key & 7 {
        0 => match program.globals.get(id as usize) {
            Some(name) => format!("global {name}"),
            None => format!("global #{id}"),
        },
        1 => {
            let field = (id & 0xFF_FFFF) as usize;
            match program.field_names.get(field) {
                Some(name) => format!("field {name} (object #{})", id >> 24),
                None => format!("field #{field}"),
            }
        }
        2 => format!("array element [{}] (object #{})", id & 0xFF_FFFF, id >> 24),
        3 => format!("map contents (object #{id})"),
        4 => format!("monitor (object #{id})"),
        5 => format!("thread #{id} lifecycle"),
        _ => format!("location {key:#x}"),
    }
}

/// Collects the `.lir` lines of every static access to the variable
/// behind `key` (globals and fields only — dynamic locations like array
/// elements cannot be mapped back without the heap).
fn access_lines(program: &Program, key: u64) -> Vec<u32> {
    let id = (key >> 3) as u32;
    let field = id & 0xFF_FFFF;
    let mut lines = Vec::new();
    for func in &program.funcs {
        for block in &func.blocks {
            for (i, instr) in block.instrs.iter().enumerate() {
                let hit = match (key & 7, instr) {
                    (0, Instr::GetGlobal { global, .. }) | (0, Instr::SetGlobal { global, .. }) => {
                        global.0 == id
                    }
                    (1, Instr::GetField { field: f, .. }) | (1, Instr::SetField { field: f, .. }) => {
                        f.0 == field
                    }
                    _ => false,
                };
                if hit {
                    if let Some(&line) = block.lines.get(i) {
                        lines.push(line);
                    }
                }
            }
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

fn explain_constraint(program: &Program, c: &CoreConstraint) -> ExplainedConstraint {
    let (variable, lines) = match c.origin.loc {
        Some(key) => (
            Some(variable_of(program, key)),
            access_lines(program, key),
        ),
        None => (None, Vec::new()),
    };
    ExplainedConstraint {
        kind: c.origin.kind,
        hard: c.hard,
        orders: c.orders.clone(),
        variable,
        lines,
    }
}

/// Explains why `recording` admits no replay schedule. Returns `None`
/// when the system is satisfiable (or unsat could not be proven within
/// `budget` solver steps per probe).
pub fn explain_unsat(
    program: &Program,
    recording: &Recording,
    budget: u64,
) -> Option<UnsatExplanation> {
    let system = ConstraintSystem::build(recording);
    let total_constraints = system.num_constraints();
    let core = system.unsat_core(budget)?;
    Some(UnsatExplanation {
        core: core
            .iter()
            .map(|c| explain_constraint(program, c))
            .collect(),
        total_constraints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_core::DepEdge;
    use light_runtime::Tid;
    use std::collections::HashMap;

    /// A corrupt recording: two dependences on `total` whose write/read
    /// orderings form a cycle between the two threads.
    fn cyclic_recording(loc: u64) -> Recording {
        let t1 = Tid::ROOT;
        let t2 = Tid::ROOT.child(0);
        Recording {
            deps: vec![
                DepEdge {
                    loc,
                    w: Some(AccessId::new(t1, 2)),
                    r_tid: t2,
                    r_first: 1,
                    r_last: 1,
                },
                DepEdge {
                    loc,
                    w: Some(AccessId::new(t2, 2)),
                    r_tid: t1,
                    r_first: 1,
                    r_last: 1,
                },
            ],
            runs: Vec::new(),
            signals: Vec::new(),
            nondet: HashMap::new(),
            thread_extents: HashMap::new(),
            fault: None,
            args: Vec::new(),
            stats: Default::default(),
            provenance: None,
            stripe_hist: Vec::new(),
        }
    }

    #[test]
    fn cyclic_recording_is_explained_with_variable_and_lines() {
        let program = lir::parse(
            "global total;
             fn main() {
                 total = 1;
                 print(total);
             }",
        )
        .unwrap();
        // Global #0 → location key 0 (tag 0).
        let explanation =
            explain_unsat(&program, &cyclic_recording(0), 100_000).expect("system must be unsat");
        assert!(!explanation.core.is_empty());
        let flow: Vec<_> = explanation
            .core
            .iter()
            .filter(|c| c.kind == ConstraintKind::FlowDep)
            .collect();
        assert_eq!(flow.len(), 2, "both cyclic dependences must survive");
        for c in &flow {
            assert_eq!(c.variable.as_deref(), Some("global total"));
            assert!(
                !c.lines.is_empty(),
                "accesses to `total` must map to .lir lines"
            );
        }
        let text = explanation.render();
        assert!(text.contains("no schedule exists"));
        assert!(text.contains("global total"));
        assert!(text.contains("Lemma 4.1"));
    }

    #[test]
    fn satisfiable_recording_has_no_explanation() {
        let program = lir::parse("global g; fn main() { g = 1; }").unwrap();
        let t1 = Tid::ROOT;
        let rec = Recording {
            deps: vec![DepEdge {
                loc: 0,
                w: Some(AccessId::new(t1, 1)),
                r_tid: t1,
                r_first: 2,
                r_last: 2,
            }],
            ..cyclic_recording(0)
        };
        assert!(explain_unsat(&program, &rec, 100_000).is_none());
    }
}
