//! # light-doctor — diagnostics for the Light replay pipeline
//!
//! Three diagnostic capabilities on top of `light-core`:
//!
//! 1. **Replay divergence detection** ([`DivergenceChecker`],
//!    [`doctor_replay`]): every enforced read is cross-checked against
//!    the flow dependence the recording promised for that slot. The
//!    first mismatch produces a [`DivergenceReport`] naming the exact
//!    thread, slot, and source variable, together with the last N
//!    scheduler decisions, and halts the broken replay.
//!
//! 2. **UNSAT-core explanations** ([`explain_unsat`]): when a recording
//!    admits no schedule — impossible for a real recording by Lemma 4.1,
//!    so always a corruption diagnosis — the contradictory constraint
//!    set is delta-minimized to a 1-minimal core and mapped back to
//!    source dependences and `.lir` lines.
//!
//! 3. **Fault injection** ([`inject_divergence`]): deterministically
//!    perturbs a reference recording so a correct replay *must* trip the
//!    checker — the self-test proving the detector is alive.
//!
//! The `light-doctor` binary packages all three.
//!
//! ```
//! use std::sync::Arc;
//! use light_core::Light;
//! use light_doctor::{doctor_replay, DoctorOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(lir::parse(
//!     "global x;
//!      fn t() { x = 2; }
//!      fn main() { let h = spawn t(); join h; print(x); }",
//! )?);
//! let light = Light::new(program);
//! let (recording, _) = light.record(&[], 7)?;
//! // A healthy replay: checked against itself, no divergence.
//! let report = doctor_replay(&light, &recording, &recording, &DoctorOptions::default())?;
//! assert!(report.divergence.is_none());
//! assert!(report.stats.checked_reads > 0);
//! # Ok(())
//! # }
//! ```

mod divergence;
mod explain;

pub use divergence::{CheckStats, DivergenceChecker, DivergenceReport, ObservedEvent};
pub use explain::{explain_unsat, ExplainedConstraint, UnsatExplanation};

use light_core::{replay_observed, Light, Recording, ReplayError, ReplayOptions, ReplayReport};
use light_obs::FlightEvent;
use light_profile::FlightRecorder;
use light_runtime::HaltFlag;
use std::sync::Arc;

/// Knobs for [`doctor_replay`].
#[derive(Debug, Clone)]
pub struct DoctorOptions {
    /// Size of the recent-event ring buffer in divergence reports.
    pub recent: usize,
    /// Per-thread flight-recorder ring capacity for the checked replay.
    /// When the run diverges, the flight tail is dumped post-mortem into
    /// [`DoctorReport::flight_tail`]. `0` disables the flight recorder.
    pub flight_ring: usize,
    /// Replay timeouts and stall limits.
    pub replay: ReplayOptions,
}

impl Default for DoctorOptions {
    fn default() -> Self {
        Self {
            recent: 16,
            flight_ring: 4096,
            replay: ReplayOptions::default(),
        }
    }
}

impl DoctorOptions {
    /// Attaches a shared solver component cache to the checked replay,
    /// so embedding drivers (e.g. a `light-serve` job pool) reuse solved
    /// components across many doctor passes. A no-op when turbo solving
    /// is disabled in the replay options.
    #[must_use]
    pub fn with_solver_cache(mut self, cache: light_core::ComponentCache) -> Self {
        if let Some(turbo) = &mut self.replay.turbo {
            turbo.cache = Some(cache);
        }
        self
    }

    /// Sets the turbo component-pool worker count for the checked
    /// replay (`0` = one per core).
    #[must_use]
    pub fn with_solver_workers(mut self, workers: usize) -> Self {
        if let Some(turbo) = &mut self.replay.turbo {
            turbo.workers = workers;
        }
        self
    }
}

/// The outcome of a checked replay.
#[derive(Debug)]
pub struct DoctorReport {
    /// The replay report, when the run finished. A diverged replay is
    /// halted mid-run and may not produce one.
    pub replay: Option<ReplayReport>,
    /// The first divergence, if any.
    pub divergence: Option<DivergenceReport>,
    /// Cross-check counters.
    pub stats: CheckStats,
    /// The flight-recorder tail drained after the halt, oldest first —
    /// the pipeline's last scheduler/recording micro-events leading up to
    /// the divergence. Empty for healthy runs or when
    /// [`DoctorOptions::flight_ring`] is `0`.
    pub flight_tail: Vec<FlightEvent>,
}

impl DoctorReport {
    /// Whether the replay finished with every covered read observing its
    /// recorded writer.
    pub fn healthy(&self) -> bool {
        self.divergence.is_none() && self.replay.is_some()
    }
}

/// Replays `recording` while cross-checking every enforced read against
/// `reference` (normally the same recording; pass an
/// [`inject_divergence`]-perturbed copy for a detector self-test).
///
/// # Errors
///
/// [`ReplayError`] when the schedule cannot be computed or the run cannot
/// be set up. A run halted *by the checker* is not an error: the
/// divergence report is returned instead.
pub fn doctor_replay(
    light: &Light,
    recording: &Recording,
    reference: &Recording,
    options: &DoctorOptions,
) -> Result<DoctorReport, ReplayError> {
    let halt = HaltFlag::new();
    let checker = Arc::new(DivergenceChecker::new(
        light.program().clone(),
        reference,
        options.recent,
        halt.clone(),
    ));
    // Attach a flight recorder so a diverged run leaves a micro-event
    // trail. The ring writes are wait-free, so leaving this on does not
    // perturb the replay being diagnosed.
    let recorder = (options.flight_ring > 0).then(|| FlightRecorder::new(options.flight_ring));
    let mut replay_options = options.replay.clone();
    if let Some(rec) = &recorder {
        replay_options.flight = rec.flight();
    }
    let result = replay_observed(
        light.program(),
        recording,
        light.analysis(),
        light.config().o2,
        &replay_options,
        light.observability(),
        checker.clone(),
        Some(halt),
    );
    let divergence = checker.report();
    let stats = checker.stats();
    // Post-mortem only: the tail is the flight recorder's whole point on
    // a diverged run, and dead weight on a healthy one.
    let flight_tail = match (&divergence, recorder) {
        (Some(_), Some(rec)) => rec.dump(),
        _ => Vec::new(),
    };
    match result {
        Ok(replay) => Ok(DoctorReport {
            replay: Some(replay),
            divergence,
            stats,
            flight_tail,
        }),
        // The checker halting the run can surface as a replay failure;
        // the divergence is the diagnosis, not the error.
        Err(_) if divergence.is_some() => Ok(DoctorReport {
            replay: None,
            divergence,
            stats,
            flight_tail,
        }),
        Err(e) => Err(e),
    }
}

/// What [`inject_divergence`] changed.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// Location key of the perturbed dependence.
    pub loc: u64,
    /// Human-readable description of the perturbation.
    pub detail: String,
}

/// Deterministically corrupts one flow dependence of `reference` so that
/// replaying the *original* recording against it must report a
/// divergence: the first external-writer dependence is retargeted to a
/// writer slot that can never execute. Returns `None` when the recording
/// has no external-writer dependence to perturb.
pub fn inject_divergence(reference: &mut Recording) -> Option<InjectedFault> {
    const SKEW: u64 = 1 << 40; // far past any real thread counter
    if let Some(dep) = reference.deps.iter_mut().find(|d| d.w.is_some()) {
        let w = dep.w.as_mut().unwrap();
        let detail = format!(
            "dependence on loc {:#x}: expected writer ({}, {}) retargeted to slot {}",
            dep.loc,
            w.tid,
            w.ctr,
            w.ctr + SKEW,
        );
        let loc = dep.loc;
        w.ctr += SKEW;
        return Some(InjectedFault { loc, detail });
    }
    if let Some(run) = reference.runs.iter_mut().find(|r| r.w0.is_some()) {
        let w = run.w0.as_mut().unwrap();
        let detail = format!(
            "run on loc {:#x}: starting writer ({}, {}) retargeted to slot {}",
            run.loc,
            w.tid,
            w.ctr,
            w.ctr + SKEW,
        );
        let loc = run.loc;
        w.ctr += SKEW;
        return Some(InjectedFault { loc, detail });
    }
    None
}
