//! `light-doctor` — diagnose Light recordings and replays.
//!
//! ```text
//! light-doctor --file prog.lir --rec run.lrec      # check a saved recording
//! light-doctor --file prog.lir --args 3 --seed 7   # record fresh, then self-check
//! light-doctor --corpus cache4j                    # find a bug, then self-check
//! light-doctor --corpus cache4j --inject           # prove the detector works
//! ```
//!
//! Exit codes: `0` healthy (or, with `--inject`, divergence detected as
//! expected), `2` the recording admits no schedule (explanation printed
//! with `--explain`), `3` divergence detected (or, with `--inject`, the
//! injected fault was missed), `1` usage or I/O errors.

use light_core::{load_recording, write_recording, Light, Recording, ReplayError};
use light_doctor::{doctor_replay, explain_unsat, inject_divergence, DoctorOptions};
use light_obs::json::Value;
use light_obs::RunId;
use light_telemetry::{auto_ingest, RunKind, RunRecord, RunStatus};
use light_workloads::bugs;
use lir::Program;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
usage: light-doctor [options]

targets (one of):
  --file <prog.lir>    the program under test
  --corpus <name>      a light-workloads corpus bug

options:
  --rec <file.lrec>    recording to check (with --file; default: record fresh)
  --args <a,b,..>      entry arguments for fresh recordings
  --seed <n>           chaos seed for fresh recordings      (default 1)
  --free               record fresh under free scheduling instead of chaos
  --inject             corrupt the reference dependence set first; exit 0
                       iff the injected divergence is detected
  --explain            explain unsatisfiable schedules via a minimal core
  --explain-budget <n> solver steps per minimization probe  (default 2000000)
  --recent <n>         recent-event ring size in reports    (default 16)
  --flight <n>         flight-recorder ring capacity per thread; the event
                       tail is dumped on divergence         (default 4096,
                       0 disables)
  --flight-tail <n>    flight events shown from the tail    (default 12)
  --solver-workers <n> turbo solver component workers for the replay
                       (0 = one per core, default)
  --json               machine-readable report on stdout";

struct Cli {
    file: Option<String>,
    corpus: Option<String>,
    rec: Option<String>,
    args: Vec<i64>,
    seed: u64,
    free: bool,
    inject: bool,
    explain: bool,
    explain_budget: u64,
    recent: usize,
    flight: usize,
    flight_tail: usize,
    solver_workers: Option<usize>,
    json: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        file: None,
        corpus: None,
        rec: None,
        args: Vec::new(),
        seed: 1,
        free: false,
        inject: false,
        explain: false,
        explain_budget: 2_000_000,
        recent: 16,
        flight: 4096,
        flight_tail: 12,
        solver_workers: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--file" => cli.file = Some(next_val(&mut it, "--file")?),
            "--corpus" => cli.corpus = Some(next_val(&mut it, "--corpus")?),
            "--rec" => cli.rec = Some(next_val(&mut it, "--rec")?),
            "--args" => {
                let raw = next_val(&mut it, "--args")?;
                cli.args = raw
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.trim().parse().map_err(|e| format!("--args: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                cli.seed = next_val(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--free" => cli.free = true,
            "--inject" => cli.inject = true,
            "--explain" => cli.explain = true,
            "--explain-budget" => {
                cli.explain_budget = next_val(&mut it, "--explain-budget")?
                    .parse()
                    .map_err(|e| format!("--explain-budget: {e}"))?;
            }
            "--recent" => {
                cli.recent = next_val(&mut it, "--recent")?
                    .parse()
                    .map_err(|e| format!("--recent: {e}"))?;
            }
            "--flight" => {
                cli.flight = next_val(&mut it, "--flight")?
                    .parse()
                    .map_err(|e| format!("--flight: {e}"))?;
            }
            "--flight-tail" => {
                cli.flight_tail = next_val(&mut it, "--flight-tail")?
                    .parse()
                    .map_err(|e| format!("--flight-tail: {e}"))?;
            }
            "--solver-workers" => {
                cli.solver_workers = Some(
                    next_val(&mut it, "--solver-workers")?
                        .parse()
                        .map_err(|e| format!("--solver-workers: {e}"))?,
                );
            }
            "--json" => cli.json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if cli.file.is_none() == cli.corpus.is_none() {
        return Err("give exactly one of --file or --corpus".into());
    }
    if cli.rec.is_some() && cli.corpus.is_some() {
        return Err("--rec only makes sense with --file".into());
    }
    Ok(cli)
}

/// Resolves the program, its entry arguments, and the recording to check.
fn target(cli: &Cli) -> Result<(String, Arc<Program>, Vec<i64>, Recording), String> {
    if let Some(path) = &cli.file {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program = Arc::new(lir::parse(&src).map_err(|e| format!("cannot parse {path}: {e}"))?);
        let recording = match &cli.rec {
            Some(rec) => {
                load_recording(rec).map_err(|e| format!("cannot load {rec}: {e}"))?
            }
            None => {
                let light = Light::new(program.clone());
                let result = if cli.free {
                    light.record(&cli.args, cli.seed)
                } else {
                    light.record_chaos(&cli.args, cli.seed)
                };
                result.map_err(|e| format!("cannot record {path}: {e}"))?.0
            }
        };
        return Ok((path.clone(), program, cli.args.clone(), recording));
    }
    let name = cli.corpus.as_deref().unwrap();
    let corpus = bugs();
    let case = corpus
        .iter()
        .find(|b| b.name == name)
        .ok_or_else(|| format!("unknown corpus bug {name:?}"))?;
    let program = case.program();
    let light = Light::new(program.clone());
    // Prefer a faulting recording (the interesting replay); fall back to
    // whatever the base seed produces.
    let recording = match light.find_bug(&case.args, cli.seed..cli.seed + 50) {
        Some((rec, _)) => rec,
        None => light
            .record_chaos(&case.args, cli.seed)
            .map_err(|e| format!("cannot record {name}: {e}"))?
            .0,
    };
    Ok((name.to_string(), program, case.args.clone(), recording))
}

fn json_report(
    label: &str,
    report: &light_doctor::DoctorReport,
    injected: Option<&str>,
    run: RunId,
) -> Value {
    let mut obj = vec![
        ("target".to_string(), Value::Str(label.to_string())),
        // Additive key: joins this report to the trace stream and the
        // registry entry for the same invocation.
        ("run_id".to_string(), Value::Str(run.to_string())),
        ("healthy".to_string(), Value::Bool(report.healthy())),
        (
            "checked_reads".to_string(),
            Value::U64(report.stats.checked_reads),
        ),
        (
            "uncovered_reads".to_string(),
            Value::U64(report.stats.uncovered_reads),
        ),
        ("mismatches".to_string(), Value::U64(report.stats.mismatches)),
        (
            "injected".to_string(),
            match injected {
                Some(d) => Value::Str(d.to_string()),
                None => Value::Null,
            },
        ),
    ];
    let divergence = match &report.divergence {
        None => Value::Null,
        Some(d) => Value::Obj(vec![
            ("tid".to_string(), Value::Str(d.tid.to_string())),
            ("ctr".to_string(), Value::U64(d.ctr)),
            ("loc".to_string(), Value::Str(d.loc.clone())),
            ("variable".to_string(), Value::Str(d.variable.clone())),
            ("line".to_string(), Value::U64(u64::from(d.line))),
            (
                "expected".to_string(),
                match &d.expected {
                    Some(w) => Value::Str(w.to_string()),
                    None => Value::Null,
                },
            ),
            (
                "actual".to_string(),
                match &d.actual {
                    Some(w) => Value::Str(w.to_string()),
                    None => Value::Null,
                },
            ),
            (
                "recent".to_string(),
                Value::Arr(
                    d.recent
                        .iter()
                        .map(|e| Value::Str(e.to_string()))
                        .collect(),
                ),
            ),
        ]),
    };
    obj.push(("divergence".to_string(), divergence));
    obj.push((
        "flight_tail".to_string(),
        Value::Arr(
            report
                .flight_tail
                .iter()
                .map(|ev| Value::Str(flight_line(ev)))
                .collect(),
        ),
    ));
    if let Some(replay) = &report.replay {
        obj.push((
            "correlated".to_string(),
            Value::Bool(replay.correlated),
        ));
    }
    Value::Obj(obj)
}

/// Best-effort registry ingest: a no-op unless `LIGHT_REGISTRY` is set.
/// The checked recording rides along as the content-addressed blob so
/// diverged runs can be re-examined later straight from the registry.
fn ingest_run(
    label: &str,
    run: RunId,
    status: RunStatus,
    started: std::time::Instant,
    recording: &Recording,
    report: Option<&light_doctor::DoctorReport>,
) {
    let mut rec = RunRecord::new(label, RunKind::Doctor, status);
    rec.run_id = Some(run.to_string());
    rec.wall_ms = Some(started.elapsed().as_millis() as u64);
    if let Some(report) = report {
        rec.bug_signature = report
            .divergence
            .as_ref()
            .map(|d| format!("{}@{}", d.variable, d.loc));
        rec.metrics = report.replay.as_ref().map(|r| r.metrics.clone());
        rec.headline
            .insert("checked_reads".into(), report.stats.checked_reads as f64);
        rec.headline
            .insert("uncovered_reads".into(), report.stats.uncovered_reads as f64);
        rec.headline
            .insert("mismatches".into(), report.stats.mismatches as f64);
    }
    auto_ingest(rec, Some(write_recording(recording).as_ref()));
}

/// One human-readable line per flight event for divergence tails.
fn flight_line(ev: &light_obs::FlightEvent) -> String {
    let site = if ev.site == light_obs::NO_SITE {
        "-".to_string()
    } else {
        format!("{:#x}", ev.site)
    };
    format!(
        "{}us t{} {} site={} loc={:#x} aux={}",
        ev.ts_us,
        ev.tid,
        ev.kind.name(),
        site,
        ev.loc,
        ev.aux,
    )
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("light-doctor: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let (label, program, _args, recording) = match target(&cli) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("light-doctor: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run = RunId::fresh();
    let mut light = Light::new(program.clone());
    light.set_run_id(run);

    let mut reference = recording.clone();
    let injected = if cli.inject {
        match inject_divergence(&mut reference) {
            Some(fault) => {
                if !cli.json {
                    println!("[{label}] injected: {}", fault.detail);
                }
                Some(fault.detail)
            }
            None => {
                eprintln!("light-doctor: recording has no dependence to corrupt");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let mut options = DoctorOptions {
        recent: cli.recent,
        flight_ring: cli.flight,
        ..DoctorOptions::default()
    };
    if let Some(n) = cli.solver_workers {
        options = options.with_solver_workers(n);
    }
    let started = std::time::Instant::now();
    let report = match doctor_replay(&light, &recording, &reference, &options) {
        Ok(report) => report,
        Err(ReplayError::Schedule(e)) => {
            ingest_run(&label, run, RunStatus::Failed, started, &recording, None);
            eprintln!("[{label}] {e}");
            if cli.explain {
                match explain_unsat(&program, &recording, cli.explain_budget) {
                    Some(explanation) => print!("{explanation}"),
                    None => eprintln!(
                        "[{label}] minimization budget exhausted before a core was found"
                    ),
                }
            } else {
                eprintln!("[{label}] rerun with --explain for a minimal-core diagnosis");
            }
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("light-doctor: {e}");
            return ExitCode::FAILURE;
        }
    };

    let status = if report.divergence.is_some() {
        RunStatus::Diverged
    } else {
        RunStatus::Ok
    };
    ingest_run(&label, run, status, started, &recording, Some(&report));

    if cli.json {
        println!(
            "{}",
            json_report(&label, &report, injected.as_deref(), run).to_json()
        );
    } else {
        match &report.divergence {
            Some(d) => {
                print!("[{label}] {}", d.render());
                if !report.flight_tail.is_empty() && cli.flight_tail > 0 {
                    let tail = &report.flight_tail
                        [report.flight_tail.len().saturating_sub(cli.flight_tail)..];
                    println!(
                        "[{label}] flight tail (last {} of {} events):",
                        tail.len(),
                        report.flight_tail.len(),
                    );
                    for ev in tail {
                        println!("  {}", flight_line(ev));
                    }
                }
            }
            None => println!(
                "[{label}] replay healthy: {} reads cross-checked, {} uncovered, 0 divergences",
                report.stats.checked_reads, report.stats.uncovered_reads,
            ),
        }
    }
    match (cli.inject, report.divergence.is_some()) {
        // Healthy, or the injected fault was caught: success.
        (false, false) | (true, true) => ExitCode::SUCCESS,
        (true, false) => {
            eprintln!("[{label}] injected divergence was NOT detected");
            ExitCode::from(3)
        }
        (false, true) => ExitCode::from(3),
    }
}
