//! End-to-end diagnostics: healthy replays stay clean (including monitor
//! and wait/notify ghost traffic), injected reference corruption is
//! caught, and — the acceptance scenario — replaying a stale recording
//! against a mutated program names the exact thread, slot, and variable
//! that diverged.

use light_core::Light;
use light_doctor::{doctor_replay, inject_divergence, DoctorOptions};
use light_runtime::Tid;
use light_workloads::bugs;
use std::sync::Arc;

fn light_for(src: &str) -> Light {
    Light::new(Arc::new(lir::parse(src).expect("test program must parse")))
}

#[test]
fn healthy_replay_self_check_is_clean() {
    // Locks, wait/notify, and racy data traffic: every kind of ghost and
    // data dependence is exercised and must cross-check cleanly.
    let light = light_for(
        "global counter;
         global ready;
         global lock;
         class L { field pad; }
         fn worker(n) {
             let i = 0;
             while (i < n) {
                 sync (lock) { counter = counter + 1; }
                 i = i + 1;
             }
             ready = 1;
         }
         fn main() {
             lock = new L();
             let t1 = spawn worker(20);
             let t2 = spawn worker(20);
             join t1; join t2;
             print(counter);
             print(ready);
         }",
    );
    let (recording, _) = light.record_chaos(&[], 5).expect("record");
    let report = doctor_replay(&light, &recording, &recording, &DoctorOptions::default())
        .expect("replay");
    assert!(report.healthy(), "divergence: {:?}", report.divergence);
    assert!(report.stats.checked_reads > 0, "nothing was cross-checked");
    assert_eq!(report.stats.mismatches, 0);
    assert!(report.replay.expect("report").correlated);
}

#[test]
fn corpus_recordings_self_check_clean() {
    // Every corpus bug program, replayed against its own recording: the
    // checker must never flag a faithful replay (no false positives).
    for case in bugs() {
        let light = Light::new(case.program());
        let (recording, _) = light.record_chaos(&case.args, 3).expect(case.name);
        let report = doctor_replay(&light, &recording, &recording, &DoctorOptions::default())
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", case.name));
        assert!(
            report.healthy(),
            "{}: spurious divergence: {:?}",
            case.name,
            report.divergence
        );
        assert!(report.stats.checked_reads > 0, "{}: nothing checked", case.name);
    }
}

#[test]
fn injected_fault_is_detected() {
    let case = &bugs()[0];
    let light = Light::new(case.program());
    let (recording, _) = light.record_chaos(&case.args, 3).expect("record");
    let mut reference = recording.clone();
    let fault = inject_divergence(&mut reference).expect("recording must have a dependence");
    let report = doctor_replay(&light, &recording, &reference, &DoctorOptions::default())
        .expect("replay");
    let d = report
        .divergence
        .expect("injected corruption must be detected");
    assert_eq!(
        d.loc_key, fault.loc,
        "divergence must be on the corrupted location: {d:?} vs {fault:?}"
    );
    assert!(report.stats.mismatches >= 1);
}

#[test]
fn stale_recording_against_mutated_program_names_the_read() {
    // Record with version 1 of the program, where the worker writes `a`
    // then `b`...
    let v1 = light_for(
        "global a;
         global b;
         fn t() { a = 2; b = 2; }
         fn main() {
             a = 1;
             b = 1;
             let h = spawn t();
             join h;
             print(a);
             print(b);
         }",
    );
    let (recording, original) = v1.record(&[], 1).expect("record v1");
    assert_eq!(original.prints, vec!["2", "2"]);

    // ...then replay that stale recording against version 2, where the
    // worker's writes are swapped. Same threads, same event counts, but
    // the write of `a` now sits in a different slot.
    let v2 = light_for(
        "global a;
         global b;
         fn t() { b = 2; a = 2; }
         fn main() {
             a = 1;
             b = 1;
             let h = spawn t();
             join h;
             print(a);
             print(b);
         }",
    );
    let report = doctor_replay(&v2, &recording, &recording, &DoctorOptions::default())
        .expect("replay");
    let d = report.divergence.expect("stale recording must diverge");
    // The report names the exact thread, slot, and variable.
    let worker = Tid::ROOT.child(0);
    assert_eq!(d.tid, Tid::ROOT, "the diverging read is main's");
    assert_eq!(d.variable, "global a");
    assert!(d.ctr > 0, "slot must be a real counter");
    assert!(d.line > 0, "read must map to a source line");
    let expected = d.expected.expect("v1 promised a worker write");
    let actual = d.actual.expect("v2 produced a different writer");
    assert_eq!(expected.tid, worker);
    assert_ne!(expected, actual, "expected and actual writers must differ");
    assert!(!d.recent.is_empty(), "recent scheduler decisions included");
}
