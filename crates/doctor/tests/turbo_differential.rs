//! Differential testing of the turbo solving layer: for every corpus bug
//! program, the component-sharded parallel solver and the plain
//! sequential solver must agree on satisfiability, and the turbo-derived
//! schedule must replay through the divergence checker with zero
//! divergences.

use light_core::{compute_schedule_with, Light, TurboOptions};
use light_doctor::{doctor_replay, DoctorOptions};
use light_obs::{Flight, Obs};
use light_workloads::bugs;

#[test]
fn turbo_and_sequential_agree_on_every_corpus_recording() {
    let turbo = TurboOptions {
        workers: 4,
        ..TurboOptions::default()
    };
    for case in bugs() {
        let light = Light::new(case.program());
        let (recording, _) = light.record_chaos(&case.args, 3).expect(case.name);
        let sequential = compute_schedule_with(
            &recording,
            light.analysis(),
            light.config().o2,
            &Obs::disabled(),
            &Flight::disabled(),
            None,
        );
        let parallel = compute_schedule_with(
            &recording,
            light.analysis(),
            light.config().o2,
            &Obs::disabled(),
            &Flight::disabled(),
            Some(&turbo),
        );
        match (sequential, parallel) {
            (Ok((seq_schedule, _, seq_turbo, _)), Ok((par_schedule, _, par_turbo, _))) => {
                assert!(seq_turbo.is_none(), "{}: sequential path reported turbo stats", case.name);
                let stats = par_turbo.unwrap_or_else(|| {
                    panic!("{}: turbo path must report its breakdown", case.name)
                });
                assert!(stats.components >= 1, "{}: no components", case.name);
                assert_eq!(
                    seq_schedule.ordered_len(),
                    par_schedule.ordered_len(),
                    "{}: schedules order different event counts",
                    case.name
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string(), "{}: divergent errors", case.name);
            }
            (seq, par) => panic!(
                "{}: satisfiability disagreement: sequential {:?} vs turbo {:?}",
                case.name,
                seq.is_ok(),
                par.is_ok()
            ),
        }
    }
}

#[test]
fn turbo_schedules_replay_clean_through_the_divergence_checker() {
    // The acceptance check: a schedule produced by the parallel solver
    // drives a controlled replay whose every covered read observes its
    // recorded writer — zero divergences, full correlation.
    let mut options = DoctorOptions::default();
    options.replay.turbo = Some(TurboOptions {
        workers: 4,
        ..TurboOptions::default()
    });
    for case in bugs() {
        let light = Light::new(case.program());
        let (recording, _) = light.record_chaos(&case.args, 3).expect(case.name);
        let report = doctor_replay(&light, &recording, &recording, &options)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", case.name));
        assert!(
            report.healthy(),
            "{}: turbo schedule diverged: {:?}",
            case.name,
            report.divergence
        );
        assert_eq!(report.stats.mismatches, 0, "{}: mismatched reads", case.name);
        let replay = report.replay.expect("healthy run has a report");
        let turbo = replay
            .metrics
            .turbo
            .unwrap_or_else(|| panic!("{}: replay metrics must carry the turbo section", case.name));
        assert!(turbo.components >= 1, "{}: no components", case.name);
        assert!(turbo.workers >= 1, "{}: no workers recorded", case.name);
    }
}
