//! Property tests for [`MetricsSnapshot::aggregate`]: the registry's
//! trend views fold arbitrary numbers of snapshots in whatever order the
//! index returns them, so aggregation must be associative and
//! order-insensitive, with the empty snapshot as identity (modulo
//! phases, which aggregation deliberately drops). The JSON shape must
//! also survive a write/parse roundtrip for any snapshot, not just the
//! handwritten samples in the unit tests.

use light_obs::json::Value;
use light_obs::{
    ExploreMetrics, Histogram, MemMetrics, MemStat, MetricsSnapshot, PhaseRecord, RecorderMetrics,
    RunMetrics, ServeMetrics, SolverMetrics, TurboMetrics,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

prop_compose! {
    fn arb_recorder()(
        space_longs in 0u64..1 << 40,
        deps in 0u64..1 << 20,
        runs in 0u64..1 << 20,
        retries in 0u64..1 << 16,
        o2_skipped in 0u64..1 << 20,
        stripe_contention in 0u64..1 << 16,
    ) -> RecorderMetrics {
        RecorderMetrics {
            space_longs, deps, runs, retries, o2_skipped, stripe_contention,
        }
    }
}

prop_compose! {
    fn arb_solver()(
        vars in 0u64..1 << 24,
        hard_constraints in 0u64..1 << 24,
        clauses in 0u64..1 << 24,
        decisions in 0u64..1 << 24,
        backtracks in 0u64..1 << 20,
        solve_ns in 0u64..1 << 44,
    ) -> SolverMetrics {
        SolverMetrics {
            vars, hard_constraints, clauses, decisions, backtracks, solve_ns,
        }
    }
}

prop_compose! {
    fn arb_turbo()(
        components in 0u64..1 << 12,
        widest_component in 0u64..1 << 20,
        workers in 0u64..256,
        cache_hits in 0u64..1 << 20,
        cache_misses in 0u64..1 << 20,
        promoted_units in 0u64..1 << 20,
        dropped_clauses in 0u64..1 << 20,
    ) -> TurboMetrics {
        TurboMetrics {
            components, widest_component, workers,
            cache_hits, cache_misses, promoted_units, dropped_clauses,
        }
    }
}

prop_compose! {
    fn arb_serve()(
        submissions in 0u64..1 << 24,
        dedup_hits in 0u64..1 << 24,
        jobs_ok in 0u64..1 << 24,
        jobs_diverged in 0u64..1 << 16,
        jobs_failed in 0u64..1 << 16,
        ingest_failed in 0u64..1 << 16,
        queue_peak in 0u64..1 << 16,
        workers in 0u64..256,
    ) -> ServeMetrics {
        ServeMetrics {
            submissions, dedup_hits, jobs_ok, jobs_diverged,
            jobs_failed, ingest_failed, queue_peak, workers,
        }
    }
}

prop_compose! {
    fn arb_run()(
        duration_ns in 0u64..1 << 44,
        threads in 0u64..1 << 10,
        events in 0u64..1 << 30,
        objects in 0u64..1 << 20,
    ) -> RunMetrics {
        RunMetrics { duration_ns, threads, events, objects }
    }
}

prop_compose! {
    fn arb_explore()(
        schedules in 0u64..1 << 20,
        failures in 0u64..1 << 16,
        minimize_iterations in 0u64..1 << 16,
        trace_segments in 0u64..1 << 16,
        minimized_segments in 0u64..1 << 16,
        wall_ns in 0u64..1 << 44,
    ) -> ExploreMetrics {
        ExploreMetrics {
            schedules, failures, minimize_iterations,
            trace_segments, minimized_segments, wall_ns,
        }
    }
}

fn arb_mem() -> impl Strategy<Value = MemMetrics> {
    // peak is drawn independently and maxed with bytes so every generated
    // stat honours the peak >= bytes invariant the gauges guarantee.
    prop::collection::btree_map(
        "[a-z]{1,8}(-[a-z]{1,8})?",
        (0u64..1 << 40, 0u64..1 << 40),
        0..5,
    )
    .prop_map(|m| MemMetrics {
        subsystems: m
            .into_iter()
            .map(|(name, (bytes, peak))| {
                (
                    name,
                    MemStat {
                        bytes,
                        peak_bytes: peak.max(bytes),
                    },
                )
            })
            .collect(),
    })
}

fn arb_histogram() -> impl Strategy<Value = Histogram> {
    prop::collection::vec(0u64..1 << 34, 0..24).prop_map(|samples| {
        let mut h = Histogram::new();
        for s in samples {
            h.record(s);
        }
        h
    })
}

prop_compose! {
    fn arb_snapshot()(
        record in prop::option::of(arb_recorder()),
        record_run in prop::option::of(arb_run()),
        solver in prop::option::of(arb_solver()),
        turbo in prop::option::of(arb_turbo()),
        serve in prop::option::of(arb_serve()),
        replay_run in prop::option::of(arb_run()),
        explore in prop::option::of(arb_explore()),
        mem in prop::option::of(arb_mem()),
        counters in prop::collection::btree_map("[a-d]{1,3}", 0u64..1 << 40, 0..6),
        latencies in prop::collection::btree_map("[a-c]{1,2}", arb_histogram(), 0..4),
        stripe_hist in prop::collection::btree_map(0u32..512, 1u64..1 << 20, 0..12),
        phase_names in prop::collection::vec("[a-z]{1,6}", 0..3),
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            record,
            record_run,
            solver,
            turbo,
            serve,
            scheduler: None,
            replay_run,
            explore,
            mem,
            phases: phase_names
                .into_iter()
                .enumerate()
                .map(|(i, name)| PhaseRecord {
                    name,
                    start_us: i as u64 * 10,
                    dur_us: 5,
                })
                .collect(),
            counters,
            latencies,
            stripe_hist: stripe_hist.into_iter().collect(),
        }
    }
}

proptest! {
    #[test]
    fn aggregate_is_associative(
        a in arb_snapshot(), b in arb_snapshot(), c in arb_snapshot()
    ) {
        prop_assert_eq!(
            a.aggregate(&b).aggregate(&c),
            a.aggregate(&b.aggregate(&c)),
        );
    }

    #[test]
    fn aggregate_is_order_insensitive(
        a in arb_snapshot(), b in arb_snapshot()
    ) {
        prop_assert_eq!(a.aggregate(&b), b.aggregate(&a));
    }

    #[test]
    fn empty_snapshot_is_the_identity(a in arb_snapshot()) {
        // Aggregation drops per-run phase timelines (they do not compose
        // across runs), so identity holds on the phase-free projection.
        let mut expect = a.clone();
        expect.phases = Vec::new();
        prop_assert_eq!(a.aggregate(&MetricsSnapshot::default()), expect.clone());
        prop_assert_eq!(MetricsSnapshot::default().aggregate(&a), expect);
    }

    #[test]
    fn any_snapshot_round_trips_through_json(a in arb_snapshot()) {
        let json = a.to_json().to_json();
        let parsed = MetricsSnapshot::from_json(&Value::parse(&json).unwrap());
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn aggregated_snapshots_round_trip_through_json(
        a in arb_snapshot(), b in arb_snapshot()
    ) {
        let folded = a.aggregate(&b);
        let json = folded.to_json().to_json();
        let parsed = MetricsSnapshot::from_json(&Value::parse(&json).unwrap());
        prop_assert_eq!(parsed, folded);
    }

    #[test]
    fn mem_combine_is_keywise_and_preserves_peak_dominance(
        a in arb_mem(), b in arb_mem()
    ) {
        let folded = a.combine(&b);
        // Every key from either side survives, values sum keywise, and the
        // peak >= bytes invariant carries through the fold.
        for (name, stat) in &folded.subsystems {
            let x = a.subsystems.get(name).copied().unwrap_or_default();
            let y = b.subsystems.get(name).copied().unwrap_or_default();
            prop_assert_eq!(stat.bytes, x.bytes.saturating_add(y.bytes));
            prop_assert_eq!(stat.peak_bytes, x.peak_bytes.saturating_add(y.peak_bytes));
            prop_assert!(stat.peak_bytes >= stat.bytes);
        }
        prop_assert!(a.subsystems.keys().all(|k| folded.subsystems.contains_key(k)));
        prop_assert!(b.subsystems.keys().all(|k| folded.subsystems.contains_key(k)));
        // ... and combining is symmetric, like the snapshot-level law.
        prop_assert_eq!(folded, b.combine(&a));
    }

    #[test]
    fn percentile_is_monotone_bounded_and_bucket_sound(
        samples in prop::collection::vec(0u64..1 << 34, 0..64),
        p in 0.0f64..=1.0,
        q in 0.0f64..=1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo_p, hi_p) = (p.min(q), p.max(q));
        prop_assert!(h.percentile(lo_p) <= h.percentile(hi_p), "monotone in p");
        prop_assert!(h.percentile(hi_p) <= h.max(), "never exceeds a sample");
        if samples.is_empty() {
            prop_assert_eq!(h.percentile(p), 0);
        } else {
            prop_assert_eq!(h.percentile(1.0), h.max());
            // The estimate is never below the true percentile: the rank-th
            // smallest sample shares a bucket with (or precedes) it.
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            prop_assert!(h.percentile(p) >= sorted[rank - 1]);
        }
    }

    #[test]
    fn percentile_survives_merge_and_json(
        xs in prop::collection::vec(0u64..1 << 34, 0..32),
        ys in prop::collection::vec(0u64..1 << 34, 0..32),
        p in 0.0f64..=1.0,
    ) {
        let build = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        // Merging two histograms equals building one from all samples...
        let mut merged = build(&xs);
        merged.merge(&build(&ys));
        let all: Vec<u64> = xs.iter().chain(&ys).copied().collect();
        let direct = build(&all);
        prop_assert_eq!(&merged, &direct);
        prop_assert_eq!(merged.percentile(p), direct.percentile(p));
        // ... and the percentile is stable across a JSON roundtrip.
        let parsed = Histogram::from_json(&Value::parse(&merged.to_json().to_json()).unwrap());
        prop_assert_eq!(parsed.percentile(p), merged.percentile(p));
    }
}
