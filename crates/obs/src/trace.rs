//! Structured trace events and the Chrome trace-event exporter.
//!
//! Events carry microsecond timestamps relative to a process-wide epoch
//! (see [`crate::now_us`]). The collector sink ([`TraceSink`]) buffers
//! them and renders the Chrome `chrome://tracing` / Perfetto JSON array
//! format, so a full record → solve → replay run can be opened on a
//! timeline.

use crate::json::Value;
use crate::Sink;
use std::sync::Mutex;

/// One structured observability event.
///
/// `tid` is a logical lane, not an OS thread id: lane 0 is the pipeline
/// itself (record / constraint-build / solve / replay phases); program
/// threads use their Light thread ids offset by one so they never
/// collide with the pipeline lane.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A closed span: `ph: "X"` in Chrome trace terms.
    Complete {
        name: &'static str,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
    },
    /// An open span start (`ph: "B"`); paired with a later [`TraceEvent::End`].
    Begin {
        name: &'static str,
        tid: u64,
        ts_us: u64,
    },
    /// Closes the innermost open span on `tid` (`ph: "E"`).
    End { tid: u64, ts_us: u64 },
    /// A point-in-time marker (`ph: "i"`).
    Instant {
        name: &'static str,
        tid: u64,
        ts_us: u64,
    },
    /// A sampled counter value (`ph: "C"`).
    Counter {
        name: &'static str,
        tid: u64,
        ts_us: u64,
        value: u64,
    },
    /// Lane naming metadata (`ph: "M"`, `thread_name`).
    ThreadName { tid: u64, label: String },
}

impl TraceEvent {
    /// Renders this event as one Chrome trace-event JSON object.
    pub fn to_chrome(&self) -> Value {
        match *self {
            TraceEvent::Complete {
                name,
                tid,
                ts_us,
                dur_us,
            } => Value::obj([
                ("name", Value::from(name)),
                ("cat", Value::from("light")),
                ("ph", Value::from("X")),
                ("ts", Value::from(ts_us)),
                ("dur", Value::from(dur_us)),
                ("pid", Value::from(1u64)),
                ("tid", Value::from(tid)),
            ]),
            TraceEvent::Begin { name, tid, ts_us } => Value::obj([
                ("name", Value::from(name)),
                ("cat", Value::from("light")),
                ("ph", Value::from("B")),
                ("ts", Value::from(ts_us)),
                ("pid", Value::from(1u64)),
                ("tid", Value::from(tid)),
            ]),
            TraceEvent::End { tid, ts_us } => Value::obj([
                ("ph", Value::from("E")),
                ("ts", Value::from(ts_us)),
                ("pid", Value::from(1u64)),
                ("tid", Value::from(tid)),
            ]),
            TraceEvent::Instant { name, tid, ts_us } => Value::obj([
                ("name", Value::from(name)),
                ("cat", Value::from("light")),
                ("ph", Value::from("i")),
                ("s", Value::from("t")),
                ("ts", Value::from(ts_us)),
                ("pid", Value::from(1u64)),
                ("tid", Value::from(tid)),
            ]),
            TraceEvent::Counter {
                name,
                tid,
                ts_us,
                value,
            } => Value::obj([
                ("name", Value::from(name)),
                ("ph", Value::from("C")),
                ("ts", Value::from(ts_us)),
                ("pid", Value::from(1u64)),
                ("tid", Value::from(tid)),
                ("args", Value::obj([("value", Value::from(value))])),
            ]),
            TraceEvent::ThreadName { tid, ref label } => Value::obj([
                ("name", Value::from("thread_name")),
                ("ph", Value::from("M")),
                ("pid", Value::from(1u64)),
                ("tid", Value::from(tid)),
                ("args", Value::obj([("name", Value::from(label.as_str()))])),
            ]),
        }
    }
}

/// Renders a slice of events as a complete Chrome trace-event JSON
/// document (`{"traceEvents": [...]}`), loadable in `chrome://tracing`
/// or the Perfetto UI.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    Value::obj([
        (
            "traceEvents",
            Value::arr(events.iter().map(TraceEvent::to_chrome)),
        ),
        ("displayTimeUnit", Value::from("ms")),
    ])
    .to_json_pretty()
}

/// A [`Sink`] that buffers every event in memory for later export.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains nothing; returns a copy of everything seen so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Full Chrome trace-event JSON for everything seen so far.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.events.lock().unwrap())
    }
}

impl Sink for TraceSink {
    fn event(&self, ev: &TraceEvent) {
        self.events.lock().unwrap().push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_export_has_expected_fields() {
        let sink = TraceSink::new();
        sink.event(&TraceEvent::Complete {
            name: "solve",
            tid: 0,
            ts_us: 10,
            dur_us: 5,
        });
        sink.event(&TraceEvent::ThreadName {
            tid: 0,
            label: "pipeline".into(),
        });
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"solve\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn begin_end_pair_round_trips() {
        let b = TraceEvent::Begin {
            name: "thread",
            tid: 3,
            ts_us: 1,
        };
        let e = TraceEvent::End { tid: 3, ts_us: 9 };
        let doc = chrome_trace_json(&[b, e]);
        assert!(doc.contains("\"ph\": \"B\""));
        assert!(doc.contains("\"ph\": \"E\""));
    }
}
