//! Structured trace events and the Chrome trace-event exporter.
//!
//! Events carry microsecond timestamps relative to a process-wide epoch
//! (see [`crate::now_us`]). The collector sink ([`TraceSink`]) buffers
//! them and renders the Chrome `chrome://tracing` / Perfetto JSON array
//! format, so a full record → solve → replay run can be opened on a
//! timeline.

use crate::json::Value;
use crate::Sink;
use std::sync::Mutex;

/// One structured observability event.
///
/// `tid` is a logical lane, not an OS thread id: lane 0 is the pipeline
/// itself (record / constraint-build / solve / replay phases); program
/// threads use their Light thread ids offset by one so they never
/// collide with the pipeline lane.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A closed span: `ph: "X"` in Chrome trace terms.
    Complete {
        name: &'static str,
        tid: u64,
        ts_us: u64,
        dur_us: u64,
    },
    /// An open span start (`ph: "B"`); paired with a later [`TraceEvent::End`].
    Begin {
        name: &'static str,
        tid: u64,
        ts_us: u64,
    },
    /// Closes the innermost open span on `tid` (`ph: "E"`).
    End { tid: u64, ts_us: u64 },
    /// A point-in-time marker (`ph: "i"`).
    Instant {
        name: &'static str,
        tid: u64,
        ts_us: u64,
    },
    /// A sampled counter value (`ph: "C"`).
    Counter {
        name: &'static str,
        tid: u64,
        ts_us: u64,
        value: u64,
    },
    /// Lane naming metadata (`ph: "M"`, `thread_name`).
    ThreadName { tid: u64, label: String },
    /// Causal run-context metadata: every event that follows belongs to
    /// the pipeline invocation `run_id`. Exported as Chrome
    /// `process_name` metadata, and the run's `pid` groups the
    /// invocation's lanes into one process in the trace viewer, so
    /// multiple ingested runs stay distinguishable on one timeline.
    RunContext { run_id: String, pid: u64 },
}

impl TraceEvent {
    /// Renders this event as one Chrome trace-event JSON object, under
    /// the default process id (1).
    pub fn to_chrome(&self) -> Value {
        self.to_chrome_with_pid(1)
    }

    /// Renders this event under an explicit process id — the run-context
    /// grouping used by [`chrome_trace_json`].
    pub fn to_chrome_with_pid(&self, pid: u64) -> Value {
        match *self {
            TraceEvent::Complete {
                name,
                tid,
                ts_us,
                dur_us,
            } => Value::obj([
                ("name", Value::from(name)),
                ("cat", Value::from("light")),
                ("ph", Value::from("X")),
                ("ts", Value::from(ts_us)),
                ("dur", Value::from(dur_us)),
                ("pid", Value::from(pid)),
                ("tid", Value::from(tid)),
            ]),
            TraceEvent::Begin { name, tid, ts_us } => Value::obj([
                ("name", Value::from(name)),
                ("cat", Value::from("light")),
                ("ph", Value::from("B")),
                ("ts", Value::from(ts_us)),
                ("pid", Value::from(pid)),
                ("tid", Value::from(tid)),
            ]),
            TraceEvent::End { tid, ts_us } => Value::obj([
                ("ph", Value::from("E")),
                ("ts", Value::from(ts_us)),
                ("pid", Value::from(pid)),
                ("tid", Value::from(tid)),
            ]),
            TraceEvent::Instant { name, tid, ts_us } => Value::obj([
                ("name", Value::from(name)),
                ("cat", Value::from("light")),
                ("ph", Value::from("i")),
                ("s", Value::from("t")),
                ("ts", Value::from(ts_us)),
                ("pid", Value::from(pid)),
                ("tid", Value::from(tid)),
            ]),
            TraceEvent::Counter {
                name,
                tid,
                ts_us,
                value,
            } => Value::obj([
                ("name", Value::from(name)),
                ("ph", Value::from("C")),
                ("ts", Value::from(ts_us)),
                ("pid", Value::from(pid)),
                ("tid", Value::from(tid)),
                ("args", Value::obj([("value", Value::from(value))])),
            ]),
            TraceEvent::ThreadName { tid, ref label } => Value::obj([
                ("name", Value::from("thread_name")),
                ("ph", Value::from("M")),
                ("pid", Value::from(pid)),
                ("tid", Value::from(tid)),
                ("args", Value::obj([("name", Value::from(label.as_str()))])),
            ]),
            TraceEvent::RunContext {
                ref run_id,
                pid: run_pid,
            } => Value::obj([
                ("name", Value::from("process_name")),
                ("ph", Value::from("M")),
                ("pid", Value::from(run_pid)),
                ("tid", Value::from(0u64)),
                (
                    "args",
                    Value::obj([("name", Value::from(format!("run {run_id}")))]),
                ),
            ]),
        }
    }
}

/// Renders a slice of events as a complete Chrome trace-event JSON
/// document (`{"traceEvents": [...]}`), loadable in `chrome://tracing`
/// or the Perfetto UI.
///
/// [`TraceEvent::RunContext`] events partition the stream: every event
/// after one is rendered under that run's process id, so a document
/// holding several pipeline invocations shows each as its own process
/// named after its run id.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut pid = 1u64;
    let mut rendered = Vec::with_capacity(events.len());
    for ev in events {
        if let TraceEvent::RunContext { pid: run_pid, .. } = ev {
            pid = *run_pid;
        }
        rendered.push(ev.to_chrome_with_pid(pid));
    }
    Value::obj([
        ("traceEvents", Value::Arr(rendered)),
        ("displayTimeUnit", Value::from("ms")),
    ])
    .to_json_pretty()
}

/// A [`Sink`] that buffers every event in memory for later export.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl TraceSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains nothing; returns a copy of everything seen so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Full Chrome trace-event JSON for everything seen so far.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_json(&self.events.lock().unwrap())
    }
}

impl Sink for TraceSink {
    fn event(&self, ev: &TraceEvent) {
        self.events.lock().unwrap().push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_export_has_expected_fields() {
        let sink = TraceSink::new();
        sink.event(&TraceEvent::Complete {
            name: "solve",
            tid: 0,
            ts_us: 10,
            dur_us: 5,
        });
        sink.event(&TraceEvent::ThreadName {
            tid: 0,
            label: "pipeline".into(),
        });
        let json = sink.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"solve\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn run_context_groups_following_events_under_its_pid() {
        let events = [
            TraceEvent::Complete {
                name: "pre",
                tid: 0,
                ts_us: 0,
                dur_us: 1,
            },
            TraceEvent::RunContext {
                run_id: "deadbeef".into(),
                pid: 77,
            },
            TraceEvent::Complete {
                name: "solve",
                tid: 0,
                ts_us: 2,
                dur_us: 3,
            },
        ];
        let doc = chrome_trace_json(&events);
        // The run context renders as process_name metadata...
        assert!(doc.contains("\"process_name\""));
        assert!(doc.contains("\"run deadbeef\""));
        // ...events before it keep the default pid, events after adopt
        // the run's pid.
        let pre = doc.find("\"pre\"").unwrap();
        let solve = doc.find("\"solve\"").unwrap();
        assert!(doc[pre..solve].contains("\"pid\": 1"));
        assert!(doc[solve..].contains("\"pid\": 77"));
    }

    #[test]
    fn begin_end_pair_round_trips() {
        let b = TraceEvent::Begin {
            name: "thread",
            tid: 3,
            ts_us: 1,
        };
        let e = TraceEvent::End { tid: 3, ts_us: 9 };
        let doc = chrome_trace_json(&[b, e]);
        assert!(doc.contains("\"ph\": \"B\""));
        assert!(doc.contains("\"ph\": \"E\""));
    }
}
