//! # light-obs — unified tracing, metrics, and pipeline profiling
//!
//! The observability layer for the Light record/replay pipeline. It
//! provides three things:
//!
//! 1. **A zero-cost-when-disabled event/span API.** All instrumentation
//!    goes through an [`Obs`] handle, which is either disabled (holds no
//!    sink — every call is a branch on a `None` and returns immediately,
//!    without even reading the clock) or carries an `Arc<dyn Sink>`.
//!    The recorder's per-access fast path is *never* instrumented per
//!    event; only phase boundaries and end-of-run snapshots flow through
//!    the sink, so recording with a sink attached is byte-identical to
//!    recording without one.
//!
//! 2. **A unified metrics model.** [`RecorderMetrics`],
//!    [`SolverMetrics`], [`SchedulerMetrics`], and [`RunMetrics`]
//!    supersede the scattered per-crate stat structs; a
//!    [`MetricsSnapshot`] combines them with phase timings and is
//!    JSON-serializable via the built-in writer ([`json::Value`]) or,
//!    with the `serde` feature, via serde derives.
//!
//! 3. **Chrome trace export.** [`TraceSink`] buffers events and renders
//!    `chrome://tracing` / Perfetto trace-event JSON so a full
//!    record → constraint-build → solve → replay pass can be opened on a
//!    timeline ([`TraceSink::chrome_trace_json`]).
//!
//! ```
//! use light_obs::{Obs, TraceSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(TraceSink::new());
//! let obs = Obs::with_sink(sink.clone());
//! {
//!     let _span = light_obs::span!(obs, "solve");
//!     // ... work ...
//! }
//! light_obs::counter!(obs, "decisions", 42);
//! assert!(obs.enabled());
//! let json = sink.chrome_trace_json();
//! assert!(json.contains("\"solve\""));
//! ```

pub mod flight;
pub mod json;
mod metrics;
mod progress;
mod trace;

pub use flight::{Flight, FlightEvent, FlightKind, FlightSink, FLIGHT_KINDS, NO_SITE};
pub use metrics::{
    ExploreMetrics, Histogram, MetricsRegistry, MetricsSnapshot, PhaseRecord, RecorderMetrics,
    RunMetrics, SchedulerMetrics, SolverMetrics, TurboMetrics,
};
pub use progress::{CollectingProgress, JsonlProgress, Progress, ProgressRecord, ProgressSink};
pub use trace::{chrome_trace_json, TraceEvent, TraceSink};

use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The process-wide time origin for trace timestamps. First use pins it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide obs epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// The logical trace lane for pipeline phases (record, solve, ...).
/// Program threads are mapped to `tid.raw() + 1` so they never collide.
pub const PIPELINE_LANE: u64 = 0;

/// A consumer of structured observability events.
///
/// Implementations must be cheap and thread-safe: events arrive from
/// the pipeline thread and from program threads concurrently.
pub trait Sink: Send + Sync {
    /// Receives one event. Timestamps are µs since the obs epoch.
    fn event(&self, ev: &TraceEvent);

    /// Whether this sink wants events at all. [`Obs::with_sink`] drops
    /// sinks that report `false`, turning every instrumentation site
    /// into a no-op branch.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op sink: explicitly requests to receive nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn event(&self, _ev: &TraceEvent) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// A cheap, cloneable handle to an optional sink. The pipeline threads
/// this through `ExecConfig`, the recorder, and the replay driver.
///
/// When disabled (the default), every method returns after one branch —
/// no clock read, no allocation, no atomic.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn Sink>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// A handle with no sink; all instrumentation is skipped.
    pub fn disabled() -> Self {
        Obs { sink: None }
    }

    /// Wraps a sink. If the sink reports `enabled() == false` (e.g.
    /// [`NullSink`]), the handle is disabled outright so call sites pay
    /// nothing.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        if sink.enabled() {
            Obs { sink: Some(sink) }
        } else {
            Obs { sink: None }
        }
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    pub fn sink(&self) -> Option<&Arc<dyn Sink>> {
        self.sink.as_ref()
    }

    /// Opens a span on the pipeline lane; the span closes (emitting a
    /// `Complete` event) when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_on(name, PIPELINE_LANE)
    }

    /// Opens a span on an explicit lane.
    pub fn span_on(&self, name: &'static str, tid: u64) -> SpanGuard {
        SpanGuard {
            inner: self
                .sink
                .as_ref()
                .map(|s| (Arc::clone(s), name, tid, now_us())),
        }
    }

    /// Emits a named counter sample on the pipeline lane.
    pub fn counter(&self, name: &'static str, value: u64) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::Counter {
                name,
                tid: PIPELINE_LANE,
                ts_us: now_us(),
                value,
            });
        }
    }

    /// Emits a point-in-time marker.
    pub fn instant(&self, name: &'static str, tid: u64) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::Instant {
                name,
                tid,
                ts_us: now_us(),
            });
        }
    }

    /// Opens an explicit (non-guard) span — for spans whose begin and
    /// end happen on the same thread but not in one scope, like program
    /// thread lifetimes.
    pub fn begin(&self, name: &'static str, tid: u64) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::Begin {
                name,
                tid,
                ts_us: now_us(),
            });
        }
    }

    /// Closes the innermost explicit span on `tid`.
    pub fn end(&self, tid: u64) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::End {
                tid,
                ts_us: now_us(),
            });
        }
    }

    /// Names a trace lane (shows as the thread name in the Chrome UI).
    pub fn thread_name(&self, tid: u64, label: &str) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::ThreadName {
                tid,
                label: label.to_string(),
            });
        }
    }

    /// Forwards a raw event.
    pub fn emit(&self, ev: &TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.event(ev);
        }
    }
}

/// Closes its span on drop. Obtained from [`Obs::span`] / [`span!`].
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    inner: Option<(Arc<dyn Sink>, &'static str, u64, u64)>,
}

impl SpanGuard {
    /// Explicitly closes the span now (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((sink, name, tid, start)) = self.inner.take() {
            sink.event(&TraceEvent::Complete {
                name,
                tid,
                ts_us: start,
                dur_us: now_us().saturating_sub(start),
            });
        }
    }
}

/// Opens a scoped span: `span!(obs, "solve")` or `span!(obs, "thread", lane)`.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
    ($obs:expr, $name:expr, $tid:expr) => {
        $obs.span_on($name, $tid)
    };
}

/// Emits a named counter sample: `counter!(obs, "deps", n)`.
#[macro_export]
macro_rules! counter {
    ($obs:expr, $name:expr, $value:expr) => {
        $obs.counter($name, $value)
    };
}

/// Records a value into a [`Histogram`]: `histogram!(hist, v)`.
#[macro_export]
macro_rules! histogram {
    ($hist:expr, $value:expr) => {
        $hist.record($value)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_emits_nothing_and_allocates_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let guard = obs.span("x");
        assert!(guard.inner.is_none());
        drop(guard);
        obs.counter("c", 1);
        obs.begin("b", 2);
        obs.end(2);
    }

    #[test]
    fn null_sink_disables_the_handle() {
        let obs = Obs::with_sink(Arc::new(NullSink));
        assert!(!obs.enabled());
    }

    #[test]
    fn span_guard_emits_complete_on_drop() {
        let sink = Arc::new(TraceSink::new());
        let obs = Obs::with_sink(sink.clone());
        {
            let _span = span!(obs, "record");
        }
        counter!(obs, "deps", 5);
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Complete { name: "record", .. }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Counter {
                name: "deps",
                value: 5,
                ..
            }
        )));
    }

    #[test]
    fn metrics_registry_is_a_sink() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = Obs::with_sink(reg.clone());
        {
            let _span = obs.span("solve");
        }
        obs.counter("clauses", 7);
        let snap = reg.snapshot();
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.counters.get("clauses"), Some(&7));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
