//! # light-obs — unified tracing, metrics, and pipeline profiling
//!
//! The observability layer for the Light record/replay pipeline. It
//! provides three things:
//!
//! 1. **A zero-cost-when-disabled event/span API.** All instrumentation
//!    goes through an [`Obs`] handle, which is either disabled (holds no
//!    sink — every call is a branch on a `None` and returns immediately,
//!    without even reading the clock) or carries an `Arc<dyn Sink>`.
//!    The recorder's per-access fast path is *never* instrumented per
//!    event; only phase boundaries and end-of-run snapshots flow through
//!    the sink, so recording with a sink attached is byte-identical to
//!    recording without one.
//!
//! 2. **A unified metrics model.** [`RecorderMetrics`],
//!    [`SolverMetrics`], [`SchedulerMetrics`], and [`RunMetrics`]
//!    supersede the scattered per-crate stat structs; a
//!    [`MetricsSnapshot`] combines them with phase timings and is
//!    JSON-serializable via the built-in writer ([`json::Value`]) or,
//!    with the `serde` feature, via serde derives.
//!
//! 3. **Chrome trace export.** [`TraceSink`] buffers events and renders
//!    `chrome://tracing` / Perfetto trace-event JSON so a full
//!    record → constraint-build → solve → replay pass can be opened on a
//!    timeline ([`TraceSink::chrome_trace_json`]).
//!
//! ```
//! use light_obs::{Obs, TraceSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(TraceSink::new());
//! let obs = Obs::with_sink(sink.clone());
//! {
//!     let _span = light_obs::span!(obs, "solve");
//!     // ... work ...
//! }
//! light_obs::counter!(obs, "decisions", 42);
//! assert!(obs.enabled());
//! let json = sink.chrome_trace_json();
//! assert!(json.contains("\"solve\""));
//! ```

pub mod flight;
pub mod json;
pub mod mem;
mod metrics;
mod progress;
mod trace;

pub use flight::{Flight, FlightEvent, FlightKind, FlightSink, FLIGHT_KINDS, NO_SITE};
pub use mem::{BytesGauge, MemGauge, MemRegistry, MemScope};
pub use metrics::{
    ExploreMetrics, Histogram, MemMetrics, MemStat, MetricsRegistry, MetricsSnapshot, PhaseRecord,
    RecorderMetrics, RunMetrics, SchedulerMetrics, ServeMetrics, SolverMetrics, TurboMetrics,
};
pub use progress::{CollectingProgress, JsonlProgress, Progress, ProgressRecord, ProgressSink};
pub use trace::{chrome_trace_json, TraceEvent, TraceSink};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The causal trace identifier of one pipeline invocation.
///
/// Every phase of a pipeline pass — record, constraint-build, solve,
/// replay, doctor/explore post-processing — shares the `RunId` of the
/// [`Obs`] handle threaded through it, so events from one invocation can
/// be joined across Chrome traces, progress JSONL streams, and the
/// `light-watch` run registry. Rendered and parsed as 32 lowercase hex
/// digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RunId(pub u128);

impl RunId {
    /// Mints a fresh process-unique id from the wall clock, the process
    /// id, and a process-local counter, mixed through SplitMix64 so ids
    /// minted in the same nanosecond still differ.
    pub fn fresh() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(nanos ^ u64::from(std::process::id()).rotate_left(32));
        let lo = splitmix64(seq.wrapping_add(nanos).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        RunId((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Parses the 32-hex-digit rendering produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(RunId)
    }

    /// A stable small integer for trace-viewer process grouping (the
    /// Chrome `pid` field): the low 31 bits, never 0 or negative.
    pub fn as_pid(&self) -> u64 {
        ((self.0 as u64) & 0x7FFF_FFFF).max(2)
    }
}

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The process-wide time origin for trace timestamps. First use pins it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process-wide obs epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// The logical trace lane for pipeline phases (record, solve, ...).
/// Program threads are mapped to `tid.raw() + 1` so they never collide.
pub const PIPELINE_LANE: u64 = 0;

/// A consumer of structured observability events.
///
/// Implementations must be cheap and thread-safe: events arrive from
/// the pipeline thread and from program threads concurrently.
pub trait Sink: Send + Sync {
    /// Receives one event. Timestamps are µs since the obs epoch.
    fn event(&self, ev: &TraceEvent);

    /// Whether this sink wants events at all. [`Obs::with_sink`] drops
    /// sinks that report `false`, turning every instrumentation site
    /// into a no-op branch.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op sink: explicitly requests to receive nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn event(&self, _ev: &TraceEvent) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// A cheap, cloneable handle to an optional sink. The pipeline threads
/// this through `ExecConfig`, the recorder, and the replay driver.
///
/// When disabled (the default), every method returns after one branch —
/// no clock read, no allocation, no atomic.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn Sink>>,
    run: Option<RunId>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .field("run", &self.run)
            .finish()
    }
}

impl Obs {
    /// A handle with no sink; all instrumentation is skipped.
    pub fn disabled() -> Self {
        Obs {
            sink: None,
            run: None,
        }
    }

    /// Wraps a sink. If the sink reports `enabled() == false` (e.g.
    /// [`NullSink`]), the handle is disabled outright so call sites pay
    /// nothing.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        if sink.enabled() {
            Obs {
                sink: Some(sink),
                run: None,
            }
        } else {
            Obs::disabled()
        }
    }

    /// Attaches a causal run id to this handle. A
    /// [`TraceEvent::RunContext`] metadata event is emitted immediately
    /// (when a sink is attached) so exporters can group everything that
    /// follows under one trace; every clone of the returned handle
    /// carries the same id. The id sticks even with no sink, so run
    /// registries can join runs that were never traced.
    pub fn with_run_id(mut self, run: RunId) -> Obs {
        self.run = Some(run);
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::RunContext {
                run_id: run.to_string(),
                pid: run.as_pid(),
            });
        }
        self
    }

    /// The causal trace id of this pipeline invocation, if one was
    /// attached via [`Obs::with_run_id`].
    pub fn run_id(&self) -> Option<RunId> {
        self.run
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    pub fn sink(&self) -> Option<&Arc<dyn Sink>> {
        self.sink.as_ref()
    }

    /// Opens a span on the pipeline lane; the span closes (emitting a
    /// `Complete` event) when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_on(name, PIPELINE_LANE)
    }

    /// Opens a span on an explicit lane.
    pub fn span_on(&self, name: &'static str, tid: u64) -> SpanGuard {
        SpanGuard {
            inner: self
                .sink
                .as_ref()
                .map(|s| (Arc::clone(s), name, tid, now_us())),
        }
    }

    /// Emits a named counter sample on the pipeline lane.
    pub fn counter(&self, name: &'static str, value: u64) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::Counter {
                name,
                tid: PIPELINE_LANE,
                ts_us: now_us(),
                value,
            });
        }
    }

    /// Emits a point-in-time marker.
    pub fn instant(&self, name: &'static str, tid: u64) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::Instant {
                name,
                tid,
                ts_us: now_us(),
            });
        }
    }

    /// Opens an explicit (non-guard) span — for spans whose begin and
    /// end happen on the same thread but not in one scope, like program
    /// thread lifetimes.
    pub fn begin(&self, name: &'static str, tid: u64) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::Begin {
                name,
                tid,
                ts_us: now_us(),
            });
        }
    }

    /// Closes the innermost explicit span on `tid`.
    pub fn end(&self, tid: u64) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::End {
                tid,
                ts_us: now_us(),
            });
        }
    }

    /// Names a trace lane (shows as the thread name in the Chrome UI).
    pub fn thread_name(&self, tid: u64, label: &str) {
        if let Some(sink) = &self.sink {
            sink.event(&TraceEvent::ThreadName {
                tid,
                label: label.to_string(),
            });
        }
    }

    /// Forwards a raw event.
    pub fn emit(&self, ev: &TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.event(ev);
        }
    }
}

/// Closes its span on drop. Obtained from [`Obs::span`] / [`span!`].
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    inner: Option<(Arc<dyn Sink>, &'static str, u64, u64)>,
}

impl SpanGuard {
    /// Explicitly closes the span now (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((sink, name, tid, start)) = self.inner.take() {
            sink.event(&TraceEvent::Complete {
                name,
                tid,
                ts_us: start,
                dur_us: now_us().saturating_sub(start),
            });
        }
    }
}

/// Opens a scoped span: `span!(obs, "solve")` or `span!(obs, "thread", lane)`.
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr) => {
        $obs.span($name)
    };
    ($obs:expr, $name:expr, $tid:expr) => {
        $obs.span_on($name, $tid)
    };
}

/// Emits a named counter sample: `counter!(obs, "deps", n)`.
#[macro_export]
macro_rules! counter {
    ($obs:expr, $name:expr, $value:expr) => {
        $obs.counter($name, $value)
    };
}

/// Records a value into a [`Histogram`]: `histogram!(hist, v)`.
#[macro_export]
macro_rules! histogram {
    ($hist:expr, $value:expr) => {
        $hist.record($value)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_emits_nothing_and_allocates_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        let guard = obs.span("x");
        assert!(guard.inner.is_none());
        drop(guard);
        obs.counter("c", 1);
        obs.begin("b", 2);
        obs.end(2);
    }

    #[test]
    fn null_sink_disables_the_handle() {
        let obs = Obs::with_sink(Arc::new(NullSink));
        assert!(!obs.enabled());
    }

    #[test]
    fn span_guard_emits_complete_on_drop() {
        let sink = Arc::new(TraceSink::new());
        let obs = Obs::with_sink(sink.clone());
        {
            let _span = span!(obs, "record");
        }
        counter!(obs, "deps", 5);
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Complete { name: "record", .. }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::Counter {
                name: "deps",
                value: 5,
                ..
            }
        )));
    }

    #[test]
    fn metrics_registry_is_a_sink() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = Obs::with_sink(reg.clone());
        {
            let _span = obs.span("solve");
        }
        obs.counter("clauses", 7);
        let snap = reg.snapshot();
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.counters.get("clauses"), Some(&7));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn run_ids_are_unique_and_display_round_trips() {
        let a = RunId::fresh();
        let b = RunId::fresh();
        assert_ne!(a, b);
        let s = a.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(RunId::parse(&s), Some(a));
        assert_eq!(RunId::parse("zz"), None);
        assert_eq!(RunId::parse(""), None);
        assert!(a.as_pid() >= 2);
    }

    #[test]
    fn with_run_id_emits_run_context_and_sticks_to_clones() {
        let sink = Arc::new(TraceSink::new());
        let id = RunId::fresh();
        let obs = Obs::with_sink(sink.clone()).with_run_id(id);
        assert_eq!(obs.run_id(), Some(id));
        assert_eq!(obs.clone().run_id(), Some(id));
        let events = sink.events();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::RunContext { run_id, pid }
                if *run_id == id.to_string() && *pid == id.as_pid()
        )));
        // A disabled handle still carries the id (registry joins work
        // even when tracing is off).
        let quiet = Obs::disabled().with_run_id(id);
        assert!(!quiet.enabled());
        assert_eq!(quiet.run_id(), Some(id));
    }
}
