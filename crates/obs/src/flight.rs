//! The flight-recorder event hook: a second, *much* cheaper event plane
//! next to [`crate::Sink`].
//!
//! Where [`crate::Sink`] carries phase spans and end-of-run counters,
//! [`FlightSink`] carries the pipeline's *micro*-events — one compact
//! fixed-size record per recorded dependence, prec hit, stripe block,
//! elision, ghost op, scheduler decision, or solver tick. The contract
//! mirrors [`crate::Obs`]: a disabled [`Flight`] handle costs exactly one
//! untaken branch per site (no clock read, no allocation, no atomic), so
//! the recorder's fast path is unchanged and recordings stay
//! byte-identical whether or not a flight recorder is attached.
//!
//! The canonical sink is `light-profile`'s per-thread ring buffers; this
//! module only defines the wire format and the handle so `light-core`,
//! `light-runtime`, and `light-solver` can emit without depending on the
//! profiler.

use crate::now_us;
use std::sync::Arc;

/// `FlightEvent::site` value meaning "no instruction site".
pub const NO_SITE: u64 = u64::MAX;

/// What happened. Kept dense and `u8`-sized so events pack into five
/// words; `from_u8` is the decoder used when draining ring buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FlightKind {
    /// A flow dependence was closed into the log. `loc` = location key,
    /// `aux` = log cost in long words.
    DepRecorded = 0,
    /// A run record (O1 merged sequence) was closed into the log.
    /// `loc` = location key, `aux` = log cost in long words.
    RunRecorded = 1,
    /// Algorithm 1's `prec` collapsed a read into the open run.
    /// `loc` = location key.
    PrecHit = 2,
    /// O1 merged a same-thread write into the open run. `loc` = key.
    O1Merge = 3,
    /// O2 elided a consistently-lock-guarded access entirely.
    /// `loc` = location key, `aux` = 1 (one access worth of work saved).
    O2Elision = 4,
    /// A stripe lock's non-blocking path failed and the thread blocked
    /// (the substrate's analogue of the paper's CAS retry).
    /// `loc` = location key, `aux` = stripe index.
    StripeBlocked = 5,
    /// A speculative pick was thrown away (scheduler suppressed a
    /// runnable thread, e.g. after a fault). `loc` = suppressed count.
    SpecFail = 6,
    /// A monitor / thread-lifecycle ghost operation flowed through the
    /// recorder. `loc` = ghost location key, `aux` = sync-event code.
    GhostOp = 7,
    /// The controlled scheduler admitted a thread at its scheduled slot.
    /// `loc` = global sequence number admitted.
    SchedDecision = 8,
    /// The controlled scheduler made a thread wait for its turn.
    /// `loc` = the sequence number it stalled for.
    SchedStall = 9,
    /// The controlled scheduler parked a thread past its event frontier.
    SchedPark = 10,
    /// Solver progress tick (every N search decisions).
    /// `loc` = decisions so far, `aux` = backtracks so far.
    SolverTick = 11,
    /// One constraint group was handed to the solver.
    /// `loc` = constraint-kind code, `aux` = number of constraints.
    ConstraintGroup = 12,
    /// The turbo solver finished one independent component.
    /// `loc` = component variable count, `aux` = decisions it took.
    SolverComponent = 13,
    /// The recorder's last-write map doubled its stripe count.
    /// `loc` = new stripe count, `aux` = new layout generation.
    StripeResized = 14,
    /// A thread-local dependence batch flushed to the central log.
    /// `loc` = records in the batch.
    BatchFlush = 15,
}

/// Number of distinct [`FlightKind`] values (for per-kind total arrays).
pub const FLIGHT_KINDS: usize = 16;

impl FlightKind {
    /// Decodes a kind byte (the inverse of `kind as u8`).
    pub fn from_u8(v: u8) -> Option<FlightKind> {
        use FlightKind::*;
        Some(match v {
            0 => DepRecorded,
            1 => RunRecorded,
            2 => PrecHit,
            3 => O1Merge,
            4 => O2Elision,
            5 => StripeBlocked,
            6 => SpecFail,
            7 => GhostOp,
            8 => SchedDecision,
            9 => SchedStall,
            10 => SchedPark,
            11 => SolverTick,
            12 => ConstraintGroup,
            13 => SolverComponent,
            14 => StripeResized,
            15 => BatchFlush,
            _ => return None,
        })
    }

    /// Stable lowercase name (used by folded stacks and the JSON report).
    pub fn name(self) -> &'static str {
        use FlightKind::*;
        match self {
            DepRecorded => "dep-recorded",
            RunRecorded => "run-recorded",
            PrecHit => "prec-hit",
            O1Merge => "o1-merge",
            O2Elision => "o2-elision",
            StripeBlocked => "stripe-blocked",
            SpecFail => "spec-fail",
            GhostOp => "ghost-op",
            SchedDecision => "sched-decision",
            SchedStall => "sched-stall",
            SchedPark => "sched-park",
            SolverTick => "solver-tick",
            ConstraintGroup => "constraint-group",
            SolverComponent => "solver-component",
            StripeResized => "stripe-resized",
            BatchFlush => "batch-flush",
        }
    }
}

/// One flight-recorder event: 40 bytes, `Copy`, encodable to five `u64`
/// words for lock-free ring storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the obs epoch ([`crate::now_us`]).
    pub ts_us: u64,
    pub kind: FlightKind,
    /// Raw thread id (`Tid::raw`), or a pipeline lane for solver events.
    pub tid: u64,
    /// Packed instruction site (`InstrId` packed as
    /// `func << 48 | block << 32 | idx`), or [`NO_SITE`].
    pub site: u64,
    /// Kind-specific location (location key, sequence number, ...).
    pub loc: u64,
    /// Kind-specific payload.
    pub aux: u64,
}

impl FlightEvent {
    /// Encodes to the five-word ring format. Thread ids are bounded to 56
    /// bits by the recorder's own packing (24 bits in practice), so the
    /// kind byte rides in the low byte of word 1.
    pub fn encode(&self) -> [u64; 5] {
        [
            self.ts_us,
            (self.kind as u64) | (self.tid << 8),
            self.site,
            self.loc,
            self.aux,
        ]
    }

    /// Decodes the five-word ring format; `None` on an unknown kind byte
    /// (a torn slot from a wrapping writer).
    pub fn decode(words: [u64; 5]) -> Option<FlightEvent> {
        Some(FlightEvent {
            ts_us: words[0],
            kind: FlightKind::from_u8((words[1] & 0xff) as u8)?,
            tid: words[1] >> 8,
            site: words[2],
            loc: words[3],
            aux: words[4],
        })
    }
}

/// A consumer of flight events. Implementations must be wait-free-ish:
/// events arrive from program threads inside the recorder's access path.
pub trait FlightSink: Send + Sync {
    /// Receives one event.
    fn record(&self, ev: &FlightEvent);

    /// Whether this sink wants events at all; [`Flight::with_sink`] drops
    /// sinks reporting `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A cheap, cloneable handle to an optional flight sink, mirroring
/// [`crate::Obs`]: when disabled every [`Flight::emit`] is one untaken
/// branch — the clock is not even read.
#[derive(Clone, Default)]
pub struct Flight {
    sink: Option<Arc<dyn FlightSink>>,
}

impl std::fmt::Debug for Flight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Flight")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Flight {
    /// A handle with no sink; every emit site is skipped.
    pub fn disabled() -> Self {
        Flight { sink: None }
    }

    /// Wraps a sink, dropping it outright if it reports
    /// `enabled() == false`.
    pub fn with_sink(sink: Arc<dyn FlightSink>) -> Self {
        if sink.enabled() {
            Flight { sink: Some(sink) }
        } else {
            Flight { sink: None }
        }
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    pub fn sink(&self) -> Option<&Arc<dyn FlightSink>> {
        self.sink.as_ref()
    }

    /// Emits one event, stamping the timestamp only when enabled.
    #[inline]
    pub fn emit(&self, kind: FlightKind, tid: u64, site: u64, loc: u64, aux: u64) {
        if let Some(sink) = &self.sink {
            sink.record(&FlightEvent {
                ts_us: now_us(),
                kind,
                tid,
                site,
                loc,
                aux,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct Collect(Mutex<Vec<FlightEvent>>);
    impl FlightSink for Collect {
        fn record(&self, ev: &FlightEvent) {
            self.0.lock().unwrap().push(*ev);
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let flight = Flight::disabled();
        assert!(!flight.enabled());
        flight.emit(FlightKind::DepRecorded, 1, NO_SITE, 42, 2);
    }

    #[test]
    fn emit_reaches_the_sink() {
        let sink = Arc::new(Collect(Mutex::new(Vec::new())));
        let flight = Flight::with_sink(sink.clone());
        flight.emit(FlightKind::PrecHit, 7, 3, 99, 0);
        let events = sink.0.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FlightKind::PrecHit);
        assert_eq!(events[0].tid, 7);
        assert_eq!(events[0].loc, 99);
    }

    #[test]
    fn encode_decode_roundtrips_every_kind() {
        for code in 0..FLIGHT_KINDS as u8 {
            let kind = FlightKind::from_u8(code).expect("dense");
            assert_eq!(kind as u8, code);
            let ev = FlightEvent {
                ts_us: 123_456,
                kind,
                tid: 0xabcd,
                site: 0xdead_beef,
                loc: u64::MAX >> 1,
                aux: 17,
            };
            assert_eq!(FlightEvent::decode(ev.encode()), Some(ev));
        }
        assert_eq!(FlightKind::from_u8(FLIGHT_KINDS as u8), None);
    }

    #[test]
    fn disabled_sink_disables_the_handle() {
        struct Off;
        impl FlightSink for Off {
            fn record(&self, _ev: &FlightEvent) {
                panic!("must never be called");
            }
            fn enabled(&self) -> bool {
                false
            }
        }
        let flight = Flight::with_sink(Arc::new(Off));
        assert!(!flight.enabled());
        flight.emit(FlightKind::SolverTick, 0, NO_SITE, 0, 0);
    }
}
