//! Typed metric snapshots unifying the pipeline's scattered stats.
//!
//! Historically the repo had three disconnected stat structs —
//! `RecordStats` (recorder), `SolveStats` (solver), `RunStats`
//! (runtime) — and benches scraped text output to aggregate them. The
//! types here are the unified, serializable superset: each pipeline
//! stage converts its native counters into one of these sections, and a
//! [`MetricsSnapshot`] stitches the sections together with phase
//! timings into a single JSON-exportable document.

use crate::json::Value;
use crate::{Sink, TraceEvent};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Reads an integer field of a JSON object, defaulting absent or
/// non-numeric values to 0 so older snapshots parse leniently.
fn ju(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

/// Per-run recorder counters (Light's bounded-recording side).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RecorderMetrics {
    /// Log size in 64-bit words (the paper's space unit).
    pub space_longs: u64,
    /// Inter-thread flow-dependence edges recorded.
    pub deps: u64,
    /// Merged access runs recorded (prec/O1).
    pub runs: u64,
    /// Speculative read-matching retries.
    pub retries: u64,
    /// Accesses skipped entirely by the O2 guarded-location optimization.
    pub o2_skipped: u64,
    /// Times a last-write-map stripe lock was contended (the fast-path
    /// `try_lock` failed and the thread had to block).
    pub stripe_contention: u64,
}

/// IDL constraint-solver counters for one `solve` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct SolverMetrics {
    /// Order variables in the constraint system.
    pub vars: u64,
    /// Hard difference constraints asserted up front.
    pub hard_constraints: u64,
    /// Disjunctive (read-matching) clauses.
    pub clauses: u64,
    /// Clause decisions taken.
    pub decisions: u64,
    /// Decisions undone on conflict.
    pub backtracks: u64,
    /// Wall time inside the solver.
    pub solve_ns: u64,
}

/// Controlled-replay scheduler counters for one enforced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct SchedulerMetrics {
    /// Slots in the enforced total order.
    pub schedule_len: u64,
    /// Admissions where the admitted thread differed from the previous
    /// admitted thread (enforced context switches).
    pub context_switches: u64,
    /// Admissions that had to wait for their turn at least once.
    pub enforcement_stalls: u64,
    /// Total nanoseconds threads spent waiting for their turn.
    pub stall_ns: u64,
    /// Blind writes suppressed during replay.
    pub suppressed_writes: u64,
    /// Events parked past the recorded extent of their thread.
    pub parked: u64,
}

/// Schedule-exploration counters for one `light-explore` campaign
/// (search → first-failure capture → minimization → validation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ExploreMetrics {
    /// Schedules executed during the search phase.
    pub schedules: u64,
    /// Schedules that surfaced a program bug.
    pub failures: u64,
    /// Delta-debugging probe runs during minimization.
    pub minimize_iterations: u64,
    /// Decision-trace segments of the unminimized repro.
    pub trace_segments: u64,
    /// Decision-trace segments after minimization.
    pub minimized_segments: u64,
    /// Wall time of the whole campaign.
    pub wall_ns: u64,
}

/// Replay-as-a-service counters: one `light-serve` daemon's ingestion
/// and job-pipeline totals (or an aggregate over several server runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ServeMetrics {
    /// Submissions accepted over the wire.
    pub submissions: u64,
    /// Submissions whose recording bytes hashed to an already-stored
    /// blob (stored once, job not re-run).
    pub dedup_hits: u64,
    /// Jobs whose solve → replay → doctor pipeline finished healthy.
    pub jobs_ok: u64,
    /// Jobs whose checked replay diverged from the recording.
    pub jobs_diverged: u64,
    /// Jobs that failed outright (unparseable program, unsolvable
    /// schedule, replay setup error).
    pub jobs_failed: u64,
    /// Completed jobs whose outcome record could not be written to the
    /// registry index. Non-zero means queries under-report finished
    /// work relative to `jobs_ok`/`jobs_diverged`/`jobs_failed`.
    pub ingest_failed: u64,
    /// Deepest job-queue backlog observed.
    pub queue_peak: u64,
    /// Worker threads of the job pool.
    pub workers: u64,
}

/// Turbo (component-sharded) solver counters for one parallel solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct TurboMetrics {
    /// Independent constraint components (1 = sequential path).
    pub components: u64,
    /// Variable count of the widest component.
    pub widest_component: u64,
    /// Worker threads used for the component pool.
    pub workers: u64,
    /// Components answered from the shared component cache.
    pub cache_hits: u64,
    /// Components solved fresh while a cache was attached.
    pub cache_misses: u64,
    /// Unit clauses promoted to hard constraints by preprocessing.
    pub promoted_units: u64,
    /// Clauses removed by preprocessing (dedup, entailment, subsumption).
    pub dropped_clauses: u64,
}

/// One subsystem's byte accounting: current resident bytes plus the
/// monotone high-water mark (always `>=` `bytes` in a single snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct MemStat {
    /// Resident bytes at snapshot time.
    pub bytes: u64,
    /// High-water mark of `bytes` over the gauge's lifetime.
    pub peak_bytes: u64,
}

/// Per-subsystem memory accounting (the `crate::mem` plane's snapshot):
/// byte gauges keyed by subsystem name (`recorder-log`, `lw-map`,
/// `solver-clauses`, `solver-cache`, `serve-queue`, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct MemMetrics {
    pub subsystems: BTreeMap<String, MemStat>,
}

/// Whole-run runtime counters (either the recorded or the replayed run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RunMetrics {
    pub duration_ns: u64,
    pub threads: u64,
    pub events: u64,
    pub objects: u64,
}

/// One timed pipeline phase (record, log-persist, constraint-build,
/// solve, replay-run, ...). Times are µs since the obs epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PhaseRecord {
    pub name: String,
    pub start_us: u64,
    pub dur_us: u64,
}

/// The unified, serializable snapshot of everything the pipeline
/// measured. Sections are optional because a snapshot can describe a
/// record-only run, a replay, or a full pipeline pass.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct MetricsSnapshot {
    pub record: Option<RecorderMetrics>,
    pub record_run: Option<RunMetrics>,
    pub solver: Option<SolverMetrics>,
    /// Component-sharded solve breakdown. Additive: absent for
    /// sequential-only snapshots and omitted from JSON when absent, so
    /// older consumers of the shape are unaffected.
    pub turbo: Option<TurboMetrics>,
    /// Replay-as-a-service (`light-serve`) ingestion and job-pipeline
    /// counters. Additive: absent outside server runs and omitted from
    /// JSON when absent, so older consumers of the shape are unaffected.
    pub serve: Option<ServeMetrics>,
    pub scheduler: Option<SchedulerMetrics>,
    pub replay_run: Option<RunMetrics>,
    pub explore: Option<ExploreMetrics>,
    /// Per-subsystem byte gauges (current + peak) from the
    /// [`crate::mem`] accounting plane. Additive: absent for snapshots
    /// written before the plane existed (or with accounting disabled)
    /// and omitted from JSON when absent, so older consumers of the
    /// shape are unaffected and tools render `n/a` rather than zeros.
    pub mem: Option<MemMetrics>,
    pub phases: Vec<PhaseRecord>,
    /// Free-form named counters fed through the sink API.
    pub counters: BTreeMap<String, u64>,
    /// Per-phase latency distributions in µs (record, solve, replay-run,
    /// ...): histograms rather than single samples, so snapshots that
    /// aggregate many pipeline passes keep the shape of the distribution.
    pub latencies: BTreeMap<String, Histogram>,
    /// Per-stripe breakdown of `record.stripe_contention` as sparse
    /// `(stripe index, contended accesses)` pairs, sorted by index.
    /// Empty when the recorder saw no contention (or predates the
    /// histogram). Additive: serialized only when non-empty, so older
    /// consumers of the JSON shape are unaffected.
    pub stripe_hist: Vec<(u32, u64)>,
}

impl RecorderMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("space_longs", Value::from(self.space_longs)),
            ("deps", Value::from(self.deps)),
            ("runs", Value::from(self.runs)),
            ("retries", Value::from(self.retries)),
            ("o2_skipped", Value::from(self.o2_skipped)),
            ("stripe_contention", Value::from(self.stripe_contention)),
        ])
    }

    pub fn from_json(v: &Value) -> Self {
        RecorderMetrics {
            space_longs: ju(v, "space_longs"),
            deps: ju(v, "deps"),
            runs: ju(v, "runs"),
            retries: ju(v, "retries"),
            o2_skipped: ju(v, "o2_skipped"),
            stripe_contention: ju(v, "stripe_contention"),
        }
    }

    /// Fieldwise sum; the combine step of [`MetricsSnapshot::aggregate`].
    fn combine(&self, other: &Self) -> Self {
        RecorderMetrics {
            space_longs: self.space_longs.saturating_add(other.space_longs),
            deps: self.deps.saturating_add(other.deps),
            runs: self.runs.saturating_add(other.runs),
            retries: self.retries.saturating_add(other.retries),
            o2_skipped: self.o2_skipped.saturating_add(other.o2_skipped),
            stripe_contention: self.stripe_contention.saturating_add(other.stripe_contention),
        }
    }
}

impl SolverMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("vars", Value::from(self.vars)),
            ("hard_constraints", Value::from(self.hard_constraints)),
            ("clauses", Value::from(self.clauses)),
            ("decisions", Value::from(self.decisions)),
            ("backtracks", Value::from(self.backtracks)),
            ("solve_ns", Value::from(self.solve_ns)),
        ])
    }

    pub fn from_json(v: &Value) -> Self {
        SolverMetrics {
            vars: ju(v, "vars"),
            hard_constraints: ju(v, "hard_constraints"),
            clauses: ju(v, "clauses"),
            decisions: ju(v, "decisions"),
            backtracks: ju(v, "backtracks"),
            solve_ns: ju(v, "solve_ns"),
        }
    }

    fn combine(&self, other: &Self) -> Self {
        SolverMetrics {
            vars: self.vars.saturating_add(other.vars),
            hard_constraints: self.hard_constraints.saturating_add(other.hard_constraints),
            clauses: self.clauses.saturating_add(other.clauses),
            decisions: self.decisions.saturating_add(other.decisions),
            backtracks: self.backtracks.saturating_add(other.backtracks),
            solve_ns: self.solve_ns.saturating_add(other.solve_ns),
        }
    }
}

impl ServeMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("submissions", Value::from(self.submissions)),
            ("dedup_hits", Value::from(self.dedup_hits)),
            ("jobs_ok", Value::from(self.jobs_ok)),
            ("jobs_diverged", Value::from(self.jobs_diverged)),
            ("jobs_failed", Value::from(self.jobs_failed)),
            ("ingest_failed", Value::from(self.ingest_failed)),
            ("queue_peak", Value::from(self.queue_peak)),
            ("workers", Value::from(self.workers)),
        ])
    }

    pub fn from_json(v: &Value) -> Self {
        ServeMetrics {
            submissions: ju(v, "submissions"),
            dedup_hits: ju(v, "dedup_hits"),
            jobs_ok: ju(v, "jobs_ok"),
            jobs_diverged: ju(v, "jobs_diverged"),
            jobs_failed: ju(v, "jobs_failed"),
            ingest_failed: ju(v, "ingest_failed"),
            queue_peak: ju(v, "queue_peak"),
            workers: ju(v, "workers"),
        }
    }

    fn combine(&self, other: &Self) -> Self {
        ServeMetrics {
            submissions: self.submissions.saturating_add(other.submissions),
            dedup_hits: self.dedup_hits.saturating_add(other.dedup_hits),
            jobs_ok: self.jobs_ok.saturating_add(other.jobs_ok),
            jobs_diverged: self.jobs_diverged.saturating_add(other.jobs_diverged),
            jobs_failed: self.jobs_failed.saturating_add(other.jobs_failed),
            ingest_failed: self.ingest_failed.saturating_add(other.ingest_failed),
            // Backlogs and pool sizes don't add across servers; the
            // deepest/widest seen keeps combine associative.
            queue_peak: self.queue_peak.max(other.queue_peak),
            workers: self.workers.max(other.workers),
        }
    }
}

impl TurboMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("components", Value::from(self.components)),
            ("widest_component", Value::from(self.widest_component)),
            ("workers", Value::from(self.workers)),
            ("cache_hits", Value::from(self.cache_hits)),
            ("cache_misses", Value::from(self.cache_misses)),
            ("promoted_units", Value::from(self.promoted_units)),
            ("dropped_clauses", Value::from(self.dropped_clauses)),
        ])
    }

    pub fn from_json(v: &Value) -> Self {
        TurboMetrics {
            components: ju(v, "components"),
            widest_component: ju(v, "widest_component"),
            workers: ju(v, "workers"),
            cache_hits: ju(v, "cache_hits"),
            cache_misses: ju(v, "cache_misses"),
            promoted_units: ju(v, "promoted_units"),
            dropped_clauses: ju(v, "dropped_clauses"),
        }
    }

    fn combine(&self, other: &Self) -> Self {
        TurboMetrics {
            components: self.components.saturating_add(other.components),
            // Widths don't add across solves; the widest seen is the
            // meaningful aggregate (and max keeps combine associative).
            widest_component: self.widest_component.max(other.widest_component),
            workers: self.workers.max(other.workers),
            cache_hits: self.cache_hits.saturating_add(other.cache_hits),
            cache_misses: self.cache_misses.saturating_add(other.cache_misses),
            promoted_units: self.promoted_units.saturating_add(other.promoted_units),
            dropped_clauses: self.dropped_clauses.saturating_add(other.dropped_clauses),
        }
    }
}

impl SchedulerMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("schedule_len", Value::from(self.schedule_len)),
            ("context_switches", Value::from(self.context_switches)),
            ("enforcement_stalls", Value::from(self.enforcement_stalls)),
            ("stall_ns", Value::from(self.stall_ns)),
            ("suppressed_writes", Value::from(self.suppressed_writes)),
            ("parked", Value::from(self.parked)),
        ])
    }

    pub fn from_json(v: &Value) -> Self {
        SchedulerMetrics {
            schedule_len: ju(v, "schedule_len"),
            context_switches: ju(v, "context_switches"),
            enforcement_stalls: ju(v, "enforcement_stalls"),
            stall_ns: ju(v, "stall_ns"),
            suppressed_writes: ju(v, "suppressed_writes"),
            parked: ju(v, "parked"),
        }
    }

    fn combine(&self, other: &Self) -> Self {
        SchedulerMetrics {
            schedule_len: self.schedule_len.saturating_add(other.schedule_len),
            context_switches: self.context_switches.saturating_add(other.context_switches),
            enforcement_stalls: self
                .enforcement_stalls
                .saturating_add(other.enforcement_stalls),
            stall_ns: self.stall_ns.saturating_add(other.stall_ns),
            suppressed_writes: self.suppressed_writes.saturating_add(other.suppressed_writes),
            parked: self.parked.saturating_add(other.parked),
        }
    }
}

impl ExploreMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("schedules", Value::from(self.schedules)),
            ("failures", Value::from(self.failures)),
            ("minimize_iterations", Value::from(self.minimize_iterations)),
            ("trace_segments", Value::from(self.trace_segments)),
            ("minimized_segments", Value::from(self.minimized_segments)),
            ("wall_ns", Value::from(self.wall_ns)),
        ])
    }

    pub fn from_json(v: &Value) -> Self {
        ExploreMetrics {
            schedules: ju(v, "schedules"),
            failures: ju(v, "failures"),
            minimize_iterations: ju(v, "minimize_iterations"),
            trace_segments: ju(v, "trace_segments"),
            minimized_segments: ju(v, "minimized_segments"),
            wall_ns: ju(v, "wall_ns"),
        }
    }

    fn combine(&self, other: &Self) -> Self {
        ExploreMetrics {
            schedules: self.schedules.saturating_add(other.schedules),
            failures: self.failures.saturating_add(other.failures),
            minimize_iterations: self
                .minimize_iterations
                .saturating_add(other.minimize_iterations),
            trace_segments: self.trace_segments.saturating_add(other.trace_segments),
            minimized_segments: self
                .minimized_segments
                .saturating_add(other.minimized_segments),
            wall_ns: self.wall_ns.saturating_add(other.wall_ns),
        }
    }
}

impl MemMetrics {
    pub fn to_json(&self) -> Value {
        Value::Obj(
            self.subsystems
                .iter()
                .map(|(name, stat)| {
                    (
                        name.clone(),
                        Value::obj([
                            ("bytes", Value::from(stat.bytes)),
                            ("peak_bytes", Value::from(stat.peak_bytes)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    pub fn from_json(v: &Value) -> Self {
        let mut m = MemMetrics::default();
        if let Some(subsystems) = v.as_obj() {
            for (name, stat) in subsystems {
                m.subsystems.insert(
                    name.clone(),
                    MemStat {
                        bytes: ju(stat, "bytes"),
                        peak_bytes: ju(stat, "peak_bytes"),
                    },
                );
            }
        }
        m
    }

    /// Keywise union; both fields sum. Summing peaks makes the aggregate
    /// peak a conservative upper bound on the true combined high-water
    /// mark (the runs may not have overlapped), which keeps the
    /// `peak_bytes >= bytes` invariant and — unlike a max — stays
    /// meaningful when folding shards of one fleet. Public: the prom
    /// exposition folds Serve records' mem sections with the same law.
    pub fn combine(&self, other: &Self) -> Self {
        let mut subsystems = self.subsystems.clone();
        for (name, stat) in &other.subsystems {
            let slot = subsystems.entry(name.clone()).or_default();
            slot.bytes = slot.bytes.saturating_add(stat.bytes);
            slot.peak_bytes = slot.peak_bytes.saturating_add(stat.peak_bytes);
        }
        MemMetrics { subsystems }
    }
}

impl RunMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("duration_ns", Value::from(self.duration_ns)),
            ("threads", Value::from(self.threads)),
            ("events", Value::from(self.events)),
            ("objects", Value::from(self.objects)),
        ])
    }

    pub fn from_json(v: &Value) -> Self {
        RunMetrics {
            duration_ns: ju(v, "duration_ns"),
            threads: ju(v, "threads"),
            events: ju(v, "events"),
            objects: ju(v, "objects"),
        }
    }

    fn combine(&self, other: &Self) -> Self {
        RunMetrics {
            duration_ns: self.duration_ns.saturating_add(other.duration_ns),
            threads: self.threads.max(other.threads),
            events: self.events.saturating_add(other.events),
            objects: self.objects.max(other.objects),
        }
    }
}

impl PhaseRecord {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("name", Value::from(self.name.as_str())),
            ("start_us", Value::from(self.start_us)),
            ("dur_us", Value::from(self.dur_us)),
        ])
    }

    pub fn from_json(v: &Value) -> Self {
        PhaseRecord {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            start_us: ju(v, "start_us"),
            dur_us: ju(v, "dur_us"),
        }
    }
}

/// Combines two optional sections: absent sides are identity, both
/// present combines fieldwise. Keeps [`MetricsSnapshot::aggregate`]
/// associative and order-insensitive as long as `combine` is.
fn combine_opt<T: Copy>(a: Option<T>, b: Option<T>, combine: impl Fn(&T, &T) -> T) -> Option<T> {
    match (a, b) {
        (Some(x), Some(y)) => Some(combine(&x, &y)),
        (Some(x), None) => Some(x),
        (None, y) => y,
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object, omitting absent sections.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = Vec::new();
        if let Some(r) = &self.record {
            pairs.push(("record".into(), r.to_json()));
        }
        if let Some(r) = &self.record_run {
            pairs.push(("record_run".into(), r.to_json()));
        }
        if let Some(s) = &self.solver {
            pairs.push(("solver".into(), s.to_json()));
        }
        if let Some(t) = &self.turbo {
            pairs.push(("turbo".into(), t.to_json()));
        }
        if let Some(s) = &self.serve {
            pairs.push(("serve".into(), s.to_json()));
        }
        if let Some(s) = &self.scheduler {
            pairs.push(("scheduler".into(), s.to_json()));
        }
        if let Some(r) = &self.replay_run {
            pairs.push(("replay_run".into(), r.to_json()));
        }
        if let Some(e) = &self.explore {
            pairs.push(("explore".into(), e.to_json()));
        }
        if let Some(m) = &self.mem {
            pairs.push(("mem".into(), m.to_json()));
        }
        if !self.phases.is_empty() {
            pairs.push((
                "phases".into(),
                Value::arr(self.phases.iter().map(PhaseRecord::to_json)),
            ));
        }
        if !self.counters.is_empty() {
            pairs.push((
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.latencies.is_empty() {
            pairs.push((
                "latencies".into(),
                Value::Obj(
                    self.latencies
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ));
        }
        if !self.stripe_hist.is_empty() {
            pairs.push((
                "stripe_hist".into(),
                Value::arr(self.stripe_hist.iter().map(|&(stripe, count)| {
                    Value::obj([
                        ("stripe", Value::from(u64::from(stripe))),
                        ("count", Value::from(count)),
                    ])
                })),
            ));
        }
        Value::Obj(pairs)
    }

    /// Parses a snapshot previously rendered by [`MetricsSnapshot::to_json`].
    /// Lenient: unknown keys are ignored and missing numeric fields
    /// default to zero, so snapshots written by any log version (v1–v4)
    /// parse into the current shape.
    pub fn from_json(v: &Value) -> Self {
        let mut snap = MetricsSnapshot {
            record: v.get("record").map(RecorderMetrics::from_json),
            record_run: v.get("record_run").map(RunMetrics::from_json),
            solver: v.get("solver").map(SolverMetrics::from_json),
            turbo: v.get("turbo").map(TurboMetrics::from_json),
            serve: v.get("serve").map(ServeMetrics::from_json),
            scheduler: v.get("scheduler").map(SchedulerMetrics::from_json),
            replay_run: v.get("replay_run").map(RunMetrics::from_json),
            explore: v.get("explore").map(ExploreMetrics::from_json),
            mem: v.get("mem").map(MemMetrics::from_json),
            ..Default::default()
        };
        if let Some(phases) = v.get("phases").and_then(Value::as_arr) {
            snap.phases = phases.iter().map(PhaseRecord::from_json).collect();
        }
        if let Some(counters) = v.get("counters").and_then(Value::as_obj) {
            for (k, c) in counters {
                if let Some(n) = c.as_u64() {
                    snap.counters.insert(k.clone(), n);
                }
            }
        }
        if let Some(latencies) = v.get("latencies").and_then(Value::as_obj) {
            for (k, h) in latencies {
                snap.latencies.insert(k.clone(), Histogram::from_json(h));
            }
        }
        if let Some(hist) = v.get("stripe_hist").and_then(Value::as_arr) {
            snap.stripe_hist = hist
                .iter()
                .map(|e| (ju(e, "stripe") as u32, ju(e, "count")))
                .collect();
            snap.stripe_hist.sort_unstable();
        }
        snap
    }

    /// Combines two snapshots into a cross-run aggregate: counter-like
    /// fields sum, capacity-like fields (`widest_component`, `workers`,
    /// `threads`, `objects`) take the max, histograms and the stripe
    /// breakdown merge, counters add. Phases are dropped — they are a
    /// per-run timeline and have no meaning across runs.
    ///
    /// Unlike [`MetricsSnapshot::merge`] (which prefers the incoming
    /// side, for layering partial snapshots of *one* run), `aggregate`
    /// is associative and order-insensitive, which is what
    /// `light-watch trend` needs to fold arbitrary subsets of registry
    /// entries in any order.
    #[must_use]
    pub fn aggregate(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        for (k, v) in &other.counters {
            let slot = counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        let mut latencies = self.latencies.clone();
        for (k, h) in &other.latencies {
            latencies.entry(k.clone()).or_default().merge(h);
        }
        let mut stripes: BTreeMap<u32, u64> = self.stripe_hist.iter().copied().collect();
        for &(stripe, count) in &other.stripe_hist {
            let slot = stripes.entry(stripe).or_insert(0);
            *slot = slot.saturating_add(count);
        }
        // The mem section is not `Copy` (it owns a map), so it combines
        // by reference rather than through `combine_opt`.
        let mem = match (&self.mem, &other.mem) {
            (Some(x), Some(y)) => Some(x.combine(y)),
            (Some(x), None) => Some(x.clone()),
            (None, y) => y.clone(),
        };
        MetricsSnapshot {
            record: combine_opt(self.record, other.record, RecorderMetrics::combine),
            record_run: combine_opt(self.record_run, other.record_run, RunMetrics::combine),
            solver: combine_opt(self.solver, other.solver, SolverMetrics::combine),
            turbo: combine_opt(self.turbo, other.turbo, TurboMetrics::combine),
            serve: combine_opt(self.serve, other.serve, ServeMetrics::combine),
            scheduler: combine_opt(self.scheduler, other.scheduler, SchedulerMetrics::combine),
            replay_run: combine_opt(self.replay_run, other.replay_run, RunMetrics::combine),
            explore: combine_opt(self.explore, other.explore, ExploreMetrics::combine),
            mem,
            phases: Vec::new(),
            counters,
            latencies,
            stripe_hist: stripes.into_iter().collect(),
        }
    }

    /// Merges another snapshot into this one. Typed sections prefer the
    /// incoming value when present; counters add; phases append.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if other.record.is_some() {
            self.record = other.record;
        }
        if other.record_run.is_some() {
            self.record_run = other.record_run;
        }
        if other.solver.is_some() {
            self.solver = other.solver;
        }
        if other.turbo.is_some() {
            self.turbo = other.turbo;
        }
        if other.serve.is_some() {
            self.serve = other.serve;
        }
        if other.scheduler.is_some() {
            self.scheduler = other.scheduler;
        }
        if other.replay_run.is_some() {
            self.replay_run = other.replay_run;
        }
        if other.explore.is_some() {
            self.explore = other.explore;
        }
        if other.mem.is_some() {
            self.mem = other.mem.clone();
        }
        self.phases.extend(other.phases.iter().cloned());
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.latencies {
            self.latencies.entry(k.clone()).or_default().merge(h);
        }
        if !other.stripe_hist.is_empty() {
            let mut merged: BTreeMap<u32, u64> = self.stripe_hist.iter().copied().collect();
            for &(stripe, count) in &other.stripe_hist {
                *merged.entry(stripe).or_insert(0) += count;
            }
            self.stripe_hist = merged.into_iter().collect();
        }
    }
}

/// A live, thread-safe registry that accumulates typed metric sections
/// and — because it is also a [`Sink`] — phase spans and counters fed
/// through the event API. Snapshot at any time with
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&self, name: &str, delta: u64) {
        let mut st = self.inner.lock().unwrap();
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn set_record(&self, m: RecorderMetrics) {
        self.inner.lock().unwrap().record = Some(m);
    }

    pub fn set_record_run(&self, m: RunMetrics) {
        self.inner.lock().unwrap().record_run = Some(m);
    }

    pub fn set_solver(&self, m: SolverMetrics) {
        self.inner.lock().unwrap().solver = Some(m);
    }

    pub fn set_turbo(&self, m: TurboMetrics) {
        self.inner.lock().unwrap().turbo = Some(m);
    }

    pub fn set_scheduler(&self, m: SchedulerMetrics) {
        self.inner.lock().unwrap().scheduler = Some(m);
    }

    pub fn set_replay_run(&self, m: RunMetrics) {
        self.inner.lock().unwrap().replay_run = Some(m);
    }

    pub fn set_explore(&self, m: ExploreMetrics) {
        self.inner.lock().unwrap().explore = Some(m);
    }

    pub fn set_mem(&self, m: MemMetrics) {
        self.inner.lock().unwrap().mem = Some(m);
    }

    pub fn phase(&self, name: &str, start_us: u64, dur_us: u64) {
        let mut st = self.inner.lock().unwrap();
        st.phases.push(PhaseRecord {
            name: name.to_string(),
            start_us,
            dur_us,
        });
        st.latencies
            .entry(name.to_string())
            .or_default()
            .record(dur_us);
    }

    /// Records one latency sample (µs) into the named histogram without
    /// adding a phase record.
    pub fn latency(&self, name: &str, dur_us: u64) {
        self.inner
            .lock()
            .unwrap()
            .latencies
            .entry(name.to_string())
            .or_default()
            .record(dur_us);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().unwrap().clone()
    }
}

impl Sink for MetricsRegistry {
    fn event(&self, ev: &TraceEvent) {
        match *ev {
            // Pipeline-lane spans become phase records; program-thread
            // spans (tid > 0) would swamp the phase list, so only lane 0
            // is treated as a pipeline phase.
            TraceEvent::Complete {
                name,
                tid: 0,
                ts_us,
                dur_us,
            } => self.phase(name, ts_us, dur_us),
            TraceEvent::Counter { name, value, .. } => self.add(name, value),
            _ => {}
        }
    }
}

/// A power-of-two-bucketed histogram for small integer distributions
/// (run lengths, clause sizes, stall times).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Histogram {
    /// `counts[b]` counts values v with `bucket(v) == b`; bucket 0 holds
    /// v == 0, bucket b holds 2^(b-1) <= v < 2^b.
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; 65],
            sum: 0,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `b`: 0 for bucket 0, `2^b - 1`
    /// otherwise, saturating at `u64::MAX` for the top bucket (where
    /// `1 << 64` would overflow).
    fn bucket_hi(b: usize) -> u64 {
        match b {
            0 => 0,
            1..=63 => (1u64 << b) - 1,
            _ => u64::MAX,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        // Saturating: near-u64::MAX samples (top-bucket saturation) must
        // degrade the sum, not abort the process recording them.
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Non-empty buckets as `(lo, hi, count)` inclusive ranges.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                if b == 0 {
                    (0, 0, c)
                } else {
                    (1u64 << (b - 1), Self::bucket_hi(b), c)
                }
            })
            .collect()
    }

    /// Estimates the `p`-quantile (`p` clamped to `0.0..=1.0`) from the
    /// bucket counts: the upper bound of the bucket holding the p-th
    /// sample, capped at the exact observed maximum. The cap means a
    /// single-sample histogram reports that sample exactly for every
    /// `p`, and no estimate ever exceeds a real sample. An empty
    /// histogram reports 0.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_hi(b).min(self.max);
            }
        }
        self.max
    }

    /// Renders an aligned ASCII bar chart, one line per non-empty bucket.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let buckets = self.buckets();
        let peak = buckets.iter().map(|&(_, _, c)| c).max().unwrap_or(1);
        let mut out = String::new();
        for (lo, hi, c) in buckets {
            let bar = (c as usize * width).div_ceil(peak as usize).min(width);
            let range = if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            };
            let _ = writeln!(out, "  {range:>12} | {:<width$} {c}", "#".repeat(bar));
        }
        out
    }

    pub fn to_json(&self) -> Value {
        Value::obj([
            ("count", Value::from(self.count())),
            ("sum", Value::from(self.sum)),
            ("max", Value::from(self.max)),
            (
                "buckets",
                Value::arr(self.buckets().into_iter().map(|(lo, hi, c)| {
                    Value::obj([
                        ("lo", Value::from(lo)),
                        ("hi", Value::from(hi)),
                        ("count", Value::from(c)),
                    ])
                })),
            ),
        ])
    }

    /// Parses a histogram previously rendered by [`Histogram::to_json`].
    /// Buckets are keyed by their `lo` bound, which maps 1:1 back to a
    /// bucket index, so `from_json(to_json(h)) == h`.
    pub fn from_json(v: &Value) -> Self {
        let mut h = Histogram::new();
        h.sum = ju(v, "sum");
        h.max = ju(v, "max");
        if let Some(buckets) = v.get("buckets").and_then(Value::as_arr) {
            for b in buckets {
                let lo = ju(b, "lo");
                let idx = Self::bucket(lo);
                h.counts[idx] += ju(b, "count");
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_counters_and_phases() {
        let reg = MetricsRegistry::new();
        reg.add("deps", 3);
        reg.add("deps", 4);
        reg.event(&TraceEvent::Complete {
            name: "solve",
            tid: 0,
            ts_us: 100,
            dur_us: 50,
        });
        // Program-thread spans are not pipeline phases.
        reg.event(&TraceEvent::Complete {
            name: "thread",
            tid: 2,
            ts_us: 0,
            dur_us: 1,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("deps"), Some(&7));
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].name, "solve");
    }

    #[test]
    fn snapshot_json_omits_empty_sections() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.to_json().to_json(), "{}");
        let snap = MetricsSnapshot {
            record: Some(RecorderMetrics {
                deps: 2,
                ..Default::default()
            }),
            ..Default::default()
        };
        let json = snap.to_json().to_json();
        assert!(json.contains("\"record\""));
        assert!(!json.contains("\"solver\""));
    }

    #[test]
    fn merge_adds_counters_and_prefers_incoming_sections() {
        let mut a = MetricsSnapshot {
            counters: [("x".to_string(), 1)].into_iter().collect(),
            ..Default::default()
        };
        let b = MetricsSnapshot {
            counters: [("x".to_string(), 2)].into_iter().collect(),
            solver: Some(SolverMetrics {
                vars: 9,
                ..Default::default()
            }),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.counters["x"], 3);
        assert_eq!(a.solver.unwrap().vars, 9);
    }

    #[test]
    fn registry_builds_phase_latency_histograms() {
        let reg = MetricsRegistry::new();
        for dur in [10u64, 20, 1000] {
            reg.event(&TraceEvent::Complete {
                name: "replay-run",
                tid: 0,
                ts_us: 0,
                dur_us: dur,
            });
        }
        reg.latency("solve", 5);
        let snap = reg.snapshot();
        let h = &snap.latencies["replay-run"];
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1000);
        assert_eq!(snap.latencies["solve"].count(), 1);
        // Phase records still accumulate alongside.
        assert_eq!(snap.phases.len(), 3);
        let json = snap.to_json().to_json();
        assert!(json.contains("\"latencies\""));
    }

    #[test]
    fn histogram_merge_adds_samples() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(7);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 2108);
        assert_eq!(a.max(), 2000);
        let mut merged_snap = MetricsSnapshot::default();
        merged_snap
            .latencies
            .insert("solve".into(), a.clone());
        let mut other = MetricsSnapshot::default();
        other.latencies.insert("solve".into(), b);
        merged_snap.merge(&other);
        assert_eq!(merged_snap.latencies["solve"].count(), 6);
    }

    fn sample_snapshot(seed: u64) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot {
            record: Some(RecorderMetrics {
                space_longs: seed,
                deps: seed * 2,
                stripe_contention: seed % 3,
                ..Default::default()
            }),
            solver: Some(SolverMetrics {
                vars: seed + 1,
                solve_ns: seed * 100,
                ..Default::default()
            }),
            turbo: seed.is_multiple_of(2).then_some(TurboMetrics {
                components: seed,
                widest_component: seed * 7 % 13,
                workers: 4,
                ..Default::default()
            }),
            replay_run: Some(RunMetrics {
                duration_ns: seed * 1000,
                threads: seed % 5,
                events: seed * 3,
                objects: seed % 7,
            }),
            mem: (seed % 3 != 1).then(|| MemMetrics {
                subsystems: [
                    (
                        "recorder-log".to_string(),
                        MemStat {
                            bytes: seed * 64,
                            peak_bytes: seed * 80 + 1,
                        },
                    ),
                    (
                        format!("sub{}", seed % 2),
                        MemStat {
                            bytes: seed,
                            peak_bytes: seed * 2,
                        },
                    ),
                ]
                .into_iter()
                .collect(),
            }),
            stripe_hist: vec![(seed as u32 % 4, seed), (9, 1)],
            ..Default::default()
        };
        snap.counters.insert("deps".into(), seed);
        snap.counters.insert(format!("k{}", seed % 2), seed + 5);
        let mut h = Histogram::new();
        h.record(seed);
        h.record(seed * 31);
        snap.latencies.insert("solve".into(), h);
        snap
    }

    #[test]
    fn snapshot_json_round_trips_through_parser() {
        for seed in [0u64, 1, 7, 1000] {
            let mut snap = sample_snapshot(seed);
            snap.phases.push(PhaseRecord {
                name: "solve".into(),
                start_us: 5,
                dur_us: 9,
            });
            let json = snap.to_json().to_json();
            let parsed = MetricsSnapshot::from_json(&Value::parse(&json).unwrap());
            assert_eq!(parsed, snap, "roundtrip for seed {seed}");
        }
        // The empty snapshot renders as {} and parses back empty.
        let empty = MetricsSnapshot::default();
        let parsed = MetricsSnapshot::from_json(&Value::parse(&empty.to_json().to_json()).unwrap());
        assert_eq!(parsed, empty);
    }

    #[test]
    fn aggregate_is_associative_and_order_insensitive() {
        let a = sample_snapshot(3);
        let b = sample_snapshot(8);
        let c = sample_snapshot(21);
        assert_eq!(a.aggregate(&b), b.aggregate(&a));
        assert_eq!(a.aggregate(&b).aggregate(&c), a.aggregate(&b.aggregate(&c)));
        assert_eq!(c.aggregate(&a).aggregate(&b), a.aggregate(&b).aggregate(&c));
        // Identity: aggregating with the empty snapshot changes nothing
        // (phases aside, which aggregate always drops).
        let empty = MetricsSnapshot::default();
        assert_eq!(a.aggregate(&empty), a);
    }

    #[test]
    fn aggregate_sums_counters_and_maxes_capacity_fields() {
        let a = sample_snapshot(2);
        let b = sample_snapshot(4);
        let agg = a.aggregate(&b);
        assert_eq!(agg.record.unwrap().deps, 12);
        assert_eq!(agg.counters["deps"], 6);
        let (wa, wb) = (
            a.turbo.unwrap().widest_component,
            b.turbo.unwrap().widest_component,
        );
        assert_eq!(agg.turbo.unwrap().widest_component, wa.max(wb));
        assert_eq!(agg.latencies["solve"].count(), 4);
        assert!(agg.phases.is_empty());
        // A section present on only one side survives untouched.
        let lone = sample_snapshot(3); // odd seed: no turbo
        assert_eq!(lone.aggregate(&a).turbo, a.turbo);
    }

    #[test]
    fn mem_section_is_additive_and_round_trips() {
        // Absent: omitted from JSON, so pre-existing logs parse with
        // `mem: None` and tools can render "n/a".
        let bare = MetricsSnapshot::default();
        assert!(!bare.to_json().to_json().contains("\"mem\""));
        let parsed = MetricsSnapshot::from_json(&Value::parse("{\"record\":{}}").unwrap());
        assert_eq!(parsed.mem, None);
        // Present: key/stat pairs survive the roundtrip.
        let snap = sample_snapshot(2);
        assert!(snap.mem.is_some());
        let json = snap.to_json().to_json();
        assert!(json.contains("\"mem\""));
        assert!(json.contains("\"peak_bytes\""));
        let back = MetricsSnapshot::from_json(&Value::parse(&json).unwrap());
        assert_eq!(back.mem, snap.mem);
    }

    #[test]
    fn aggregate_sums_mem_stats_keywise() {
        let a = sample_snapshot(2);
        let b = sample_snapshot(6);
        let agg = a.aggregate(&b);
        let mem = agg.mem.as_ref().unwrap();
        let (ma, mb) = (a.mem.as_ref().unwrap(), b.mem.as_ref().unwrap());
        assert_eq!(
            mem.subsystems["recorder-log"].bytes,
            ma.subsystems["recorder-log"].bytes + mb.subsystems["recorder-log"].bytes
        );
        assert_eq!(
            mem.subsystems["recorder-log"].peak_bytes,
            ma.subsystems["recorder-log"].peak_bytes + mb.subsystems["recorder-log"].peak_bytes
        );
        // A key present on only one side survives untouched, and the
        // aggregate keeps peak >= bytes whenever the inputs did.
        for (name, stat) in &mem.subsystems {
            assert!(stat.peak_bytes >= stat.bytes, "{name}");
        }
        // A one-sided mem section survives aggregation (seed 7 has none).
        let lone = sample_snapshot(7);
        assert_eq!(lone.mem, None);
        assert_eq!(lone.aggregate(&a).mem, a.mem);
    }

    #[test]
    fn merge_prefers_incoming_mem_section() {
        let mut a = sample_snapshot(2);
        let b = sample_snapshot(6);
        a.merge(&b);
        assert_eq!(a.mem, b.mem);
        // Merging a mem-less snapshot keeps the existing section.
        let mut c = sample_snapshot(2);
        c.merge(&sample_snapshot(7));
        assert_eq!(c.mem, sample_snapshot(2).mem);
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 900, 70000] {
            h.record(v);
        }
        let parsed = Histogram::from_json(&Value::parse(&h.to_json().to_json()).unwrap());
        assert_eq!(parsed, h);
        assert_eq!(
            Histogram::from_json(&Value::parse("{}").unwrap()),
            Histogram::new()
        );
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1000);
        let buckets = h.buckets();
        assert!(buckets.contains(&(0, 0, 1)));
        assert!(buckets.contains(&(1, 1, 2)));
        assert!(buckets.contains(&(2, 3, 2)));
        assert!(buckets.contains(&(4, 7, 2)));
        assert!(buckets.contains(&(512, 1023, 1)));
        let rendered = h.render(20);
        assert!(rendered.contains("512-1023"));
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let h = Histogram::new();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 0);
        }
    }

    #[test]
    fn single_sample_percentile_is_the_sample() {
        let mut h = Histogram::new();
        h.record(37);
        for p in [0.0, 0.01, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(p), 37, "p={p}");
        }
        // ... including a zero sample, which lands in bucket 0.
        let mut z = Histogram::new();
        z.record(0);
        assert_eq!(z.percentile(0.5), 0);
        assert_eq!(z.count(), 1);
    }

    #[test]
    fn top_bucket_saturation_does_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 5);
        h.record(1u64 << 63);
        // buckets() must not shift past the word: the top bucket's hi
        // bound saturates at u64::MAX.
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(1u64 << 63, u64::MAX, 3)]);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.percentile(0.01), u64::MAX);
        // JSON roundtrip keeps the saturated bucket intact.
        let parsed = Histogram::from_json(&Value::parse(&h.to_json().to_json()).unwrap());
        assert_eq!(parsed, h);
    }

    #[test]
    fn percentile_is_monotone_and_bounded_by_samples() {
        let mut h = Histogram::new();
        for v in [3u64, 9, 9, 20, 150, 151, 152, 4000] {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0);
            assert!(p >= last, "percentile not monotone at {i}%");
            assert!(p <= h.max());
            last = p;
        }
        assert_eq!(h.percentile(1.0), h.max());
        // The estimate for the median lands in the median's bucket.
        let p50 = h.percentile(0.5);
        assert!((16..=31).contains(&p50), "median 20 estimates as {p50}");
    }

    #[test]
    fn histogram_merge_is_associative() {
        let build = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (
            build(&[1, 5, 900]),
            build(&[0, 0, 64, u64::MAX]),
            build(&[17]),
        );
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge is commutative too");
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(ab_c.percentile(p), a_bc.percentile(p));
        }
    }
}
