//! Typed metric snapshots unifying the pipeline's scattered stats.
//!
//! Historically the repo had three disconnected stat structs —
//! `RecordStats` (recorder), `SolveStats` (solver), `RunStats`
//! (runtime) — and benches scraped text output to aggregate them. The
//! types here are the unified, serializable superset: each pipeline
//! stage converts its native counters into one of these sections, and a
//! [`MetricsSnapshot`] stitches the sections together with phase
//! timings into a single JSON-exportable document.

use crate::json::Value;
use crate::{Sink, TraceEvent};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Per-run recorder counters (Light's bounded-recording side).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RecorderMetrics {
    /// Log size in 64-bit words (the paper's space unit).
    pub space_longs: u64,
    /// Inter-thread flow-dependence edges recorded.
    pub deps: u64,
    /// Merged access runs recorded (prec/O1).
    pub runs: u64,
    /// Speculative read-matching retries.
    pub retries: u64,
    /// Accesses skipped entirely by the O2 guarded-location optimization.
    pub o2_skipped: u64,
    /// Times a last-write-map stripe lock was contended (the fast-path
    /// `try_lock` failed and the thread had to block).
    pub stripe_contention: u64,
}

/// IDL constraint-solver counters for one `solve` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct SolverMetrics {
    /// Order variables in the constraint system.
    pub vars: u64,
    /// Hard difference constraints asserted up front.
    pub hard_constraints: u64,
    /// Disjunctive (read-matching) clauses.
    pub clauses: u64,
    /// Clause decisions taken.
    pub decisions: u64,
    /// Decisions undone on conflict.
    pub backtracks: u64,
    /// Wall time inside the solver.
    pub solve_ns: u64,
}

/// Controlled-replay scheduler counters for one enforced run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct SchedulerMetrics {
    /// Slots in the enforced total order.
    pub schedule_len: u64,
    /// Admissions where the admitted thread differed from the previous
    /// admitted thread (enforced context switches).
    pub context_switches: u64,
    /// Admissions that had to wait for their turn at least once.
    pub enforcement_stalls: u64,
    /// Total nanoseconds threads spent waiting for their turn.
    pub stall_ns: u64,
    /// Blind writes suppressed during replay.
    pub suppressed_writes: u64,
    /// Events parked past the recorded extent of their thread.
    pub parked: u64,
}

/// Schedule-exploration counters for one `light-explore` campaign
/// (search → first-failure capture → minimization → validation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct ExploreMetrics {
    /// Schedules executed during the search phase.
    pub schedules: u64,
    /// Schedules that surfaced a program bug.
    pub failures: u64,
    /// Delta-debugging probe runs during minimization.
    pub minimize_iterations: u64,
    /// Decision-trace segments of the unminimized repro.
    pub trace_segments: u64,
    /// Decision-trace segments after minimization.
    pub minimized_segments: u64,
    /// Wall time of the whole campaign.
    pub wall_ns: u64,
}

/// Turbo (component-sharded) solver counters for one parallel solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct TurboMetrics {
    /// Independent constraint components (1 = sequential path).
    pub components: u64,
    /// Variable count of the widest component.
    pub widest_component: u64,
    /// Worker threads used for the component pool.
    pub workers: u64,
    /// Components answered from the shared component cache.
    pub cache_hits: u64,
    /// Components solved fresh while a cache was attached.
    pub cache_misses: u64,
    /// Unit clauses promoted to hard constraints by preprocessing.
    pub promoted_units: u64,
    /// Clauses removed by preprocessing (dedup, entailment, subsumption).
    pub dropped_clauses: u64,
}

/// Whole-run runtime counters (either the recorded or the replayed run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct RunMetrics {
    pub duration_ns: u64,
    pub threads: u64,
    pub events: u64,
    pub objects: u64,
}

/// One timed pipeline phase (record, log-persist, constraint-build,
/// solve, replay-run, ...). Times are µs since the obs epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct PhaseRecord {
    pub name: String,
    pub start_us: u64,
    pub dur_us: u64,
}

/// The unified, serializable snapshot of everything the pipeline
/// measured. Sections are optional because a snapshot can describe a
/// record-only run, a replay, or a full pipeline pass.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct MetricsSnapshot {
    pub record: Option<RecorderMetrics>,
    pub record_run: Option<RunMetrics>,
    pub solver: Option<SolverMetrics>,
    /// Component-sharded solve breakdown. Additive: absent for
    /// sequential-only snapshots and omitted from JSON when absent, so
    /// older consumers of the shape are unaffected.
    pub turbo: Option<TurboMetrics>,
    pub scheduler: Option<SchedulerMetrics>,
    pub replay_run: Option<RunMetrics>,
    pub explore: Option<ExploreMetrics>,
    pub phases: Vec<PhaseRecord>,
    /// Free-form named counters fed through the sink API.
    pub counters: BTreeMap<String, u64>,
    /// Per-phase latency distributions in µs (record, solve, replay-run,
    /// ...): histograms rather than single samples, so snapshots that
    /// aggregate many pipeline passes keep the shape of the distribution.
    pub latencies: BTreeMap<String, Histogram>,
    /// Per-stripe breakdown of `record.stripe_contention` as sparse
    /// `(stripe index, contended accesses)` pairs, sorted by index.
    /// Empty when the recorder saw no contention (or predates the
    /// histogram). Additive: serialized only when non-empty, so older
    /// consumers of the JSON shape are unaffected.
    pub stripe_hist: Vec<(u32, u64)>,
}

impl RecorderMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("space_longs", Value::from(self.space_longs)),
            ("deps", Value::from(self.deps)),
            ("runs", Value::from(self.runs)),
            ("retries", Value::from(self.retries)),
            ("o2_skipped", Value::from(self.o2_skipped)),
            ("stripe_contention", Value::from(self.stripe_contention)),
        ])
    }
}

impl SolverMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("vars", Value::from(self.vars)),
            ("hard_constraints", Value::from(self.hard_constraints)),
            ("clauses", Value::from(self.clauses)),
            ("decisions", Value::from(self.decisions)),
            ("backtracks", Value::from(self.backtracks)),
            ("solve_ns", Value::from(self.solve_ns)),
        ])
    }
}

impl TurboMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("components", Value::from(self.components)),
            ("widest_component", Value::from(self.widest_component)),
            ("workers", Value::from(self.workers)),
            ("cache_hits", Value::from(self.cache_hits)),
            ("cache_misses", Value::from(self.cache_misses)),
            ("promoted_units", Value::from(self.promoted_units)),
            ("dropped_clauses", Value::from(self.dropped_clauses)),
        ])
    }
}

impl SchedulerMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("schedule_len", Value::from(self.schedule_len)),
            ("context_switches", Value::from(self.context_switches)),
            ("enforcement_stalls", Value::from(self.enforcement_stalls)),
            ("stall_ns", Value::from(self.stall_ns)),
            ("suppressed_writes", Value::from(self.suppressed_writes)),
            ("parked", Value::from(self.parked)),
        ])
    }
}

impl ExploreMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("schedules", Value::from(self.schedules)),
            ("failures", Value::from(self.failures)),
            ("minimize_iterations", Value::from(self.minimize_iterations)),
            ("trace_segments", Value::from(self.trace_segments)),
            ("minimized_segments", Value::from(self.minimized_segments)),
            ("wall_ns", Value::from(self.wall_ns)),
        ])
    }
}

impl RunMetrics {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("duration_ns", Value::from(self.duration_ns)),
            ("threads", Value::from(self.threads)),
            ("events", Value::from(self.events)),
            ("objects", Value::from(self.objects)),
        ])
    }
}

impl PhaseRecord {
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("name", Value::from(self.name.as_str())),
            ("start_us", Value::from(self.start_us)),
            ("dur_us", Value::from(self.dur_us)),
        ])
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot as a JSON object, omitting absent sections.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = Vec::new();
        if let Some(r) = &self.record {
            pairs.push(("record".into(), r.to_json()));
        }
        if let Some(r) = &self.record_run {
            pairs.push(("record_run".into(), r.to_json()));
        }
        if let Some(s) = &self.solver {
            pairs.push(("solver".into(), s.to_json()));
        }
        if let Some(t) = &self.turbo {
            pairs.push(("turbo".into(), t.to_json()));
        }
        if let Some(s) = &self.scheduler {
            pairs.push(("scheduler".into(), s.to_json()));
        }
        if let Some(r) = &self.replay_run {
            pairs.push(("replay_run".into(), r.to_json()));
        }
        if let Some(e) = &self.explore {
            pairs.push(("explore".into(), e.to_json()));
        }
        if !self.phases.is_empty() {
            pairs.push((
                "phases".into(),
                Value::arr(self.phases.iter().map(PhaseRecord::to_json)),
            ));
        }
        if !self.counters.is_empty() {
            pairs.push((
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.latencies.is_empty() {
            pairs.push((
                "latencies".into(),
                Value::Obj(
                    self.latencies
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ));
        }
        if !self.stripe_hist.is_empty() {
            pairs.push((
                "stripe_hist".into(),
                Value::arr(self.stripe_hist.iter().map(|&(stripe, count)| {
                    Value::obj([
                        ("stripe", Value::from(u64::from(stripe))),
                        ("count", Value::from(count)),
                    ])
                })),
            ));
        }
        Value::Obj(pairs)
    }

    /// Merges another snapshot into this one. Typed sections prefer the
    /// incoming value when present; counters add; phases append.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        if other.record.is_some() {
            self.record = other.record;
        }
        if other.record_run.is_some() {
            self.record_run = other.record_run;
        }
        if other.solver.is_some() {
            self.solver = other.solver;
        }
        if other.turbo.is_some() {
            self.turbo = other.turbo;
        }
        if other.scheduler.is_some() {
            self.scheduler = other.scheduler;
        }
        if other.replay_run.is_some() {
            self.replay_run = other.replay_run;
        }
        if other.explore.is_some() {
            self.explore = other.explore;
        }
        self.phases.extend(other.phases.iter().cloned());
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.latencies {
            self.latencies.entry(k.clone()).or_default().merge(h);
        }
        if !other.stripe_hist.is_empty() {
            let mut merged: BTreeMap<u32, u64> = self.stripe_hist.iter().copied().collect();
            for &(stripe, count) in &other.stripe_hist {
                *merged.entry(stripe).or_insert(0) += count;
            }
            self.stripe_hist = merged.into_iter().collect();
        }
    }
}

/// A live, thread-safe registry that accumulates typed metric sections
/// and — because it is also a [`Sink`] — phase spans and counters fed
/// through the event API. Snapshot at any time with
/// [`MetricsRegistry::snapshot`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&self, name: &str, delta: u64) {
        let mut st = self.inner.lock().unwrap();
        *st.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn set_record(&self, m: RecorderMetrics) {
        self.inner.lock().unwrap().record = Some(m);
    }

    pub fn set_record_run(&self, m: RunMetrics) {
        self.inner.lock().unwrap().record_run = Some(m);
    }

    pub fn set_solver(&self, m: SolverMetrics) {
        self.inner.lock().unwrap().solver = Some(m);
    }

    pub fn set_turbo(&self, m: TurboMetrics) {
        self.inner.lock().unwrap().turbo = Some(m);
    }

    pub fn set_scheduler(&self, m: SchedulerMetrics) {
        self.inner.lock().unwrap().scheduler = Some(m);
    }

    pub fn set_replay_run(&self, m: RunMetrics) {
        self.inner.lock().unwrap().replay_run = Some(m);
    }

    pub fn set_explore(&self, m: ExploreMetrics) {
        self.inner.lock().unwrap().explore = Some(m);
    }

    pub fn phase(&self, name: &str, start_us: u64, dur_us: u64) {
        let mut st = self.inner.lock().unwrap();
        st.phases.push(PhaseRecord {
            name: name.to_string(),
            start_us,
            dur_us,
        });
        st.latencies
            .entry(name.to_string())
            .or_default()
            .record(dur_us);
    }

    /// Records one latency sample (µs) into the named histogram without
    /// adding a phase record.
    pub fn latency(&self, name: &str, dur_us: u64) {
        self.inner
            .lock()
            .unwrap()
            .latencies
            .entry(name.to_string())
            .or_default()
            .record(dur_us);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().unwrap().clone()
    }
}

impl Sink for MetricsRegistry {
    fn event(&self, ev: &TraceEvent) {
        match *ev {
            // Pipeline-lane spans become phase records; program-thread
            // spans (tid > 0) would swamp the phase list, so only lane 0
            // is treated as a pipeline phase.
            TraceEvent::Complete {
                name,
                tid: 0,
                ts_us,
                dur_us,
            } => self.phase(name, ts_us, dur_us),
            TraceEvent::Counter { name, value, .. } => self.add(name, value),
            _ => {}
        }
    }
}

/// A power-of-two-bucketed histogram for small integer distributions
/// (run lengths, clause sizes, stall times).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Histogram {
    /// `counts[b]` counts values v with `bucket(v) == b`; bucket 0 holds
    /// v == 0, bucket b holds 2^(b-1) <= v < 2^b.
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; 65],
            sum: 0,
            max: 0,
        }
    }

    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Non-empty buckets as `(lo, hi, count)` inclusive ranges.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                if b == 0 {
                    (0, 0, c)
                } else {
                    (1u64 << (b - 1), (1u64 << b) - 1, c)
                }
            })
            .collect()
    }

    /// Renders an aligned ASCII bar chart, one line per non-empty bucket.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let buckets = self.buckets();
        let peak = buckets.iter().map(|&(_, _, c)| c).max().unwrap_or(1);
        let mut out = String::new();
        for (lo, hi, c) in buckets {
            let bar = (c as usize * width).div_ceil(peak as usize).min(width);
            let range = if lo == hi {
                format!("{lo}")
            } else {
                format!("{lo}-{hi}")
            };
            let _ = writeln!(out, "  {range:>12} | {:<width$} {c}", "#".repeat(bar));
        }
        out
    }

    pub fn to_json(&self) -> Value {
        Value::obj([
            ("count", Value::from(self.count())),
            ("sum", Value::from(self.sum)),
            ("max", Value::from(self.max)),
            (
                "buckets",
                Value::arr(self.buckets().into_iter().map(|(lo, hi, c)| {
                    Value::obj([
                        ("lo", Value::from(lo)),
                        ("hi", Value::from(hi)),
                        ("count", Value::from(c)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_counters_and_phases() {
        let reg = MetricsRegistry::new();
        reg.add("deps", 3);
        reg.add("deps", 4);
        reg.event(&TraceEvent::Complete {
            name: "solve",
            tid: 0,
            ts_us: 100,
            dur_us: 50,
        });
        // Program-thread spans are not pipeline phases.
        reg.event(&TraceEvent::Complete {
            name: "thread",
            tid: 2,
            ts_us: 0,
            dur_us: 1,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("deps"), Some(&7));
        assert_eq!(snap.phases.len(), 1);
        assert_eq!(snap.phases[0].name, "solve");
    }

    #[test]
    fn snapshot_json_omits_empty_sections() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.to_json().to_json(), "{}");
        let snap = MetricsSnapshot {
            record: Some(RecorderMetrics {
                deps: 2,
                ..Default::default()
            }),
            ..Default::default()
        };
        let json = snap.to_json().to_json();
        assert!(json.contains("\"record\""));
        assert!(!json.contains("\"solver\""));
    }

    #[test]
    fn merge_adds_counters_and_prefers_incoming_sections() {
        let mut a = MetricsSnapshot {
            counters: [("x".to_string(), 1)].into_iter().collect(),
            ..Default::default()
        };
        let b = MetricsSnapshot {
            counters: [("x".to_string(), 2)].into_iter().collect(),
            solver: Some(SolverMetrics {
                vars: 9,
                ..Default::default()
            }),
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.counters["x"], 3);
        assert_eq!(a.solver.unwrap().vars, 9);
    }

    #[test]
    fn registry_builds_phase_latency_histograms() {
        let reg = MetricsRegistry::new();
        for dur in [10u64, 20, 1000] {
            reg.event(&TraceEvent::Complete {
                name: "replay-run",
                tid: 0,
                ts_us: 0,
                dur_us: dur,
            });
        }
        reg.latency("solve", 5);
        let snap = reg.snapshot();
        let h = &snap.latencies["replay-run"];
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1000);
        assert_eq!(snap.latencies["solve"].count(), 1);
        // Phase records still accumulate alongside.
        assert_eq!(snap.phases.len(), 3);
        let json = snap.to_json().to_json();
        assert!(json.contains("\"latencies\""));
    }

    #[test]
    fn histogram_merge_adds_samples() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(7);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 2108);
        assert_eq!(a.max(), 2000);
        let mut merged_snap = MetricsSnapshot::default();
        merged_snap
            .latencies
            .insert("solve".into(), a.clone());
        let mut other = MetricsSnapshot::default();
        other.latencies.insert("solve".into(), b);
        merged_snap.merge(&other);
        assert_eq!(merged_snap.latencies["solve"].count(), 6);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 1000);
        let buckets = h.buckets();
        assert!(buckets.contains(&(0, 0, 1)));
        assert!(buckets.contains(&(1, 1, 2)));
        assert!(buckets.contains(&(2, 3, 2)));
        assert!(buckets.contains(&(4, 7, 2)));
        assert!(buckets.contains(&(512, 1023, 1)));
        let rendered = h.render(20);
        assert!(rendered.contains("512-1023"));
    }
}
