//! Live progress telemetry for long-running campaigns.
//!
//! A schedule-exploration campaign can run for minutes with nothing on
//! the terminal; `ProgressSink` is the push channel that fixes that.
//! The producer (the explorer) samples its counters on a fixed interval
//! and emits [`ProgressRecord`]s; the sink decides the transport —
//! [`JsonlProgress`] streams one JSON object per line (the
//! `light-explore --progress` format), [`CollectingProgress`] buffers
//! them for tests.

use crate::json::Value;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One sampled snapshot of a running campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressRecord {
    /// What is being explored (program or corpus bug name).
    pub target: String,
    /// The active search strategy.
    pub strategy: String,
    /// The campaign phase (`search`, `minimize`, `capture`, `validate`,
    /// `done`).
    pub phase: String,
    /// Wall time since the campaign started.
    pub elapsed_ms: u64,
    /// Schedules executed so far (search plus minimization probes).
    pub schedules: u64,
    /// Throughput over the whole campaign so far.
    pub schedules_per_sec: f64,
    /// Distinct decision traces seen (search-phase diversity).
    pub distinct_traces: u64,
    /// Failing schedules found.
    pub failures: u64,
    /// The campaign's schedule budget.
    pub budget_schedules: u64,
    /// Estimated time to exhaust the schedule budget at the current
    /// rate; `None` before any throughput exists or once done.
    pub eta_ms: Option<u64>,
    /// Causal run id of the campaign (32-hex [`crate::RunId`]), when the
    /// campaign runs under trace context. Additive: rendered only when
    /// present, so pre-existing consumers of the JSONL shape see an
    /// unchanged record, and registry entries become joinable with the
    /// live stream.
    pub run_id: Option<String>,
    /// Free-form detail for out-of-band events (e.g. the
    /// `budget-exceeded` memory-watchdog breakdown). Additive like
    /// `run_id`: rendered only when present.
    pub detail: Option<String>,
}

impl ProgressRecord {
    /// Renders the record as a JSON object (one JSONL line's content).
    pub fn to_json(&self) -> Value {
        let mut v = Value::obj([
            ("target", Value::from(self.target.as_str())),
            ("strategy", Value::from(self.strategy.as_str())),
            ("phase", Value::from(self.phase.as_str())),
            ("elapsed_ms", Value::from(self.elapsed_ms)),
            ("schedules", Value::from(self.schedules)),
            ("schedules_per_sec", Value::F64(self.schedules_per_sec)),
            ("distinct_traces", Value::from(self.distinct_traces)),
            ("failures", Value::from(self.failures)),
            ("budget_schedules", Value::from(self.budget_schedules)),
            (
                "eta_ms",
                match self.eta_ms {
                    Some(ms) => Value::from(ms),
                    None => Value::Null,
                },
            ),
        ]);
        if let (Value::Obj(pairs), Some(run)) = (&mut v, &self.run_id) {
            pairs.push(("run_id".into(), Value::from(run.as_str())));
        }
        if let (Value::Obj(pairs), Some(detail)) = (&mut v, &self.detail) {
            pairs.push(("detail".into(), Value::from(detail.as_str())));
        }
        v
    }
}

/// A consumer of periodic progress records.
pub trait ProgressSink: Send + Sync {
    fn progress(&self, record: &ProgressRecord);
}

/// Streams each record as one JSON line, flushed immediately so a
/// consumer tailing the stream sees records as they happen.
pub struct JsonlProgress<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlProgress<W> {
    pub fn new(out: W) -> Self {
        JsonlProgress {
            out: Mutex::new(out),
        }
    }
}

impl JsonlProgress<std::io::Stderr> {
    /// The `light-explore --progress` transport: JSONL on stderr, so
    /// stdout stays clean for the report.
    pub fn stderr() -> Self {
        JsonlProgress::new(std::io::stderr())
    }
}

impl<W: Write + Send> ProgressSink for JsonlProgress<W> {
    fn progress(&self, record: &ProgressRecord) {
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(out, "{}", record.to_json().to_json());
        let _ = out.flush();
    }
}

/// Buffers every record; for tests.
#[derive(Default)]
pub struct CollectingProgress {
    records: Mutex<Vec<ProgressRecord>>,
}

impl CollectingProgress {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn records(&self) -> Vec<ProgressRecord> {
        self.records.lock().unwrap().clone()
    }
}

impl ProgressSink for CollectingProgress {
    fn progress(&self, record: &ProgressRecord) {
        self.records.lock().unwrap().push(record.clone());
    }
}

/// A cloneable handle bundling an optional sink with the sampling
/// interval — `disabled()` (the default) makes every emission a no-op,
/// mirroring [`crate::Obs`].
#[derive(Clone, Default)]
pub struct Progress {
    sink: Option<Arc<dyn ProgressSink>>,
    interval: Duration,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("enabled", &self.sink.is_some())
            .field("interval", &self.interval)
            .finish()
    }
}

impl Progress {
    /// No sink; `emit` does nothing.
    pub fn disabled() -> Self {
        Progress::default()
    }

    /// Emits to `sink` every `interval` (the producer polls
    /// [`Progress::interval`] to pace itself).
    pub fn new(sink: Arc<dyn ProgressSink>, interval: Duration) -> Self {
        Progress {
            sink: Some(sink),
            interval,
        }
    }

    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    pub fn interval(&self) -> Duration {
        self.interval
    }

    pub fn emit(&self, record: &ProgressRecord) {
        if let Some(sink) = &self.sink {
            sink.progress(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ProgressRecord {
        ProgressRecord {
            target: "counter_race".into(),
            strategy: "pct".into(),
            phase: "search".into(),
            elapsed_ms: 1500,
            schedules: 300,
            schedules_per_sec: 200.0,
            distinct_traces: 120,
            failures: 2,
            budget_schedules: 1000,
            eta_ms: Some(3500),
            run_id: None,
            detail: None,
        }
    }

    #[test]
    fn jsonl_stream_is_one_object_per_line() {
        let sink = JsonlProgress::new(Vec::new());
        sink.progress(&record());
        sink.progress(&ProgressRecord {
            phase: "done".into(),
            eta_ms: None,
            ..record()
        });
        let bytes = sink.out.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"phase\":\"search\""));
        assert!(lines[0].contains("\"eta_ms\":3500"));
        assert!(lines[1].contains("\"eta_ms\":null"));
        // run_id and detail are additive: absent from the shape unless set.
        assert!(!lines[0].contains("run_id"));
        assert!(!lines[0].contains("detail"));
    }

    #[test]
    fn detail_is_rendered_when_present() {
        let rec = ProgressRecord {
            detail: Some("total=9 budget=8".into()),
            ..record()
        };
        let json = rec.to_json().to_json();
        assert!(json.contains("\"detail\":\"total=9 budget=8\""));
    }

    #[test]
    fn run_id_is_rendered_when_present() {
        let rec = ProgressRecord {
            run_id: Some("00000000000000000000000000000abc".into()),
            ..record()
        };
        let json = rec.to_json().to_json();
        assert!(json.contains("\"run_id\":\"00000000000000000000000000000abc\""));
    }

    #[test]
    fn disabled_progress_is_a_noop() {
        let p = Progress::disabled();
        assert!(!p.enabled());
        p.emit(&record()); // must not panic
    }

    #[test]
    fn collecting_sink_buffers_records() {
        let sink = Arc::new(CollectingProgress::new());
        let p = Progress::new(sink.clone(), Duration::from_millis(250));
        assert!(p.enabled());
        assert_eq!(p.interval(), Duration::from_millis(250));
        p.emit(&record());
        assert_eq!(sink.records().len(), 1);
        assert_eq!(sink.records()[0].schedules, 300);
    }
}
