//! The memory-accounting plane: per-subsystem byte gauges with
//! high-water tracking, a process-wide registry, and (feature-gated) a
//! tracking allocator attributing global alloc/dealloc to the scoped
//! subsystem.
//!
//! The paper's headline claim is that recording is *tightly bounded*;
//! everything else in `light-obs` measures time, this module measures
//! bytes. The design mirrors the rest of the crate:
//!
//! - [`BytesGauge`] is the primitive: a lock-free current/peak pair.
//!   `add`/`sub` are single atomic RMW ops; `sub` saturates at zero so a
//!   racing or double-counted release can never drive the gauge
//!   negative, and the peak is a monotone `fetch_max` high-water mark.
//! - [`MemRegistry`] groups gauges by subsystem name and snapshots them
//!   into the [`crate::MemMetrics`] section of a
//!   [`crate::MetricsSnapshot`], so byte numbers flow through the same
//!   JSON/registry/prom surfaces as the time metrics.
//! - Instrumented code holds a cheap [`MemGauge`] handle resolved once
//!   at construction. When accounting is disabled at handle-creation
//!   time the handle is a no-op (one branch per call, the
//!   [`crate::Obs`] pattern) — the E17 bench's "gauges-off" arm.
//! - **Granularity rule:** producers account bytes when *ownership
//!   transfers* (a thread-local buffer merges into a central one, a blob
//!   enters a queue, a cache stores an entry), never per element on a
//!   hot path. Gauges therefore lag instantaneous usage by at most one
//!   transfer boundary; that is the deliberate trade that keeps the
//!   accounting overhead under the E17 criterion.
//! - With the `track-alloc` feature, [`TrackingAlloc`] can be installed
//!   as the global allocator to attribute *every* allocation to the
//!   subsystem named by the innermost [`MemScope`] on the current
//!   thread (deallocations are attributed to the scope current at free
//!   time — an approximation, documented in DESIGN.md).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::{MemMetrics, MemStat};

/// Canonical subsystem names. Instrumented crates use these constants so
/// snapshot keys, prom labels, and dashboard rows agree byte-for-byte.
pub mod subsystem {
    /// Recorder dependence/run/signal/nondet buffers resident in the
    /// recorder (merged thread-local buffers awaiting `take_recording`).
    pub const RECORDER_LOG: &str = "recorder-log";
    /// Last-write map stripe tables (256 striped `FastMap`s).
    pub const LW_MAP: &str = "lw-map";
    /// Constraint-system storage: order variables, hard constraints, and
    /// disjunctive clauses of Equation 1.
    pub const SOLVER_CLAUSES: &str = "solver-clauses";
    /// The turbo solver's shared component cache entries.
    pub const SOLVER_CACHE: &str = "solver-cache";
    /// Recording blobs sitting in the `light-serve` job queue.
    pub const SERVE_QUEUE: &str = "serve-queue";
    /// Recording blobs popped by a worker and still being processed.
    pub const SERVE_INFLIGHT: &str = "serve-inflight";
    /// Content-addressed blob bytes written to a registry (monotone:
    /// registries only grow; dedup hits add nothing).
    pub const REGISTRY_BLOBS: &str = "registry-blobs";
    /// Interpreter-thread allocations (stacks, arrays, objects). Only
    /// populated by the `track-alloc` allocator — the default build
    /// scopes executor threads but nothing observes the scope.
    pub const RUNTIME_EXEC: &str = "runtime-exec";
}

/// A lock-free byte gauge: current resident bytes plus the monotone
/// high-water mark.
#[derive(Debug, Default)]
pub struct BytesGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl BytesGauge {
    pub const fn new() -> Self {
        BytesGauge {
            current: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Adds `n` bytes and advances the high-water mark.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let now = self.current.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Releases `n` bytes, saturating at zero: a release racing (or
    /// mismatched with) its acquire can never drive the gauge negative.
    pub fn sub(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut cur = self.current.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .current
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Sets the current value outright (for gauges that re-measure a
    /// structure rather than tracking deltas) and advances the peak.
    pub fn set(&self, n: u64) {
        self.current.store(n, Ordering::Relaxed);
        self.peak.fetch_max(n, Ordering::Relaxed);
    }

    /// Current resident bytes.
    pub fn bytes(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The monotone high-water mark: the largest value `bytes()` has
    /// held. Always `>=` the current value.
    pub fn peak_bytes(&self) -> u64 {
        // The peak is updated after the add that raised current; close
        // the momentary gap at read time so the invariant holds for
        // every observer.
        self.peak
            .load(Ordering::Relaxed)
            .max(self.current.load(Ordering::Relaxed))
    }

    fn stat(&self) -> MemStat {
        // Read peak second (and clamp) so `peak >= bytes` holds even
        // against concurrent adds between the two loads.
        let bytes = self.bytes();
        MemStat {
            bytes,
            peak_bytes: self.peak_bytes().max(bytes),
        }
    }
}

/// A cheap cloneable handle to one subsystem's gauge; a no-op when the
/// registry had accounting disabled at handle-creation time (one branch
/// per call, mirroring [`crate::Obs`]).
#[derive(Debug, Clone, Default)]
pub struct MemGauge(Option<Arc<BytesGauge>>);

impl MemGauge {
    /// A handle that ignores every operation.
    pub fn disabled() -> Self {
        MemGauge(None)
    }

    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    pub fn add(&self, n: u64) {
        if let Some(g) = &self.0 {
            g.add(n);
        }
    }

    pub fn sub(&self, n: u64) {
        if let Some(g) = &self.0 {
            g.sub(n);
        }
    }

    pub fn set(&self, n: u64) {
        if let Some(g) = &self.0 {
            g.set(n);
        }
    }

    /// Current bytes; 0 when disabled.
    pub fn bytes(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.bytes())
    }

    /// High-water mark; 0 when disabled.
    pub fn peak_bytes(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.peak_bytes())
    }
}

/// A named collection of [`BytesGauge`]s — the per-process memory plane.
///
/// The gauge map is behind a mutex, but the mutex is touched only at
/// handle resolution and snapshot time; every `add`/`sub` goes straight
/// to the gauge's atomics.
#[derive(Debug)]
pub struct MemRegistry {
    enabled: AtomicBool,
    gauges: Mutex<BTreeMap<String, Arc<BytesGauge>>>,
}

impl Default for MemRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MemRegistry {
    /// An enabled, empty registry.
    pub const fn new() -> Self {
        MemRegistry {
            enabled: AtomicBool::new(true),
            gauges: Mutex::new(BTreeMap::new()),
        }
    }

    /// Turns accounting on or off. The switch affects *handle creation*:
    /// a [`MemGauge`] resolved while disabled stays a no-op for its
    /// lifetime (the zero-overhead "gauges-off" arm of E17), and one
    /// resolved while enabled keeps counting.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The shared gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<BytesGauge> {
        let mut gauges = self.gauges.lock().unwrap();
        if let Some(g) = gauges.get(name) {
            return g.clone();
        }
        let g = Arc::new(BytesGauge::new());
        gauges.insert(name.to_string(), g.clone());
        g
    }

    /// A [`MemGauge`] handle for `name`: live when the registry is
    /// enabled, a no-op otherwise.
    pub fn handle(&self, name: &str) -> MemGauge {
        if self.enabled() {
            MemGauge(Some(self.gauge(name)))
        } else {
            MemGauge::disabled()
        }
    }

    /// Snapshots every registered gauge into the snapshot section.
    pub fn snapshot(&self) -> MemMetrics {
        let gauges = self.gauges.lock().unwrap();
        MemMetrics {
            subsystems: gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.stat()))
                .collect(),
        }
    }

    /// Sum of current bytes across all subsystems (the budget watchdog's
    /// comparison value).
    pub fn total_bytes(&self) -> u64 {
        let gauges = self.gauges.lock().unwrap();
        gauges.values().map(|g| g.bytes()).fold(0, u64::saturating_add)
    }

    /// Drops every gauge (benches isolating rounds; tests).
    pub fn reset(&self) {
        self.gauges.lock().unwrap().clear();
    }
}

/// The process-wide registry instrumented crates account into.
pub fn global() -> &'static MemRegistry {
    static GLOBAL: MemRegistry = MemRegistry::new();
    &GLOBAL
}

/// Shorthand for `global().handle(name)` — the one-liner instrumented
/// constructors call.
pub fn handle(name: &str) -> MemGauge {
    global().handle(name)
}

// ---------------------------------------------------------------------
// Scope stack: attributes tracked allocations to a subsystem.
// ---------------------------------------------------------------------

thread_local! {
    /// The innermost scope name; empty = unscoped. Nested [`MemScope`]
    /// guards form the stack by each holding the name they replaced —
    /// no heap allocation, so the tracking allocator can read it safely.
    static SCOPE: Cell<&'static str> = const { Cell::new("") };
}

/// RAII guard scoping the current thread's allocations to a subsystem
/// (used by the `track-alloc` feature's [`TrackingAlloc`]; without the
/// feature, entering a scope is a two-word thread-local swap and nothing
/// observes it).
///
/// ```
/// let _scope = light_obs::mem::MemScope::enter("solver");
/// // allocations on this thread now attribute to "solver"
/// ```
#[must_use = "the scope ends when the guard drops"]
pub struct MemScope {
    prev: &'static str,
}

impl MemScope {
    /// Pushes `name` as the thread's current attribution scope.
    pub fn enter(name: &'static str) -> MemScope {
        let prev = SCOPE.with(|s| s.replace(name));
        MemScope { prev }
    }

    /// The innermost scope name on this thread, or `""` when unscoped.
    pub fn current() -> &'static str {
        SCOPE.try_with(|s| s.get()).unwrap_or("")
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        let _ = SCOPE.try_with(|s| s.set(self.prev));
    }
}

// ---------------------------------------------------------------------
// track-alloc: a global allocator attributing to the scope stack.
// ---------------------------------------------------------------------

#[cfg(feature = "track-alloc")]
mod track {
    use super::*;
    use std::alloc::{GlobalAlloc, Layout, System};

    thread_local! {
        /// Reentrancy guard: accounting may itself allocate (first
        /// resolution of a scope's gauge); those internal allocations
        /// must pass through untracked or the allocator would recurse.
        static IN_TRACKER: Cell<bool> = const { Cell::new(false) };
        /// One-entry cache of the last scope's resolved gauge, keyed by
        /// the scope string's address (scopes are `&'static str`), so
        /// steady-state accounting is two atomics and no map lookup.
        static CACHED: Cell<(usize, usize)> = const { Cell::new((0, 0)) };
    }

    /// A [`GlobalAlloc`] wrapper attributing every allocation to the
    /// gauge named by the thread's innermost [`MemScope`] (unscoped
    /// allocations go to `"unscoped"`). Install it in a binary with:
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: light_obs::mem::TrackingAlloc = light_obs::mem::TrackingAlloc::system();
    /// ```
    ///
    /// Deallocations are attributed to the scope current at *free* time,
    /// not allocation time — per-pointer tags would need a side table
    /// costing more than the bytes they account. [`BytesGauge::sub`]
    /// saturates, so cross-scope frees skew attribution between
    /// subsystems but can never make a gauge negative.
    pub struct TrackingAlloc<A: GlobalAlloc = System> {
        inner: A,
    }

    impl TrackingAlloc<System> {
        /// Tracks on top of the system allocator.
        pub const fn system() -> Self {
            TrackingAlloc { inner: System }
        }
    }

    impl<A: GlobalAlloc> TrackingAlloc<A> {
        pub const fn new(inner: A) -> Self {
            TrackingAlloc { inner }
        }
    }

    fn scope_gauge() -> Option<Arc<BytesGauge>> {
        let name = {
            let n = MemScope::current();
            if n.is_empty() {
                "unscoped"
            } else {
                n
            }
        };
        let key = name.as_ptr() as usize;
        if let Ok((cached_key, cached_ptr)) = CACHED.try_with(Cell::get) {
            if cached_key == key && cached_ptr != 0 {
                // Reconstruct the Arc without consuming the cached ref.
                let g = unsafe { Arc::from_raw(cached_ptr as *const BytesGauge) };
                let out = g.clone();
                std::mem::forget(g);
                return Some(out);
            }
        }
        let g = global().gauge(name);
        // Cache one strong reference; deliberately leaked for the thread's
        // lifetime (bounded: one per distinct scope transition target).
        let raw = Arc::into_raw(g.clone()) as usize;
        if let Ok(prev) = CACHED.try_with(|c| c.replace((key, raw))) {
            if prev.1 != 0 {
                unsafe { drop(Arc::from_raw(prev.1 as *const BytesGauge)) };
            }
        }
        Some(g)
    }

    fn account(n: usize, grow: bool) {
        if !global().enabled() {
            return;
        }
        let Ok(reentrant) = IN_TRACKER.try_with(|f| f.replace(true)) else {
            return; // thread teardown: TLS gone, skip attribution
        };
        if reentrant {
            return;
        }
        if let Some(g) = scope_gauge() {
            if grow {
                g.add(n as u64);
            } else {
                g.sub(n as u64);
            }
        }
        let _ = IN_TRACKER.try_with(|f| f.set(false));
    }

    unsafe impl<A: GlobalAlloc> GlobalAlloc for TrackingAlloc<A> {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = self.inner.alloc(layout);
            if !p.is_null() {
                account(layout.size(), true);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            self.inner.dealloc(ptr, layout);
            account(layout.size(), false);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = self.inner.realloc(ptr, layout, new_size);
            if !p.is_null() {
                if new_size >= layout.size() {
                    account(new_size - layout.size(), true);
                } else {
                    account(layout.size() - new_size, false);
                }
            }
            p
        }
    }
}

#[cfg(feature = "track-alloc")]
pub use track::TrackingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_current_and_peak() {
        let g = BytesGauge::new();
        g.add(100);
        g.add(50);
        assert_eq!(g.bytes(), 150);
        assert_eq!(g.peak_bytes(), 150);
        g.sub(120);
        assert_eq!(g.bytes(), 30);
        assert_eq!(g.peak_bytes(), 150, "peak is monotone");
        g.add(10);
        assert_eq!(g.peak_bytes(), 150, "below the high-water mark");
    }

    #[test]
    fn gauge_sub_saturates_at_zero() {
        let g = BytesGauge::new();
        g.add(5);
        g.sub(500);
        assert_eq!(g.bytes(), 0);
        g.sub(1);
        assert_eq!(g.bytes(), 0);
        assert_eq!(g.peak_bytes(), 5);
    }

    #[test]
    fn gauge_set_remeasures_and_advances_peak() {
        let g = BytesGauge::new();
        g.set(400);
        g.set(100);
        assert_eq!(g.bytes(), 100);
        assert_eq!(g.peak_bytes(), 400);
    }

    #[test]
    fn concurrent_add_sub_never_goes_negative_and_peak_dominates() {
        let g = Arc::new(BytesGauge::new());
        const THREADS: usize = 8;
        const OPS: usize = 20_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        let n = ((t * OPS + i) % 97) as u64 + 1;
                        g.add(n);
                        // Every release pairs with a completed acquire, so
                        // the global current can never dip below zero —
                        // and the saturating sub guards the gauge even if
                        // a caller ever mismatched.
                        g.sub(n);
                        assert!(g.peak_bytes() >= g.bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.bytes(), 0, "matched add/sub drains to zero");
        assert!(g.peak_bytes() >= 1);
        assert!(g.peak_bytes() <= (THREADS as u64) * 97, "peak bounded by worst overlap");
    }

    #[test]
    fn high_water_is_at_least_final_value() {
        let g = Arc::new(BytesGauge::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = g.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        g.add(i % 13 + 1);
                        if i % 3 == 0 {
                            g.sub(2);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(g.peak_bytes() >= g.bytes());
    }

    #[test]
    fn registry_hands_out_shared_gauges_and_snapshots() {
        let reg = MemRegistry::new();
        let a = reg.handle("solver-clauses");
        let b = reg.handle("solver-clauses");
        a.add(64);
        b.add(36);
        b.sub(10);
        assert_eq!(a.bytes(), 90, "handles share one gauge");
        let snap = reg.snapshot();
        let stat = &snap.subsystems["solver-clauses"];
        assert_eq!(stat.bytes, 90);
        assert_eq!(stat.peak_bytes, 100);
        assert_eq!(reg.total_bytes(), 90);
    }

    #[test]
    fn disabled_registry_hands_out_noop_handles() {
        let reg = MemRegistry::new();
        reg.set_enabled(false);
        let h = reg.handle("recorder-log");
        assert!(!h.enabled());
        h.add(1 << 30);
        assert_eq!(h.bytes(), 0);
        assert!(reg.snapshot().subsystems.is_empty());
        // Re-enabling affects new handles, not the no-op one.
        reg.set_enabled(true);
        let live = reg.handle("recorder-log");
        live.add(7);
        h.add(1);
        assert_eq!(reg.snapshot().subsystems["recorder-log"].bytes, 7);
    }

    #[test]
    fn snapshot_peak_always_dominates_bytes() {
        let reg = MemRegistry::new();
        for (name, n) in [("a", 10u64), ("b", 500), ("c", 0)] {
            let h = reg.handle(name);
            h.add(n);
            h.sub(n / 2);
        }
        for stat in reg.snapshot().subsystems.values() {
            assert!(stat.peak_bytes >= stat.bytes);
        }
    }

    #[test]
    fn scope_stack_nests_and_restores() {
        assert_eq!(MemScope::current(), "");
        {
            let _outer = MemScope::enter("solver");
            assert_eq!(MemScope::current(), "solver");
            {
                let _inner = MemScope::enter("solver-cache");
                assert_eq!(MemScope::current(), "solver-cache");
            }
            assert_eq!(MemScope::current(), "solver", "inner pop restores outer");
        }
        assert_eq!(MemScope::current(), "");
    }

    #[test]
    fn scopes_are_per_thread() {
        let _outer = MemScope::enter("serve-queue");
        std::thread::spawn(|| {
            assert_eq!(MemScope::current(), "", "scopes do not leak across threads");
            let _s = MemScope::enter("recorder-log");
            assert_eq!(MemScope::current(), "recorder-log");
        })
        .join()
        .unwrap();
        assert_eq!(MemScope::current(), "serve-queue");
    }

    #[cfg(feature = "track-alloc")]
    #[test]
    fn tracking_allocator_attributes_to_the_current_scope() {
        use std::alloc::{GlobalAlloc, Layout, System};
        // Exercise the wrapper directly (installing a #[global_allocator]
        // in a unit test would affect the whole test binary).
        let alloc = TrackingAlloc::new(System);
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before = global().gauge("solver").bytes();
        let p = {
            let _scope = MemScope::enter("solver");
            unsafe { alloc.alloc(layout) }
        };
        assert!(!p.is_null());
        let after_alloc = global().gauge("solver").bytes();
        assert!(after_alloc >= before + 4096);
        {
            let _scope = MemScope::enter("solver");
            unsafe { alloc.dealloc(p, layout) };
        }
        assert!(global().gauge("solver").bytes() <= after_alloc - 4096);
        assert!(global().gauge("solver").peak_bytes() >= before + 4096);
    }
}
