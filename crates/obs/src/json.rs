//! A minimal self-contained JSON value and writer.
//!
//! The observability layer must serialize metric snapshots and Chrome
//! trace events without pulling a JSON crate into every pipeline crate,
//! so this module hand-rolls the small subset we need: construction,
//! escaping, and compact/pretty printing. The optional `serde` feature
//! additionally derives `Serialize` on the typed metric structs for
//! integration with external consumers; this writer is the built-in,
//! always-available path.

use std::fmt::{self, Write as _};

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object (key order is meaningful for humans
    /// reading `light-inspect --json` output).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the u64 payload if this is an integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the string payload if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric payload as f64 for any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering for human consumption.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let v = Value::obj([
            ("name", Value::from("a\"b\\c\nd")),
            ("n", Value::from(42u64)),
            ("xs", Value::arr([Value::from(1u64), Value::Null])),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"name":"a\"b\\c\nd","n":42,"xs":[1,null]}"#
        );
    }

    #[test]
    fn pretty_is_indented_and_reparseable_by_eye() {
        let v = Value::obj([("a", Value::arr([Value::from(1u64)]))]);
        assert_eq!(v.to_json_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn get_and_as_u64() {
        let v = Value::obj([("k", Value::from(7u64))]);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn control_chars_become_unicode_escapes() {
        assert_eq!(Value::from("\u{1}").to_json(), "\"\\u0001\"");
    }
}
