//! A minimal self-contained JSON value and writer.
//!
//! The observability layer must serialize metric snapshots and Chrome
//! trace events without pulling a JSON crate into every pipeline crate,
//! so this module hand-rolls the small subset we need: construction,
//! escaping, and compact/pretty printing. The optional `serde` feature
//! additionally derives `Serialize` on the typed metric structs for
//! integration with external consumers; this writer is the built-in,
//! always-available path.

use std::fmt::{self, Write as _};

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered object (key order is meaningful for humans
    /// reading `light-inspect --json` output).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the u64 payload if this is an integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the string payload if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric payload as f64 for any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the bool payload if this is a boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the items if this is an array value.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the `(key, value)` pairs if this is an object value.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses a JSON document. The inverse of [`Value::to_json`]: it
    /// accepts anything this module writes (plus arbitrary whitespace
    /// and `\uXXXX` escapes, including surrogate pairs), which is what
    /// the registry needs to read back its own JSONL index. Trailing
    /// non-whitespace after the document is an error.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering for human consumption.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Value::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: a message plus the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub msg: &'static str,
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parser depth limit; the registry only ever nests a handful of
/// levels, so this guards against stack overflow on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':' after object key")?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads four hex digits and advances past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or_else(|| self.err("truncated unicode escape"))?;
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let v = Value::obj([
            ("name", Value::from("a\"b\\c\nd")),
            ("n", Value::from(42u64)),
            ("xs", Value::arr([Value::from(1u64), Value::Null])),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"name":"a\"b\\c\nd","n":42,"xs":[1,null]}"#
        );
    }

    #[test]
    fn pretty_is_indented_and_reparseable_by_eye() {
        let v = Value::obj([("a", Value::arr([Value::from(1u64)]))]);
        assert_eq!(v.to_json_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn get_and_as_u64() {
        let v = Value::obj([("k", Value::from(7u64))]);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn control_chars_become_unicode_escapes() {
        assert_eq!(Value::from("\u{1}").to_json(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Value::obj([
            ("name", Value::from("a\"b\\c\nd\u{1}")),
            ("n", Value::from(42u64)),
            ("neg", Value::from(-7i64)),
            ("f", Value::from(1.5f64)),
            ("ok", Value::from(true)),
            ("gone", Value::Null),
            ("xs", Value::arr([Value::from(1u64), Value::Null])),
            ("empty_obj", Value::obj::<String>([])),
            ("empty_arr", Value::arr([])),
        ]);
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
        assert_eq!(Value::parse(&v.to_json_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_handles_unicode_escapes_and_surrogates() {
        assert_eq!(
            Value::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap(),
            Value::from("Aé😀")
        );
    }

    #[test]
    fn parse_numbers_pick_narrowest_variant() {
        assert_eq!(Value::parse("18446744073709551615").unwrap(), Value::U64(u64::MAX));
        assert_eq!(Value::parse("-3").unwrap(), Value::I64(-3));
        assert_eq!(Value::parse("2.5e2").unwrap(), Value::F64(250.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("nul").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("{}extra").is_err());
        assert!(Value::parse(r#""\ud800x""#).is_err());
    }
}
