//! `light-watch` — query and gate the persistent run registry.
//!
//! ```text
//! light-watch ingest --registry runs/ --program p --kind bench \
//!     --headline solver_speedup=3.1 --file run.lrec
//! light-watch query --registry runs/ --status diverged --json
//! light-watch trend solver_speedup --registry runs/
//! light-watch trend --backpressure --registry runs/
//! light-watch regress solver_speedup --registry runs/ --baseline 5 --threshold 20
//! light-watch prom --registry runs/
//! ```
//!
//! The registry directory comes from `--registry` or the
//! `LIGHT_REGISTRY` environment variable. Exit codes: `0` success (for
//! `regress`: no regression), `4` regression detected, `1` usage or
//! I/O errors.

use light_obs::json::Value;
use light_telemetry::{
    prom, regress, trend, Query, Registry, RunKind, RunRecord, RunStatus, REGISTRY_ENV,
};
use std::process::ExitCode;

const USAGE: &str = "\
usage: light-watch <command> [options]

commands:
  ingest    register a run in the registry
  query     list matching runs
  trend     print a metric's time series
  regress   gate the newest run against a rolling baseline
  prom      Prometheus text exposition of registry aggregates

common options:
  --registry <dir>     registry directory (default: $LIGHT_REGISTRY)
  --program <name>     filter / set the program name
  --kind <k>           record|replay|doctor|explore|profile|inspect|bench|serve
  --status <s>         ok|diverged|failed|unknown
  --bug <signature>    filter / set the bug signature
  --run-id <hex>       filter / set the 32-hex causal run id
  --since-ms <n>       only runs at or after this Unix-ms timestamp
  --until-ms <n>       only runs at or before this Unix-ms timestamp

ingest options:
  --file <path>        recording blob to store content-addressed
  --metrics-json <p>   MetricsSnapshot JSON file to embed ('-' = stdin)
  --headline k=v       numeric headline metric (repeatable)
  --wall-ms <n>        end-to-end wall time of the run
  --provenance <s>     free-form provenance note
  --ts-ms <n>          override the ingest timestamp (default: now)

query options:
  --json               one JSON object per line instead of a table

trend options (trend <metric>):
  --latest             print only the newest value (machine-readable)
  --aggregate          also print the cross-run aggregated snapshot JSON
  --backpressure       serve backpressure table instead of a metric:
                       queue depth at enqueue and queue-wait medians
                       per daemon lifetime (no <metric> argument)
  --memory             per-run memory table instead of a metric: total
                       and peak bytes across subsystems; records from
                       before the memory plane render n/a
  --record-overhead    recorder scaling table instead of a metric:
                       E18 overhead growth, lo/hi overheads, and
                       events/sec; records predating E18 render n/a

regress options (regress <metric>):
  --baseline <k>       rolling baseline window           (default 5)
  --threshold <pct>    fail on > pct%% change for the worse (default 20)
  --higher-is-better   force direction (default: inferred from name)
  --lower-is-better    force direction";

struct Cli {
    command: String,
    metric: Option<String>,
    registry: Option<String>,
    program: Option<String>,
    kind: Option<RunKind>,
    status: Option<RunStatus>,
    bug: Option<String>,
    run_id: Option<String>,
    since_ms: Option<u64>,
    until_ms: Option<u64>,
    file: Option<String>,
    metrics_json: Option<String>,
    headline: Vec<(String, f64)>,
    wall_ms: Option<u64>,
    provenance: Option<String>,
    ts_ms: Option<u64>,
    json: bool,
    latest: bool,
    aggregate: bool,
    backpressure: bool,
    memory: bool,
    record_overhead: bool,
    baseline: usize,
    threshold: f64,
    direction: Option<regress::Direction>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut it = std::env::args().skip(1);
    let command = match it.next() {
        Some(c) if !c.starts_with('-') => c,
        Some(c) if c == "--help" || c == "-h" => {
            println!("{USAGE}");
            std::process::exit(0);
        }
        _ => return Err("missing command".into()),
    };
    let mut cli = Cli {
        command,
        metric: None,
        registry: None,
        program: None,
        kind: None,
        status: None,
        bug: None,
        run_id: None,
        since_ms: None,
        until_ms: None,
        file: None,
        metrics_json: None,
        headline: Vec::new(),
        wall_ms: None,
        provenance: None,
        ts_ms: None,
        json: false,
        latest: false,
        aggregate: false,
        backpressure: false,
        memory: false,
        record_overhead: false,
        baseline: 5,
        threshold: 20.0,
        direction: None,
    };
    let next_val = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--registry" => cli.registry = Some(next_val(&mut it, "--registry")?),
            "--program" => cli.program = Some(next_val(&mut it, "--program")?),
            "--kind" => {
                let raw = next_val(&mut it, "--kind")?;
                cli.kind = Some(RunKind::parse(&raw).ok_or(format!("unknown kind {raw:?}"))?);
            }
            "--status" => {
                let raw = next_val(&mut it, "--status")?;
                cli.status = Some(RunStatus::parse(&raw).ok_or(format!("unknown status {raw:?}"))?);
            }
            "--bug" => cli.bug = Some(next_val(&mut it, "--bug")?),
            "--run-id" => cli.run_id = Some(next_val(&mut it, "--run-id")?),
            "--since-ms" => {
                cli.since_ms = Some(parse_num(&next_val(&mut it, "--since-ms")?, "--since-ms")?)
            }
            "--until-ms" => {
                cli.until_ms = Some(parse_num(&next_val(&mut it, "--until-ms")?, "--until-ms")?)
            }
            "--file" => cli.file = Some(next_val(&mut it, "--file")?),
            "--metrics-json" => cli.metrics_json = Some(next_val(&mut it, "--metrics-json")?),
            "--headline" => {
                let raw = next_val(&mut it, "--headline")?;
                let (k, v) = raw
                    .split_once('=')
                    .ok_or(format!("--headline wants k=v, got {raw:?}"))?;
                let v: f64 = v.parse().map_err(|e| format!("--headline {k}: {e}"))?;
                cli.headline.push((k.to_string(), v));
            }
            "--wall-ms" => {
                cli.wall_ms = Some(parse_num(&next_val(&mut it, "--wall-ms")?, "--wall-ms")?)
            }
            "--provenance" => cli.provenance = Some(next_val(&mut it, "--provenance")?),
            "--ts-ms" => cli.ts_ms = Some(parse_num(&next_val(&mut it, "--ts-ms")?, "--ts-ms")?),
            "--json" => cli.json = true,
            "--latest" => cli.latest = true,
            "--aggregate" => cli.aggregate = true,
            "--backpressure" => cli.backpressure = true,
            "--memory" => cli.memory = true,
            "--record-overhead" => cli.record_overhead = true,
            "--baseline" => {
                cli.baseline = next_val(&mut it, "--baseline")?
                    .parse()
                    .map_err(|e| format!("--baseline: {e}"))?;
            }
            "--threshold" => {
                cli.threshold = next_val(&mut it, "--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--higher-is-better" => cli.direction = Some(regress::Direction::HigherIsBetter),
            "--lower-is-better" => cli.direction = Some(regress::Direction::LowerIsBetter),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if !other.starts_with('-') && cli.metric.is_none() => {
                cli.metric = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    Ok(cli)
}

fn parse_num(raw: &str, flag: &str) -> Result<u64, String> {
    raw.parse().map_err(|e| format!("{flag}: {e}"))
}

fn open_registry(cli: &Cli) -> Result<Registry, String> {
    let root = match &cli.registry {
        Some(r) => r.clone(),
        None => match std::env::var(REGISTRY_ENV) {
            Ok(r) if !r.is_empty() => r,
            _ => return Err(format!("no registry: pass --registry or set {REGISTRY_ENV}")),
        },
    };
    Registry::open(root).map_err(|e| e.to_string())
}

fn cmd_ingest(cli: &Cli) -> Result<(), String> {
    let registry = open_registry(cli)?;
    let program = cli.program.clone().ok_or("ingest needs --program")?;
    let kind = cli.kind.ok_or("ingest needs --kind")?;
    let mut rec = RunRecord::new(program, kind, cli.status.unwrap_or(RunStatus::Unknown));
    rec.run_id = cli.run_id.clone();
    rec.bug_signature = cli.bug.clone();
    rec.provenance = cli.provenance.clone();
    rec.wall_ms = cli.wall_ms;
    rec.ts_ms = cli.ts_ms.unwrap_or(0);
    rec.headline = cli.headline.iter().cloned().collect();
    if let Some(path) = &cli.metrics_json {
        let text = if path == "-" {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("stdin: {e}"))?;
            buf
        } else {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        };
        let parsed =
            Value::parse(text.trim()).map_err(|e| format!("--metrics-json {path}: {e}"))?;
        rec.metrics = Some(light_obs::MetricsSnapshot::from_json(&parsed));
    }
    let blob = match &cli.file {
        Some(path) => {
            Some(std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None => None,
    };
    let stored = registry
        .ingest(rec, blob.as_deref())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "light-watch: ingested {} {} run of {:?}{}",
        stored.kind.as_str(),
        stored.status.as_str(),
        stored.program,
        match &stored.blob_hash {
            Some(h) => format!(" (blob {})", &h[..12]),
            None => String::new(),
        },
    );
    Ok(())
}

fn query_from(cli: &Cli) -> Query {
    Query {
        program: cli.program.clone(),
        kind: cli.kind,
        status: cli.status,
        bug_signature: cli.bug.clone(),
        run_id: cli.run_id.clone(),
        since_ms: cli.since_ms,
        until_ms: cli.until_ms,
    }
}

fn cmd_query(cli: &Cli) -> Result<(), String> {
    let registry = open_registry(cli)?;
    let (mut records, stats) = registry.load_with_stats().map_err(|e| e.to_string())?;
    if stats.skipped > 0 {
        eprintln!(
            "light-watch: warning: skipped {} of {} index lines (torn or foreign); \
             counts below under-report the registry",
            stats.skipped, stats.lines,
        );
    }
    let query = query_from(cli);
    records.retain(|r| query.matches(r));
    if cli.json {
        for r in &records {
            println!("{}", r.to_json().to_json());
        }
        return Ok(());
    }
    println!(
        "{:>14}  {:<8}  {:<8}  {:<20}  {:<12}  run_id",
        "ts_ms", "kind", "status", "program", "blob"
    );
    for r in &records {
        println!(
            "{:>14}  {:<8}  {:<8}  {:<20}  {:<12}  {}",
            r.ts_ms,
            r.kind.as_str(),
            r.status.as_str(),
            r.program,
            r.blob_hash.as_deref().map(|h| &h[..12]).unwrap_or("-"),
            r.run_id.as_deref().unwrap_or("-"),
        );
    }
    println!("{} runs", records.len());
    Ok(())
}

fn cmd_trend(cli: &Cli) -> Result<(), String> {
    let registry = open_registry(cli)?;
    let records = registry.query(&query_from(cli)).map_err(|e| e.to_string())?;
    if cli.backpressure {
        print!("{}", trend::render_backpressure(&records));
        return Ok(());
    }
    if cli.memory {
        print!("{}", trend::render_memory(&records));
        return Ok(());
    }
    if cli.record_overhead {
        print!("{}", trend::render_record_overhead(&records));
        return Ok(());
    }
    let metric = cli.metric.clone().ok_or("trend needs a metric name")?;
    let points = trend::series(&records, &metric);
    if cli.latest {
        match points.last() {
            Some(p) => println!("{}", p.value),
            None => return Err(format!("no data points for {metric}")),
        }
        return Ok(());
    }
    print!("{}", trend::render(&metric, &points));
    if cli.aggregate {
        println!("{}", trend::aggregate_snapshots(&records).to_json().to_json());
    }
    Ok(())
}

fn cmd_regress(cli: &Cli) -> Result<bool, String> {
    let metric = cli.metric.clone().ok_or("regress needs a metric name")?;
    let registry = open_registry(cli)?;
    let records = registry.query(&query_from(cli)).map_err(|e| e.to_string())?;
    let points = trend::series(&records, &metric);
    let direction = cli
        .direction
        .unwrap_or_else(|| regress::Direction::infer(&metric));
    let verdict = regress::check(
        &metric,
        &points,
        cli.baseline,
        cli.threshold / 100.0,
        direction,
    )
    .map_err(|e| format!("{metric}: {e}"))?;
    println!("{}", verdict.render());
    Ok(verdict.regressed)
}

fn cmd_prom(cli: &Cli) -> Result<(), String> {
    let registry = open_registry(cli)?;
    let records = registry.load().map_err(|e| e.to_string())?;
    print!("{}", prom::render(&records));
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("light-watch: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cli.command.as_str() {
        "ingest" => cmd_ingest(&cli).map(|()| false),
        "query" => cmd_query(&cli).map(|()| false),
        "trend" => cmd_trend(&cli).map(|()| false),
        "regress" => cmd_regress(&cli),
        "prom" => cmd_prom(&cli).map(|()| false),
        other => {
            eprintln!("light-watch: unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(4),
        Err(e) => {
            eprintln!("light-watch: {e}");
            ExitCode::FAILURE
        }
    }
}
