//! Prometheus text exposition of registry aggregates, for a future
//! light-serve `/metrics` endpoint (and usable today via
//! `light-watch prom`).

use crate::record::RunRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders registry aggregates in the Prometheus text exposition
/// format (version 0.0.4): run counts by kind/status, diverged totals,
/// blob storage footprint, and the latest value of every headline
/// metric per program.
pub fn render(records: &[RunRecord]) -> String {
    let mut out = String::new();

    let mut by_kind_status: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut diverged = 0u64;
    let mut blob_bytes = 0u64;
    let mut blobs = 0u64;
    // (metric, program) -> (ts, value): keep the newest.
    let mut latest: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for r in records {
        *by_kind_status
            .entry((r.kind.as_str().into(), r.status.as_str().into()))
            .or_insert(0) += 1;
        if r.status == crate::record::RunStatus::Diverged {
            diverged += 1;
        }
        if let Some(b) = r.blob_bytes {
            blob_bytes += b;
            blobs += 1;
        }
        for (name, value) in &r.headline {
            let slot = latest
                .entry((name.clone(), r.program.clone()))
                .or_insert((0, 0.0));
            if r.ts_ms >= slot.0 {
                *slot = (r.ts_ms, *value);
            }
        }
    }

    out.push_str("# HELP light_runs_total Registered pipeline runs.\n");
    out.push_str("# TYPE light_runs_total counter\n");
    for ((kind, status), n) in &by_kind_status {
        let _ = writeln!(
            out,
            "light_runs_total{{kind=\"{kind}\",status=\"{status}\"}} {n}"
        );
    }

    out.push_str("# HELP light_diverged_runs_total Runs that diverged from their recording.\n");
    out.push_str("# TYPE light_diverged_runs_total counter\n");
    let _ = writeln!(out, "light_diverged_runs_total {diverged}");

    out.push_str("# HELP light_registry_blobs Recording blobs referenced by the index.\n");
    out.push_str("# TYPE light_registry_blobs gauge\n");
    let _ = writeln!(out, "light_registry_blobs {blobs}");
    out.push_str("# HELP light_registry_blob_bytes Total referenced blob bytes.\n");
    out.push_str("# TYPE light_registry_blob_bytes gauge\n");
    let _ = writeln!(out, "light_registry_blob_bytes {blob_bytes}");

    if !latest.is_empty() {
        out.push_str("# HELP light_headline Latest value of each headline metric.\n");
        out.push_str("# TYPE light_headline gauge\n");
        for ((metric, program), (_, value)) in &latest {
            let _ = writeln!(
                out,
                "light_headline{{metric=\"{}\",program=\"{}\"}} {value}",
                escape_label(metric),
                escape_label(program),
            );
        }
    }
    out
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunStatus};

    #[test]
    fn exposition_counts_and_latest_headlines() {
        let mut a = RunRecord::new("p", RunKind::Replay, RunStatus::Ok);
        a.ts_ms = 10;
        a.blob_bytes = Some(100);
        a.headline.insert("solver_speedup".into(), 2.0);
        let mut b = RunRecord::new("p", RunKind::Replay, RunStatus::Diverged);
        b.ts_ms = 20;
        b.headline.insert("solver_speedup".into(), 3.0);
        let text = render(&[a, b]);
        assert!(text.contains("light_runs_total{kind=\"replay\",status=\"ok\"} 1"));
        assert!(text.contains("light_runs_total{kind=\"replay\",status=\"diverged\"} 1"));
        assert!(text.contains("light_diverged_runs_total 1"));
        assert!(text.contains("light_registry_blob_bytes 100"));
        // Latest (ts 20) wins.
        assert!(text.contains("light_headline{metric=\"solver_speedup\",program=\"p\"} 3"));
    }

    #[test]
    fn empty_registry_renders_zeroes() {
        let text = render(&[]);
        assert!(text.contains("light_diverged_runs_total 0"));
        assert!(!text.contains("light_headline{"));
    }
}
