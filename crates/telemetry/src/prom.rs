//! Prometheus text exposition, two surfaces sharing one namespace:
//! [`render`] folds *registry* records (`light-watch prom`), and
//! [`render_live`] exposes a running daemon's live
//! [`MetricsSnapshot`] (`light-serve metrics --prom`, pollable at
//! scrape rate without stopping the daemon). The `light_serve_*`
//! counters use identical metric names on both surfaces, so a
//! dashboard built against the live scrape keeps working over
//! post-hoc registry data. The memory plane's per-subsystem byte
//! gauges render as `light_serve_mem_bytes{subsystem}` /
//! `light_serve_mem_peak_bytes{subsystem}` — live values from the
//! daemon's [`light_obs::mem`] registry, folded (keywise-summed, the
//! snapshot aggregate law) across Serve summary records on the
//! registry surface.

use crate::record::RunRecord;
use light_obs::{Histogram, MemMetrics, MetricsSnapshot, ServeMetrics};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends the `light_serve_*` counter/gauge families for one
/// [`ServeMetrics`] section — the shared block that keeps [`render`]
/// and [`render_live`] agreeing on metric names.
fn write_serve_metrics(out: &mut String, serve: &ServeMetrics) {
    let counters: [(&str, &str, u64); 6] = [
        ("submissions", "Recordings submitted", serve.submissions),
        ("dedup_hits", "Submissions answered by dedup", serve.dedup_hits),
        ("jobs_ok", "Jobs replayed without divergence", serve.jobs_ok),
        ("jobs_diverged", "Jobs that diverged on replay", serve.jobs_diverged),
        ("jobs_failed", "Jobs that failed outright", serve.jobs_failed),
        ("ingest_failed", "Job records the registry rejected", serve.ingest_failed),
    ];
    for (name, help, value) in counters {
        let _ = writeln!(out, "# HELP light_serve_{name}_total {help}.");
        let _ = writeln!(out, "# TYPE light_serve_{name}_total counter");
        let _ = writeln!(out, "light_serve_{name}_total {value}");
    }
    out.push_str("# HELP light_serve_queue_peak Deepest job queue observed.\n");
    out.push_str("# TYPE light_serve_queue_peak gauge\n");
    let _ = writeln!(out, "light_serve_queue_peak {}", serve.queue_peak);
    out.push_str("# HELP light_serve_workers Job worker threads.\n");
    out.push_str("# TYPE light_serve_workers gauge\n");
    let _ = writeln!(out, "light_serve_workers {}", serve.workers);
}

/// Appends the memory-plane gauge families for one [`MemMetrics`]
/// section — shared by [`render`] and [`render_live`] so the
/// `light_serve_mem_*` names agree on both surfaces. Skipped entirely
/// when the section is empty: absent names over lying zeros.
fn write_mem_metrics(out: &mut String, mem: &MemMetrics) {
    if mem.subsystems.is_empty() {
        return;
    }
    out.push_str("# HELP light_serve_mem_bytes Resident bytes per memory-plane subsystem.\n");
    out.push_str("# TYPE light_serve_mem_bytes gauge\n");
    for (name, stat) in &mem.subsystems {
        let _ = writeln!(
            out,
            "light_serve_mem_bytes{{subsystem=\"{}\"}} {}",
            escape_label(name),
            stat.bytes
        );
    }
    out.push_str(
        "# HELP light_serve_mem_peak_bytes High-water mark of resident bytes per subsystem.\n",
    );
    out.push_str("# TYPE light_serve_mem_peak_bytes gauge\n");
    for (name, stat) in &mem.subsystems {
        let _ = writeln!(
            out,
            "light_serve_mem_peak_bytes{{subsystem=\"{}\"}} {}",
            escape_label(name),
            stat.peak_bytes
        );
    }
}

/// Renders registry aggregates in the Prometheus text exposition
/// format (version 0.0.4): run counts by kind/status, diverged totals,
/// blob storage footprint, and the latest value of every headline
/// metric per program.
pub fn render(records: &[RunRecord]) -> String {
    let mut out = String::new();

    let mut by_kind_status: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut diverged = 0u64;
    let mut blob_bytes = 0u64;
    let mut blobs = 0u64;
    let mut serve: Option<ServeMetrics> = None;
    let mut mem: Option<MemMetrics> = None;
    // (metric, program) -> (ts, value): keep the newest.
    let mut latest: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for r in records {
        if let Some(m) = r.metrics.as_ref().and_then(|m| m.mem.as_ref()) {
            mem = Some(match mem.take() {
                Some(acc) => acc.combine(m),
                None => m.clone(),
            });
        }
        if let Some(s) = r.metrics.as_ref().and_then(|m| m.serve) {
            let acc = serve.get_or_insert_with(ServeMetrics::default);
            acc.submissions += s.submissions;
            acc.dedup_hits += s.dedup_hits;
            acc.jobs_ok += s.jobs_ok;
            acc.jobs_diverged += s.jobs_diverged;
            acc.jobs_failed += s.jobs_failed;
            acc.ingest_failed += s.ingest_failed;
            acc.queue_peak = acc.queue_peak.max(s.queue_peak);
            acc.workers = acc.workers.max(s.workers);
        }
        *by_kind_status
            .entry((r.kind.as_str().into(), r.status.as_str().into()))
            .or_insert(0) += 1;
        if r.status == crate::record::RunStatus::Diverged {
            diverged += 1;
        }
        if let Some(b) = r.blob_bytes {
            blob_bytes += b;
            blobs += 1;
        }
        for (name, value) in &r.headline {
            let slot = latest
                .entry((name.clone(), r.program.clone()))
                .or_insert((0, 0.0));
            if r.ts_ms >= slot.0 {
                *slot = (r.ts_ms, *value);
            }
        }
    }

    out.push_str("# HELP light_runs_total Registered pipeline runs.\n");
    out.push_str("# TYPE light_runs_total counter\n");
    for ((kind, status), n) in &by_kind_status {
        let _ = writeln!(
            out,
            "light_runs_total{{kind=\"{kind}\",status=\"{status}\"}} {n}"
        );
    }

    out.push_str("# HELP light_diverged_runs_total Runs that diverged from their recording.\n");
    out.push_str("# TYPE light_diverged_runs_total counter\n");
    let _ = writeln!(out, "light_diverged_runs_total {diverged}");

    out.push_str("# HELP light_registry_blobs Recording blobs referenced by the index.\n");
    out.push_str("# TYPE light_registry_blobs gauge\n");
    let _ = writeln!(out, "light_registry_blobs {blobs}");
    out.push_str("# HELP light_registry_blob_bytes Total referenced blob bytes.\n");
    out.push_str("# TYPE light_registry_blob_bytes gauge\n");
    let _ = writeln!(out, "light_registry_blob_bytes {blob_bytes}");

    if let Some(serve) = &serve {
        write_serve_metrics(&mut out, serve);
    }
    if let Some(mem) = &mem {
        write_mem_metrics(&mut out, mem);
    }

    if !latest.is_empty() {
        out.push_str("# HELP light_headline Latest value of each headline metric.\n");
        out.push_str("# TYPE light_headline gauge\n");
        for ((metric, program), (_, value)) in &latest {
            let _ = writeln!(
                out,
                "light_headline{{metric=\"{}\",program=\"{}\"}} {value}",
                escape_label(metric),
                escape_label(program),
            );
        }
    }
    out
}

/// Renders a live daemon [`MetricsSnapshot`] — the `Metrics` wire op's
/// payload — in the Prometheus text exposition format: the
/// `light_serve_*` counters (same names as [`render`]) plus one summary
/// family per stage latency histogram with p50/p95/p99 quantiles,
/// count, and sum. Pollable at scrape rate; one snapshot, no registry
/// I/O.
pub fn render_live(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    write_serve_metrics(&mut out, &snapshot.serve.unwrap_or_default());
    if let Some(mem) = &snapshot.mem {
        write_mem_metrics(&mut out, mem);
    }
    if !snapshot.latencies.is_empty() {
        out.push_str(
            "# HELP light_serve_stage_latency_us Per-stage job pipeline latency in microseconds.\n",
        );
        out.push_str("# TYPE light_serve_stage_latency_us summary\n");
        for (stage, h) in &snapshot.latencies {
            let stage = escape_label(stage);
            for (q, p) in [(0.5, h.percentile(0.5)), (0.95, h.percentile(0.95)), (0.99, h.percentile(0.99))] {
                let _ = writeln!(
                    out,
                    "light_serve_stage_latency_us{{stage=\"{stage}\",quantile=\"{q}\"}} {p}"
                );
            }
            let _ = writeln!(out, "light_serve_stage_latency_us_sum{{stage=\"{stage}\"}} {}", h.sum());
            let _ = writeln!(out, "light_serve_stage_latency_us_count{{stage=\"{stage}\"}} {}", h.count());
        }
    }
    out
}

/// Renders one histogram's summary line for terminal display:
/// `count  p50  p95  p99  max` in µs — the row format `light-serve
/// metrics` and `top` share.
pub fn stage_row(name: &str, h: &Histogram) -> String {
    format!(
        "{name:>16}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}",
        h.count(),
        h.percentile(0.5),
        h.percentile(0.95),
        h.percentile(0.99),
        h.max(),
    )
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double quote, and newline must be escaped, in that order
/// (program names are user-controlled, so a hostile name must not be
/// able to break out of the label or inject extra sample lines).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunStatus};

    #[test]
    fn exposition_counts_and_latest_headlines() {
        let mut a = RunRecord::new("p", RunKind::Replay, RunStatus::Ok);
        a.ts_ms = 10;
        a.blob_bytes = Some(100);
        a.headline.insert("solver_speedup".into(), 2.0);
        let mut b = RunRecord::new("p", RunKind::Replay, RunStatus::Diverged);
        b.ts_ms = 20;
        b.headline.insert("solver_speedup".into(), 3.0);
        let text = render(&[a, b]);
        assert!(text.contains("light_runs_total{kind=\"replay\",status=\"ok\"} 1"));
        assert!(text.contains("light_runs_total{kind=\"replay\",status=\"diverged\"} 1"));
        assert!(text.contains("light_diverged_runs_total 1"));
        assert!(text.contains("light_registry_blob_bytes 100"));
        // Latest (ts 20) wins.
        assert!(text.contains("light_headline{metric=\"solver_speedup\",program=\"p\"} 3"));
    }

    #[test]
    fn hostile_program_names_cannot_break_label_syntax() {
        // A program name with every character the exposition format
        // treats specially: backslash, quote, and a newline that would
        // otherwise split the sample across two lines.
        let mut r = RunRecord::new("evil\\name\"} 1\nfake_metric 2", RunKind::Bench, RunStatus::Ok);
        r.ts_ms = 5;
        r.headline.insert("solver_speedup".into(), 1.0);
        let text = render(&[r]);
        assert!(text.contains(
            "light_headline{metric=\"solver_speedup\",\
             program=\"evil\\\\name\\\"} 1\\nfake_metric 2\"} 1"
        ));
        // The raw newline must never survive into the exposition: no
        // line may start with the injected fake metric.
        assert!(!text.lines().any(|l| l.starts_with("fake_metric")));
        // Every non-comment line still parses as `name{...} value` on
        // one line: exactly one closing brace-space separator.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(!line.is_empty());
            assert!(line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn empty_registry_renders_zeroes() {
        let text = render(&[]);
        assert!(text.contains("light_diverged_runs_total 0"));
        assert!(!text.contains("light_headline{"));
        // No Serve records, no serve family: names stay absent rather
        // than lying with zeros about a service that never ran.
        assert!(!text.contains("light_serve_submissions_total"));
    }

    #[test]
    fn registry_and_live_expositions_agree_on_serve_names() {
        let serve = ServeMetrics {
            submissions: 100,
            dedup_hits: 87,
            jobs_ok: 12,
            jobs_diverged: 1,
            jobs_failed: 0,
            ingest_failed: 2,
            queue_peak: 9,
            workers: 4,
        };
        let mem = MemMetrics {
            subsystems: [
                (
                    "serve-queue".to_string(),
                    light_obs::MemStat {
                        bytes: 4096,
                        peak_bytes: 8192,
                    },
                ),
                (
                    "recorder-log".to_string(),
                    light_obs::MemStat {
                        bytes: 77,
                        peak_bytes: 99,
                    },
                ),
            ]
            .into_iter()
            .collect(),
        };
        let mut rec = RunRecord::new("light-serve", RunKind::Serve, RunStatus::Ok);
        rec.metrics = Some(MetricsSnapshot {
            serve: Some(serve),
            mem: Some(mem.clone()),
            ..Default::default()
        });
        let registry_text = render(&[rec]);
        let live_text = render_live(&MetricsSnapshot {
            serve: Some(serve),
            mem: Some(mem),
            ..Default::default()
        });
        for (name, value) in [
            ("light_serve_submissions_total", 100),
            ("light_serve_dedup_hits_total", 87),
            ("light_serve_jobs_ok_total", 12),
            ("light_serve_jobs_diverged_total", 1),
            ("light_serve_jobs_failed_total", 0),
            ("light_serve_ingest_failed_total", 2),
            ("light_serve_queue_peak", 9),
            ("light_serve_workers", 4),
        ] {
            let sample = format!("{name} {value}");
            assert!(registry_text.contains(&sample), "registry missing {sample}");
            assert!(live_text.contains(&sample), "live missing {sample}");
            assert!(registry_text.contains(&format!("# TYPE {name}")), "{name} untyped");
            assert!(registry_text.contains(&format!("# HELP {name}")), "{name} unhelped");
        }
        // Memory-plane gauges: same labelled samples on both surfaces,
        // HELP/TYPE present for each family.
        for sample in [
            "light_serve_mem_bytes{subsystem=\"serve-queue\"} 4096",
            "light_serve_mem_peak_bytes{subsystem=\"serve-queue\"} 8192",
            "light_serve_mem_bytes{subsystem=\"recorder-log\"} 77",
            "light_serve_mem_peak_bytes{subsystem=\"recorder-log\"} 99",
        ] {
            assert!(registry_text.contains(sample), "registry missing {sample}");
            assert!(live_text.contains(sample), "live missing {sample}");
        }
        for name in ["light_serve_mem_bytes", "light_serve_mem_peak_bytes"] {
            for text in [&registry_text, &live_text] {
                assert!(text.contains(&format!("# TYPE {name} gauge")), "{name} untyped");
                assert!(text.contains(&format!("# HELP {name}")), "{name} unhelped");
            }
        }
        // Records predating the memory plane contribute no mem family.
        let old = render_live(&MetricsSnapshot::default());
        assert!(!old.contains("light_serve_mem_bytes"));
    }

    #[test]
    fn live_exposition_renders_stage_quantiles() {
        let mut snap = MetricsSnapshot::default();
        let mut h = Histogram::new();
        for v in [10u64, 20, 900, 901, 902] {
            h.record(v);
        }
        snap.latencies.insert("queue-wait".into(), h.clone());
        let text = render_live(&snap);
        assert!(text.contains("# TYPE light_serve_stage_latency_us summary"));
        assert!(text.contains(&format!(
            "light_serve_stage_latency_us{{stage=\"queue-wait\",quantile=\"0.5\"}} {}",
            h.percentile(0.5)
        )));
        assert!(text.contains("light_serve_stage_latency_us_count{stage=\"queue-wait\"} 5"));
        assert!(text.contains(&format!(
            "light_serve_stage_latency_us_sum{{stage=\"queue-wait\"}} {}",
            h.sum()
        )));
        // No latencies recorded yet: counters still render, quantiles don't.
        let empty = render_live(&MetricsSnapshot::default());
        assert!(empty.contains("light_serve_submissions_total 0"));
        assert!(!empty.contains("stage_latency"));
    }
}
