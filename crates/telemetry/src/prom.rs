//! Prometheus text exposition of registry aggregates, for a future
//! light-serve `/metrics` endpoint (and usable today via
//! `light-watch prom`).

use crate::record::RunRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders registry aggregates in the Prometheus text exposition
/// format (version 0.0.4): run counts by kind/status, diverged totals,
/// blob storage footprint, and the latest value of every headline
/// metric per program.
pub fn render(records: &[RunRecord]) -> String {
    let mut out = String::new();

    let mut by_kind_status: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut diverged = 0u64;
    let mut blob_bytes = 0u64;
    let mut blobs = 0u64;
    // (metric, program) -> (ts, value): keep the newest.
    let mut latest: BTreeMap<(String, String), (u64, f64)> = BTreeMap::new();
    for r in records {
        *by_kind_status
            .entry((r.kind.as_str().into(), r.status.as_str().into()))
            .or_insert(0) += 1;
        if r.status == crate::record::RunStatus::Diverged {
            diverged += 1;
        }
        if let Some(b) = r.blob_bytes {
            blob_bytes += b;
            blobs += 1;
        }
        for (name, value) in &r.headline {
            let slot = latest
                .entry((name.clone(), r.program.clone()))
                .or_insert((0, 0.0));
            if r.ts_ms >= slot.0 {
                *slot = (r.ts_ms, *value);
            }
        }
    }

    out.push_str("# HELP light_runs_total Registered pipeline runs.\n");
    out.push_str("# TYPE light_runs_total counter\n");
    for ((kind, status), n) in &by_kind_status {
        let _ = writeln!(
            out,
            "light_runs_total{{kind=\"{kind}\",status=\"{status}\"}} {n}"
        );
    }

    out.push_str("# HELP light_diverged_runs_total Runs that diverged from their recording.\n");
    out.push_str("# TYPE light_diverged_runs_total counter\n");
    let _ = writeln!(out, "light_diverged_runs_total {diverged}");

    out.push_str("# HELP light_registry_blobs Recording blobs referenced by the index.\n");
    out.push_str("# TYPE light_registry_blobs gauge\n");
    let _ = writeln!(out, "light_registry_blobs {blobs}");
    out.push_str("# HELP light_registry_blob_bytes Total referenced blob bytes.\n");
    out.push_str("# TYPE light_registry_blob_bytes gauge\n");
    let _ = writeln!(out, "light_registry_blob_bytes {blob_bytes}");

    if !latest.is_empty() {
        out.push_str("# HELP light_headline Latest value of each headline metric.\n");
        out.push_str("# TYPE light_headline gauge\n");
        for ((metric, program), (_, value)) in &latest {
            let _ = writeln!(
                out,
                "light_headline{{metric=\"{}\",program=\"{}\"}} {value}",
                escape_label(metric),
                escape_label(program),
            );
        }
    }
    out
}

/// Escapes a label value per the Prometheus text exposition rules:
/// backslash, double quote, and newline must be escaped, in that order
/// (program names are user-controlled, so a hostile name must not be
/// able to break out of the label or inject extra sample lines).
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunStatus};

    #[test]
    fn exposition_counts_and_latest_headlines() {
        let mut a = RunRecord::new("p", RunKind::Replay, RunStatus::Ok);
        a.ts_ms = 10;
        a.blob_bytes = Some(100);
        a.headline.insert("solver_speedup".into(), 2.0);
        let mut b = RunRecord::new("p", RunKind::Replay, RunStatus::Diverged);
        b.ts_ms = 20;
        b.headline.insert("solver_speedup".into(), 3.0);
        let text = render(&[a, b]);
        assert!(text.contains("light_runs_total{kind=\"replay\",status=\"ok\"} 1"));
        assert!(text.contains("light_runs_total{kind=\"replay\",status=\"diverged\"} 1"));
        assert!(text.contains("light_diverged_runs_total 1"));
        assert!(text.contains("light_registry_blob_bytes 100"));
        // Latest (ts 20) wins.
        assert!(text.contains("light_headline{metric=\"solver_speedup\",program=\"p\"} 3"));
    }

    #[test]
    fn hostile_program_names_cannot_break_label_syntax() {
        // A program name with every character the exposition format
        // treats specially: backslash, quote, and a newline that would
        // otherwise split the sample across two lines.
        let mut r = RunRecord::new("evil\\name\"} 1\nfake_metric 2", RunKind::Bench, RunStatus::Ok);
        r.ts_ms = 5;
        r.headline.insert("solver_speedup".into(), 1.0);
        let text = render(&[r]);
        assert!(text.contains(
            "light_headline{metric=\"solver_speedup\",\
             program=\"evil\\\\name\\\"} 1\\nfake_metric 2\"} 1"
        ));
        // The raw newline must never survive into the exposition: no
        // line may start with the injected fake metric.
        assert!(!text.lines().any(|l| l.starts_with("fake_metric")));
        // Every non-comment line still parses as `name{...} value` on
        // one line: exactly one closing brace-space separator.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(!line.is_empty());
            assert!(line.rsplit(' ').next().unwrap().parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn empty_registry_renders_zeroes() {
        let text = render(&[]);
        assert!(text.contains("light_diverged_runs_total 0"));
        assert!(!text.contains("light_headline{"));
    }
}
