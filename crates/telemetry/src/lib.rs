//! # light-telemetry — cross-run observability for the Light pipeline
//!
//! PRs 1–5 made a *single* run observable; this crate observes the
//! system *across* runs. It provides:
//!
//! 1. **A persistent run registry** ([`Registry`]): a content-addressed
//!    on-disk store — recording bytes live under `blobs/<sha256>`, one
//!    sidecar [`RunRecord`] per run (program, provenance,
//!    [`light_obs::MetricsSnapshot`], divergence status, bug signature,
//!    wall-clock timings) appends to a JSONL index — plus a typed
//!    [`Query`] API over program / kind / status / bug signature / time
//!    range.
//!
//! 2. **Causal joins.** Registry entries carry the
//!    [`light_obs::RunId`] minted when a pipeline invocation starts, so
//!    an entry is joinable with the Chrome trace, the flight recording,
//!    and the live progress JSONL of the same invocation.
//!
//! 3. **Trend and regression analysis** ([`trend`], [`regress`]): any
//!    snapshot or headline metric becomes a time series; the newest
//!    point is gated against a rolling baseline of the previous K runs
//!    (`light-watch regress`, the CI gate).
//!
//! 4. **Prometheus exposition**: [`prom::render`] over registry
//!    aggregates (`light-watch prom`) and [`prom::render_live`] over a
//!    live daemon snapshot (`light-serve metrics --prom`), emitting the
//!    same metric names for the counters both surfaces share.
//!
//! 5. **The serve event log** ([`events`]): the reader and Chrome-trace
//!    stitch for the per-job `light-serve/events/v1` JSONL the daemon
//!    appends next to the index.
//!
//! Every Light CLI auto-ingests into the registry named by the
//! `LIGHT_REGISTRY` environment variable (see [`auto_ingest`]); with
//! the variable unset the telemetry layer costs nothing and touches
//! nothing — recordings are byte-identical either way.
//!
//! ```
//! use light_telemetry::{Query, Registry, RunKind, RunRecord, RunStatus};
//!
//! let dir = std::env::temp_dir().join(format!("lt-doc-{}", std::process::id()));
//! let registry = Registry::open(&dir).unwrap();
//! let mut rec = RunRecord::new("counter_race", RunKind::Replay, RunStatus::Ok);
//! rec.headline.insert("solver_speedup".into(), 3.0);
//! registry.ingest(rec, Some(b"recording bytes")).unwrap();
//! let hits = registry.query(&Query { program: Some("counter_race".into()), ..Default::default() }).unwrap();
//! assert_eq!(hits.len(), 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod events;
pub mod hash;
pub mod prom;
pub mod query;
pub mod record;
pub mod registry;
pub mod regress;
pub mod trend;

pub use events::{chrome_trace, events_path, read_events, JobEvent, EVENTS_FILE, EVENTS_SCHEMA};
pub use hash::{sha256, sha256_hex};
pub use query::Query;
pub use record::{RunKind, RunRecord, RunStatus, SCHEMA};
pub use registry::{auto_ingest, IndexStats, Registry, RegistryError, REGISTRY_ENV};
pub use regress::{check as regress_check, Direction, RegressError, Verdict};
pub use trend::{aggregate_snapshots, render_backpressure, series, TrendPoint};
