//! Typed filters over registry records.

use crate::record::{RunKind, RunRecord, RunStatus};

/// A conjunctive filter: every set field must match. The default query
/// matches everything.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Query {
    pub program: Option<String>,
    pub kind: Option<RunKind>,
    pub status: Option<RunStatus>,
    pub bug_signature: Option<String>,
    pub run_id: Option<String>,
    /// Inclusive lower bound on `ts_ms`.
    pub since_ms: Option<u64>,
    /// Inclusive upper bound on `ts_ms`.
    pub until_ms: Option<u64>,
}

impl Query {
    pub fn matches(&self, rec: &RunRecord) -> bool {
        if let Some(p) = &self.program {
            if &rec.program != p {
                return false;
            }
        }
        if let Some(k) = self.kind {
            if rec.kind != k {
                return false;
            }
        }
        if let Some(s) = self.status {
            if rec.status != s {
                return false;
            }
        }
        if let Some(sig) = &self.bug_signature {
            if rec.bug_signature.as_deref() != Some(sig.as_str()) {
                return false;
            }
        }
        if let Some(id) = &self.run_id {
            if rec.run_id.as_deref() != Some(id.as_str()) {
                return false;
            }
        }
        if let Some(since) = self.since_ms {
            if rec.ts_ms < since {
                return false;
            }
        }
        if let Some(until) = self.until_ms {
            if rec.ts_ms > until {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(program: &str, kind: RunKind, status: RunStatus, ts: u64) -> RunRecord {
        let mut r = RunRecord::new(program, kind, status);
        r.ts_ms = ts;
        r
    }

    #[test]
    fn default_matches_everything() {
        let q = Query::default();
        assert!(q.matches(&rec("a", RunKind::Record, RunStatus::Ok, 1)));
        assert!(q.matches(&rec("b", RunKind::Bench, RunStatus::Failed, 0)));
    }

    #[test]
    fn fields_filter_conjunctively() {
        let q = Query {
            program: Some("a".into()),
            status: Some(RunStatus::Diverged),
            since_ms: Some(10),
            until_ms: Some(20),
            ..Default::default()
        };
        assert!(q.matches(&rec("a", RunKind::Doctor, RunStatus::Diverged, 15)));
        assert!(!q.matches(&rec("b", RunKind::Doctor, RunStatus::Diverged, 15)));
        assert!(!q.matches(&rec("a", RunKind::Doctor, RunStatus::Ok, 15)));
        assert!(!q.matches(&rec("a", RunKind::Doctor, RunStatus::Diverged, 9)));
        assert!(!q.matches(&rec("a", RunKind::Doctor, RunStatus::Diverged, 21)));
    }

    #[test]
    fn bug_signature_and_run_id_require_presence() {
        let q = Query {
            bug_signature: Some("deadlock".into()),
            ..Default::default()
        };
        let mut with = rec("a", RunKind::Explore, RunStatus::Failed, 1);
        with.bug_signature = Some("deadlock".into());
        assert!(q.matches(&with));
        assert!(!q.matches(&rec("a", RunKind::Explore, RunStatus::Failed, 1)));
    }
}
