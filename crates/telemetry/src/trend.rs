//! Metric time series over registry records.

use crate::record::{RunKind, RunRecord};
use light_obs::MetricsSnapshot;
use std::fmt::Write as _;

/// One point of a metric's trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    pub ts_ms: u64,
    pub value: f64,
    pub run_id: Option<String>,
}

/// Extracts `metric`'s time series from `records`, sorted by timestamp
/// (ties keep ingest order). Records without the metric are skipped.
pub fn series(records: &[RunRecord], metric: &str) -> Vec<TrendPoint> {
    let mut points: Vec<TrendPoint> = records
        .iter()
        .filter_map(|r| {
            Some(TrendPoint {
                ts_ms: r.ts_ms,
                value: r.metric(metric)?,
                run_id: r.run_id.clone(),
            })
        })
        .collect();
    points.sort_by_key(|p| p.ts_ms);
    points
}

/// Folds every snapshot in `records` into one cross-run aggregate via
/// [`MetricsSnapshot::aggregate`] (associative and order-insensitive,
/// so any subset folds to the same answer regardless of iteration
/// order).
pub fn aggregate_snapshots(records: &[RunRecord]) -> MetricsSnapshot {
    records
        .iter()
        .filter_map(|r| r.metrics.as_ref())
        .fold(MetricsSnapshot::default(), |acc, m| acc.aggregate(m))
}

/// Renders a series as an aligned table with a unicode spark bar per
/// point, newest last.
pub fn render(metric: &str, points: &[TrendPoint]) -> String {
    let mut out = String::new();
    if points.is_empty() {
        let _ = writeln!(out, "{metric}: no data points");
        return out;
    }
    let (min, max) = points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), p| {
        (lo.min(p.value), hi.max(p.value))
    });
    let _ = writeln!(
        out,
        "{metric}: {} points, min {min:.6}, max {max:.6}",
        points.len()
    );
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    for p in points {
        let frac = if max > min {
            (p.value - min) / (max - min)
        } else {
            1.0
        };
        let bar = BARS[((frac * 7.0).round() as usize).min(7)];
        let run = p.run_id.as_deref().unwrap_or("-");
        let _ = writeln!(out, "  {:>14}  {bar}  {:<14.6}  {run}", p.ts_ms, p.value);
    }
    out
}

/// Renders the serve backpressure table: one row per daemon summary
/// record (a [`RunKind::Serve`] record carrying the `serve` metrics
/// section), oldest first, with the median queue depth at enqueue and
/// the median/p99 queue wait from the summary's stage histograms.
/// Records ingested before the daemon logged those histograms (pre-PR-8
/// lifetimes) render "n/a" instead of being dropped — the row still
/// shows the lifetime ran.
pub fn render_backpressure(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let mut rows: Vec<&RunRecord> = records
        .iter()
        .filter(|r| r.kind == RunKind::Serve)
        .filter(|r| r.metrics.as_ref().is_some_and(|m| m.serve.is_some()))
        .collect();
    rows.sort_by_key(|r| r.ts_ms);
    if rows.is_empty() {
        out.push_str("serve backpressure: no daemon summary records\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:>14}  {:>8}  {:>11}  {:>13}  {:>12}  run",
        "ts_ms", "jobs", "depth p50", "wait p50 us", "wait p99 us"
    );
    for r in rows {
        let metrics = r.metrics.as_ref().unwrap();
        let serve = metrics.serve.unwrap();
        let stat = |name: &str, p: f64| {
            metrics
                .latencies
                .get(name)
                .filter(|h| h.count() > 0)
                .map_or("n/a".to_string(), |h| h.percentile(p).to_string())
        };
        let jobs = serve.jobs_ok + serve.jobs_diverged + serve.jobs_failed;
        let _ = writeln!(
            out,
            "  {:>14}  {jobs:>8}  {:>11}  {:>13}  {:>12}  {}",
            r.ts_ms,
            stat("queue-depth", 0.5),
            stat("queue-wait", 0.5),
            stat("queue-wait", 0.99),
            r.run_id.as_deref().unwrap_or("-"),
        );
    }
    out
}

/// Renders the memory trend table: one row per record carrying a metric
/// snapshot, oldest first, with the total and peak bytes summed across
/// subsystems plus the hungriest subsystem by peak. Records ingested
/// before the memory plane existed carry no `mem` section and render
/// "n/a" instead of being dropped — the row still shows the run ran.
pub fn render_memory(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let mut rows: Vec<&RunRecord> = records.iter().filter(|r| r.metrics.is_some()).collect();
    rows.sort_by_key(|r| r.ts_ms);
    if rows.is_empty() {
        out.push_str("memory: no records with metric snapshots\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:>14}  {:>14}  {:>14}  {:<18}  run",
        "ts_ms", "bytes", "peak bytes", "top subsystem"
    );
    for r in rows {
        let run = r.run_id.as_deref().unwrap_or("-");
        match r.metrics.as_ref().and_then(|m| m.mem.as_ref()) {
            Some(mem) if !mem.subsystems.is_empty() => {
                let total: u64 = mem.subsystems.values().map(|s| s.bytes).sum();
                let peak: u64 = mem.subsystems.values().map(|s| s.peak_bytes).sum();
                let top = mem
                    .subsystems
                    .iter()
                    .max_by_key(|(name, s)| (s.peak_bytes, std::cmp::Reverse(*name)))
                    .map(|(name, _)| name.as_str())
                    .unwrap_or("-");
                let _ = writeln!(
                    out,
                    "  {:>14}  {total:>14}  {peak:>14}  {top:<18}  {run}",
                    r.ts_ms
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "  {:>14}  {:>14}  {:>14}  {:<18}  {run}",
                    r.ts_ms, "n/a", "n/a", "n/a (pre-mem)"
                );
            }
        }
    }
    out
}

/// Renders the recorder-overhead trend table: one row per bench-summary
/// record, oldest first, with the E18 headline (adaptive overhead growth
/// 8→64 threads), the endpoint overheads, and recorded events/sec.
/// Records ingested before E18 existed carry none of those keys and
/// render "n/a" instead of being dropped — the row still shows the
/// summary ran.
pub fn render_record_overhead(records: &[RunRecord]) -> String {
    let mut out = String::new();
    let mut rows: Vec<&RunRecord> = records.iter().filter(|r| r.kind == RunKind::Bench).collect();
    rows.sort_by_key(|r| r.ts_ms);
    if rows.is_empty() {
        out.push_str("record overhead: no bench records\n");
        return out;
    }
    let _ = writeln!(
        out,
        "  {:>14}  {:>9}  {:>9}  {:>9}  {:>12}  run",
        "ts_ms", "growth", "ovh lo", "ovh hi", "events/sec"
    );
    // Accept both the per-bench ingest (bare keys, from the Rust Report
    // plumbing) and the pipeline-summary ingest (bench-prefixed keys,
    // from scripts/bench_summary.py).
    let metric = |r: &RunRecord, key: &str| {
        r.metric(key)
            .or_else(|| r.metric(&format!("record_overhead_scaling.{key}")))
    };
    for r in rows {
        let run = r.run_id.as_deref().unwrap_or("-");
        let cell = |v: Option<f64>, width: usize, frac: usize| match v {
            Some(v) => format!("{v:>width$.frac$}"),
            None => format!("{:>width$}", "n/a"),
        };
        let _ = writeln!(
            out,
            "  {:>14}  {}  {}  {}  {}  {run}",
            r.ts_ms,
            cell(metric(r, "record_overhead_scaling"), 9, 2),
            cell(metric(r, "record_overhead_lo"), 9, 2),
            cell(metric(r, "record_overhead_hi"), 9, 2),
            cell(metric(r, "record_events_per_sec"), 12, 0),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunStatus};
    use light_obs::RecorderMetrics;

    fn rec(ts: u64, speedup: Option<f64>) -> RunRecord {
        let mut r = RunRecord::new("p", RunKind::Bench, RunStatus::Ok);
        r.ts_ms = ts;
        if let Some(v) = speedup {
            r.headline.insert("solver_speedup".into(), v);
        }
        r
    }

    #[test]
    fn series_sorts_and_skips_missing() {
        let records = vec![rec(30, Some(3.0)), rec(10, Some(1.0)), rec(20, None)];
        let pts = series(&records, "solver_speedup");
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].ts_ms, 10);
        assert_eq!(pts[1].value, 3.0);
    }

    #[test]
    fn render_handles_empty_and_flat_series() {
        assert!(render("x", &[]).contains("no data points"));
        let flat = series(&[rec(1, Some(2.0)), rec(2, Some(2.0))], "solver_speedup");
        let text = render("solver_speedup", &flat);
        assert!(text.contains("2 points"));
    }

    #[test]
    fn backpressure_table_handles_pre_histogram_records() {
        use light_obs::{Histogram, ServeMetrics};
        // A pre-PR-8 summary: serve counters, no latency histograms.
        let mut old = RunRecord::new("light-serve", RunKind::Serve, RunStatus::Ok);
        old.ts_ms = 100;
        old.metrics = Some(MetricsSnapshot {
            serve: Some(ServeMetrics {
                jobs_ok: 3,
                ..Default::default()
            }),
            ..Default::default()
        });
        // A current summary with backpressure histograms.
        let mut new = RunRecord::new("light-serve", RunKind::Serve, RunStatus::Ok);
        new.ts_ms = 200;
        new.run_id = Some("00000000000000000000000000000abc".into());
        let mut snap = MetricsSnapshot {
            serve: Some(ServeMetrics {
                jobs_ok: 5,
                ..Default::default()
            }),
            ..Default::default()
        };
        let mut depth = Histogram::new();
        depth.record(4);
        let mut wait = Histogram::new();
        wait.record(1500);
        snap.latencies.insert("queue-depth".into(), depth.clone());
        snap.latencies.insert("queue-wait".into(), wait.clone());
        new.metrics = Some(snap);
        // A per-job Serve record (no serve section) must not get a row.
        let job = RunRecord::new("race", RunKind::Serve, RunStatus::Ok);

        let text = render_backpressure(&[new.clone(), job, old]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + two summaries:\n{text}");
        assert!(lines[1].contains("n/a"), "pre-PR-8 row renders n/a: {}", lines[1]);
        assert!(lines[2].contains(&depth.percentile(0.5).to_string()));
        assert!(lines[2].contains(&wait.percentile(0.99).to_string()));
        assert!(lines[2].contains("00000000000000000000000000000abc"));
        assert!(render_backpressure(&[]).contains("no daemon summary records"));
    }

    #[test]
    fn memory_table_handles_pre_mem_records() {
        use light_obs::{MemMetrics, MemStat};
        // A record from before the memory plane: snapshot, no mem section.
        let mut old = RunRecord::new("light-serve", RunKind::Serve, RunStatus::Ok);
        old.ts_ms = 100;
        old.metrics = Some(MetricsSnapshot::default());
        // A current record with two subsystems.
        let mut new = RunRecord::new("light-serve", RunKind::Serve, RunStatus::Ok);
        new.ts_ms = 200;
        new.run_id = Some("00000000000000000000000000000abc".into());
        let mut mem = MemMetrics::default();
        mem.subsystems.insert(
            "serve-queue".into(),
            MemStat { bytes: 1024, peak_bytes: 4096 },
        );
        mem.subsystems.insert(
            "recorder-log".into(),
            MemStat { bytes: 10, peak_bytes: 20 },
        );
        new.metrics = Some(MetricsSnapshot {
            mem: Some(mem),
            ..Default::default()
        });
        // No snapshot at all: not a row.
        let bare = RunRecord::new("race", RunKind::Serve, RunStatus::Ok);

        let text = render_memory(&[new, bare, old]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "header + two rows:\n{text}");
        assert!(lines[1].contains("n/a (pre-mem)"), "old row: {}", lines[1]);
        assert!(lines[2].contains("1034"), "summed bytes: {}", lines[2]);
        assert!(lines[2].contains("4116"), "summed peaks: {}", lines[2]);
        assert!(lines[2].contains("serve-queue"), "top subsystem: {}", lines[2]);
        assert!(lines[2].contains("00000000000000000000000000000abc"));
        assert!(render_memory(&[]).contains("no records with metric snapshots"));
    }

    #[test]
    fn record_overhead_table_handles_pre_e18_records() {
        // A bench summary from before E18: headline, none of its keys.
        let mut old = RunRecord::new("bench_summary", RunKind::Bench, RunStatus::Ok);
        old.ts_ms = 100;
        old.headline.insert("solver_speedup".into(), 3.0);
        // A current summary with the prefixed pipeline keys.
        let mut new = RunRecord::new("bench_summary", RunKind::Bench, RunStatus::Ok);
        new.ts_ms = 200;
        new.run_id = Some("00000000000000000000000000000abc".into());
        new.headline
            .insert("record_overhead_scaling.record_overhead_scaling".into(), 1.37);
        new.headline
            .insert("record_overhead_scaling.record_overhead_lo".into(), 0.82);
        new.headline
            .insert("record_overhead_scaling.record_overhead_hi".into(), 1.12);
        new.headline
            .insert("record_overhead_scaling.record_events_per_sec".into(), 8_000_000.0);
        // A bare-key record (per-bench Rust ingest) must also resolve.
        let mut bare = RunRecord::new("record_overhead_scaling", RunKind::Bench, RunStatus::Ok);
        bare.ts_ms = 300;
        bare.headline.insert("record_overhead_scaling".into(), 1.05);
        // Non-bench records never get a row.
        let serve = RunRecord::new("light-serve", RunKind::Serve, RunStatus::Ok);

        let text = render_record_overhead(&[new, serve, old, bare]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "header + three rows:\n{text}");
        assert!(lines[1].contains("n/a"), "pre-E18 row renders n/a: {}", lines[1]);
        assert!(lines[2].contains("1.37"), "growth headline: {}", lines[2]);
        assert!(lines[2].contains("8000000"), "events/sec: {}", lines[2]);
        assert!(lines[2].contains("00000000000000000000000000000abc"));
        assert!(lines[3].contains("1.05"), "bare-key ingest: {}", lines[3]);
        assert!(render_record_overhead(&[]).contains("no bench records"));
    }

    #[test]
    fn aggregate_folds_snapshots() {
        let mut a = rec(1, None);
        a.metrics = Some(MetricsSnapshot {
            record: Some(RecorderMetrics {
                deps: 3,
                ..Default::default()
            }),
            ..Default::default()
        });
        let mut b = rec(2, None);
        b.metrics = Some(MetricsSnapshot {
            record: Some(RecorderMetrics {
                deps: 4,
                ..Default::default()
            }),
            ..Default::default()
        });
        let agg = aggregate_snapshots(&[a, b, rec(3, None)]);
        assert_eq!(agg.record.unwrap().deps, 7);
    }
}
