//! The registry's unit of storage: one run's sidecar metadata.

use light_obs::json::Value;
use light_obs::MetricsSnapshot;
use std::collections::BTreeMap;

/// The index line schema identifier. Bump only for breaking layout
/// changes; additive keys ride on the same version.
pub const SCHEMA: &str = "light-watch/v1";

/// What kind of pipeline invocation a registry entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunKind {
    Record,
    Replay,
    Doctor,
    Explore,
    Profile,
    Inspect,
    Bench,
    /// A `light-serve` job: one server-side solve → replay → doctor
    /// pass over a submitted recording (or the server's own summary).
    Serve,
}

impl RunKind {
    pub fn as_str(self) -> &'static str {
        match self {
            RunKind::Record => "record",
            RunKind::Replay => "replay",
            RunKind::Doctor => "doctor",
            RunKind::Explore => "explore",
            RunKind::Profile => "profile",
            RunKind::Inspect => "inspect",
            RunKind::Bench => "bench",
            RunKind::Serve => "serve",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "record" => RunKind::Record,
            "replay" => RunKind::Replay,
            "doctor" => RunKind::Doctor,
            "explore" => RunKind::Explore,
            "profile" => RunKind::Profile,
            "inspect" => RunKind::Inspect,
            "bench" => RunKind::Bench,
            "serve" => RunKind::Serve,
            _ => return None,
        })
    }
}

/// How the run ended, as far as the registry cares: healthy, diverged
/// from its recording, or failed outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RunStatus {
    Ok,
    Diverged,
    Failed,
    Unknown,
}

impl RunStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Ok => "ok",
            RunStatus::Diverged => "diverged",
            RunStatus::Failed => "failed",
            RunStatus::Unknown => "unknown",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => RunStatus::Ok,
            "diverged" => RunStatus::Diverged,
            "failed" => RunStatus::Failed,
            "unknown" => RunStatus::Unknown,
            _ => return None,
        })
    }
}

/// One run's registry entry: who ran, how it went, and every metric the
/// pipeline measured. Serialized as one JSONL line in the append-only
/// index; the recording blob (when present) lives separately under
/// `blobs/<hash>` and is referenced by `blob_hash`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Wall-clock Unix milliseconds at ingest.
    pub ts_ms: u64,
    /// Program or workload name ("counter_race", bench suite name, ...).
    pub program: String,
    pub kind: RunKind,
    pub status: RunStatus,
    /// Causal trace id (32-hex [`light_obs::RunId`]) when the run
    /// carried one; joins this entry with trace exports and progress
    /// JSONL streams.
    pub run_id: Option<String>,
    /// SHA-256 of the recording bytes, when a blob was ingested.
    pub blob_hash: Option<String>,
    /// Size of the ingested blob in bytes.
    pub blob_bytes: Option<u64>,
    /// Canonical bug signature ("deadlock", "assert@main:12", ...) for
    /// runs that surfaced one.
    pub bug_signature: Option<String>,
    /// Free-form provenance: CLI name and flags, CI job, hostname.
    pub provenance: Option<String>,
    /// End-to-end wall time of the invocation.
    pub wall_ms: Option<u64>,
    /// Flat named numbers worth trending that live outside the snapshot
    /// (bench headlines like `solver_speedup`, `median_overhead`).
    pub headline: BTreeMap<String, f64>,
    /// The run's full unified metric snapshot, when one was captured.
    pub metrics: Option<MetricsSnapshot>,
}

impl RunRecord {
    /// A minimal record; fill optional fields before ingesting.
    pub fn new(program: impl Into<String>, kind: RunKind, status: RunStatus) -> Self {
        RunRecord {
            ts_ms: 0,
            program: program.into(),
            kind,
            status,
            run_id: None,
            blob_hash: None,
            blob_bytes: None,
            bug_signature: None,
            provenance: None,
            wall_ms: None,
            headline: BTreeMap::new(),
            metrics: None,
        }
    }

    /// Renders the record as one index line's JSON object.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("schema".into(), Value::from(SCHEMA)),
            ("ts_ms".into(), Value::from(self.ts_ms)),
            ("program".into(), Value::from(self.program.as_str())),
            ("kind".into(), Value::from(self.kind.as_str())),
            ("status".into(), Value::from(self.status.as_str())),
        ];
        let mut opt = |key: &str, v: Option<Value>| {
            if let Some(v) = v {
                pairs.push((key.into(), v));
            }
        };
        opt("run_id", self.run_id.as_deref().map(Value::from));
        opt("blob_hash", self.blob_hash.as_deref().map(Value::from));
        opt("blob_bytes", self.blob_bytes.map(Value::from));
        opt(
            "bug_signature",
            self.bug_signature.as_deref().map(Value::from),
        );
        opt("provenance", self.provenance.as_deref().map(Value::from));
        opt("wall_ms", self.wall_ms.map(Value::from));
        if !self.headline.is_empty() {
            pairs.push((
                "headline".into(),
                Value::Obj(
                    self.headline
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::F64(*v)))
                        .collect(),
                ),
            ));
        }
        if let Some(m) = &self.metrics {
            pairs.push(("metrics".into(), m.to_json()));
        }
        Value::Obj(pairs)
    }

    /// Parses one index line. Returns `None` for lines that are not
    /// `light-watch/v1` records (so foreign or future lines in a shared
    /// index are skipped, not fatal).
    pub fn from_json(v: &Value) -> Option<Self> {
        if v.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
            return None;
        }
        let kind = RunKind::parse(v.get("kind").and_then(Value::as_str)?)?;
        let status = RunStatus::parse(v.get("status").and_then(Value::as_str)?)?;
        let mut rec = RunRecord::new(
            v.get("program").and_then(Value::as_str).unwrap_or(""),
            kind,
            status,
        );
        rec.ts_ms = v.get("ts_ms").and_then(Value::as_u64).unwrap_or(0);
        rec.run_id = v.get("run_id").and_then(Value::as_str).map(String::from);
        rec.blob_hash = v.get("blob_hash").and_then(Value::as_str).map(String::from);
        rec.blob_bytes = v.get("blob_bytes").and_then(Value::as_u64);
        rec.bug_signature = v
            .get("bug_signature")
            .and_then(Value::as_str)
            .map(String::from);
        rec.provenance = v
            .get("provenance")
            .and_then(Value::as_str)
            .map(String::from);
        rec.wall_ms = v.get("wall_ms").and_then(Value::as_u64);
        if let Some(head) = v.get("headline").and_then(Value::as_obj) {
            for (k, hv) in head {
                if let Some(x) = hv.as_f64() {
                    rec.headline.insert(k.clone(), x);
                }
            }
        }
        rec.metrics = v.get("metrics").map(MetricsSnapshot::from_json);
        Some(rec)
    }

    /// Resolves a metric path on this record. Bare names and
    /// `headline.<name>` read the headline map; dotted paths like
    /// `solver.solve_ns` or `record.deps` walk the metric snapshot's
    /// JSON shape; `wall_ms` reads the wall-clock field;
    /// `latency.<histogram>.<p50|p95|p99|mean|max|count>` summarizes a
    /// stage latency histogram (histogram names may themselves contain
    /// dots or dashes — the *last* dot splits name from statistic).
    pub fn metric(&self, path: &str) -> Option<f64> {
        if let Some(v) = self.headline.get(path) {
            return Some(*v);
        }
        if let Some(name) = path.strip_prefix("headline.") {
            return self.headline.get(name).copied();
        }
        if path == "wall_ms" {
            return self.wall_ms.map(|v| v as f64);
        }
        if let Some(rest) = path.strip_prefix("latency.") {
            let (name, stat) = rest.rsplit_once('.')?;
            let h = self.metrics.as_ref()?.latencies.get(name)?;
            return Some(match stat {
                "p50" => h.percentile(0.5) as f64,
                "p95" => h.percentile(0.95) as f64,
                "p99" => h.percentile(0.99) as f64,
                "mean" => h.mean(),
                "max" => h.max() as f64,
                "count" => h.count() as f64,
                _ => return None,
            });
        }
        let snapshot = self.metrics.as_ref()?.to_json();
        let mut cur = &snapshot;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        cur.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_obs::SolverMetrics;

    fn sample() -> RunRecord {
        let mut rec = RunRecord::new("counter_race", RunKind::Replay, RunStatus::Ok);
        rec.ts_ms = 1_700_000_000_000;
        rec.run_id = Some("00000000000000000000000000000abc".into());
        rec.blob_hash = Some("ab".repeat(32));
        rec.blob_bytes = Some(512);
        rec.wall_ms = Some(42);
        rec.headline.insert("solver_speedup".into(), 2.5);
        rec.metrics = Some(MetricsSnapshot {
            solver: Some(SolverMetrics {
                vars: 10,
                solve_ns: 12345,
                ..Default::default()
            }),
            ..Default::default()
        });
        rec
    }

    #[test]
    fn json_round_trips() {
        let rec = sample();
        let line = rec.to_json().to_json();
        let back = RunRecord::from_json(&Value::parse(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
        // Minimal records (all options absent) roundtrip too.
        let min = RunRecord::new("p", RunKind::Bench, RunStatus::Unknown);
        let back = RunRecord::from_json(&Value::parse(&min.to_json().to_json()).unwrap()).unwrap();
        assert_eq!(back, min);
    }

    #[test]
    fn foreign_lines_are_skipped() {
        assert_eq!(RunRecord::from_json(&Value::parse("{}").unwrap()), None);
        let wrong = Value::obj([("schema", Value::from("other/v9"))]);
        assert_eq!(RunRecord::from_json(&wrong), None);
    }

    #[test]
    fn metric_paths_resolve_headline_and_snapshot() {
        let rec = sample();
        assert_eq!(rec.metric("solver_speedup"), Some(2.5));
        assert_eq!(rec.metric("headline.solver_speedup"), Some(2.5));
        assert_eq!(rec.metric("solver.solve_ns"), Some(12345.0));
        assert_eq!(rec.metric("solver.vars"), Some(10.0));
        assert_eq!(rec.metric("wall_ms"), Some(42.0));
        assert_eq!(rec.metric("nope.nothing"), None);
    }

    #[test]
    fn latency_metric_paths_summarize_histograms() {
        let mut rec = sample();
        let mut h = light_obs::Histogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        rec.metrics
            .as_mut()
            .unwrap()
            .latencies
            .insert("queue-wait".into(), h.clone());
        assert_eq!(rec.metric("latency.queue-wait.p50"), Some(h.percentile(0.5) as f64));
        assert_eq!(rec.metric("latency.queue-wait.p99"), Some(h.percentile(0.99) as f64));
        assert_eq!(rec.metric("latency.queue-wait.count"), Some(3.0));
        assert_eq!(rec.metric("latency.queue-wait.max"), Some(300.0));
        assert_eq!(rec.metric("latency.queue-wait.mean"), Some(200.0));
        // Unknown histogram or statistic: absent, not zero.
        assert_eq!(rec.metric("latency.solve.p50"), None);
        assert_eq!(rec.metric("latency.queue-wait.p1000"), None);
        assert_eq!(rec.metric("latency.queue-wait"), None);
    }
}
