//! Rolling-baseline regression detection — the CI gate behind
//! `light-watch regress`.

use crate::trend::TrendPoint;

/// Whether larger values of a metric are good or bad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// e.g. `solver_speedup`, `schedules_per_sec`: a *drop* regresses.
    HigherIsBetter,
    /// e.g. `median_overhead`, `solve_ns`, `wall_ms`: a *rise* regresses.
    LowerIsBetter,
}

impl Direction {
    /// Infers the direction from the metric name. Rate-like names
    /// (speedup, throughput, per-sec) are higher-is-better; everything
    /// else — times, counts, overheads — is lower-is-better.
    pub fn infer(metric: &str) -> Direction {
        let lower = metric.to_ascii_lowercase();
        if ["speedup", "throughput", "per_sec", "rate", "hits"]
            .iter()
            .any(|k| lower.contains(k))
        {
            Direction::HigherIsBetter
        } else {
            Direction::LowerIsBetter
        }
    }
}

/// The verdict on the latest point of a series.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    pub metric: String,
    pub direction: Direction,
    /// The newest point's value.
    pub latest: f64,
    /// Mean of the `baseline_n` points preceding the newest.
    pub baseline: f64,
    /// How many points the baseline averaged.
    pub baseline_n: usize,
    /// Signed change *for the worse*, as a fraction of the baseline:
    /// positive means regression, negative means improvement.
    pub regression: f64,
    /// Whether `regression` exceeded the gate's threshold.
    pub regressed: bool,
}

impl Verdict {
    /// One-line human rendering, stable enough to grep in CI logs.
    pub fn render(&self) -> String {
        format!(
            "{}: latest {:.6} vs baseline {:.6} (n={}) => {} {:.1}% => {}",
            self.metric,
            self.latest,
            self.baseline,
            self.baseline_n,
            if self.regression >= 0.0 {
                "worsened"
            } else {
                "improved"
            },
            self.regression.abs() * 100.0,
            if self.regressed { "REGRESSED" } else { "ok" },
        )
    }
}

/// Why a verdict could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressError {
    /// Fewer than two points with the metric: nothing to compare.
    NotEnoughData { points: usize },
    /// The baseline mean is zero, so relative change is undefined.
    ZeroBaseline,
}

impl std::fmt::Display for RegressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressError::NotEnoughData { points } => {
                write!(f, "need at least 2 data points, have {points}")
            }
            RegressError::ZeroBaseline => write!(f, "baseline mean is zero"),
        }
    }
}

impl std::error::Error for RegressError {}

/// Compares the newest point of `points` (assumed time-sorted, as
/// [`crate::trend::series`] returns) against the mean of up to
/// `baseline_k` points immediately before it. `threshold` is a
/// fraction: 0.2 means "fail on >20% change for the worse".
pub fn check(
    metric: &str,
    points: &[TrendPoint],
    baseline_k: usize,
    threshold: f64,
    direction: Direction,
) -> Result<Verdict, RegressError> {
    if points.len() < 2 {
        return Err(RegressError::NotEnoughData {
            points: points.len(),
        });
    }
    let latest = points[points.len() - 1].value;
    let window = &points[..points.len() - 1];
    let start = window.len().saturating_sub(baseline_k.max(1));
    let window = &window[start..];
    let baseline = window.iter().map(|p| p.value).sum::<f64>() / window.len() as f64;
    if baseline == 0.0 {
        return Err(RegressError::ZeroBaseline);
    }
    let regression = match direction {
        Direction::HigherIsBetter => (baseline - latest) / baseline,
        Direction::LowerIsBetter => (latest - baseline) / baseline,
    };
    Ok(Verdict {
        metric: metric.to_string(),
        direction,
        latest,
        baseline,
        baseline_n: window.len(),
        regression,
        regressed: regression > threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(values: &[f64]) -> Vec<TrendPoint> {
        values
            .iter()
            .enumerate()
            .map(|(i, &value)| TrendPoint {
                ts_ms: i as u64,
                value,
                run_id: None,
            })
            .collect()
    }

    #[test]
    fn halved_speedup_regresses() {
        // The ISSUE's injected failure: a 2x solver_speedup regression.
        let series = pts(&[3.0, 3.1, 2.9, 3.0, 1.5]);
        let v = check(
            "solver_speedup",
            &series,
            5,
            0.2,
            Direction::HigherIsBetter,
        )
        .unwrap();
        assert!(v.regressed);
        assert!(v.regression > 0.45);
        assert!(v.render().contains("REGRESSED"));
    }

    #[test]
    fn steady_trajectory_passes() {
        let series = pts(&[3.0, 3.1, 2.9, 3.0, 3.05]);
        let v = check(
            "solver_speedup",
            &series,
            5,
            0.2,
            Direction::HigherIsBetter,
        )
        .unwrap();
        assert!(!v.regressed);
        assert!(v.render().contains("ok"));
    }

    #[test]
    fn improvements_never_regress_either_direction() {
        let faster = pts(&[100.0, 100.0, 50.0]);
        let v = check("solve_ns", &faster, 5, 0.1, Direction::LowerIsBetter).unwrap();
        assert!(!v.regressed);
        assert!(v.regression < 0.0);
        let slower = pts(&[100.0, 100.0, 150.0]);
        let v = check("solve_ns", &slower, 5, 0.1, Direction::LowerIsBetter).unwrap();
        assert!(v.regressed);
    }

    #[test]
    fn baseline_window_only_looks_back_k() {
        // Old bad era followed by a good era: with k=3 the baseline is
        // the good era only, so a return to 10.0 regresses.
        let series = pts(&[10.0, 10.0, 2.0, 2.0, 2.0, 10.0]);
        let v = check("wall_ms", &series, 3, 0.5, Direction::LowerIsBetter).unwrap();
        assert_eq!(v.baseline, 2.0);
        assert!(v.regressed);
    }

    #[test]
    fn degenerate_series_are_errors() {
        assert_eq!(
            check("m", &pts(&[1.0]), 5, 0.2, Direction::LowerIsBetter),
            Err(RegressError::NotEnoughData { points: 1 })
        );
        assert_eq!(
            check("m", &pts(&[0.0, 1.0]), 5, 0.2, Direction::LowerIsBetter),
            Err(RegressError::ZeroBaseline)
        );
    }

    #[test]
    fn direction_inference() {
        assert_eq!(
            Direction::infer("solver_speedup"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            Direction::infer("schedules_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(Direction::infer("median_overhead"), Direction::LowerIsBetter);
        assert_eq!(Direction::infer("wall_ms"), Direction::LowerIsBetter);
    }
}
