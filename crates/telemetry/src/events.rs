//! The `light-serve` per-job event log: schema, reader, and the
//! Chrome-trace stitch.
//!
//! The daemon appends one JSONL line per job lifecycle step to
//! `events.jsonl` next to the registry index: `accepted` (blob stored,
//! job minted), `queued` (with the queue depth at enqueue — the
//! backpressure signal), `started`, one `stage` line per pipeline stage
//! with its duration in µs, `watchdog` (a stage deadline fired and the
//! flight-recorder tail was dumped), and `finished` with the outcome.
//! Every line carries the job's [`light_obs::RunId`], so the event log
//! joins with the registry record, the progress JSONL, and the Chrome
//! trace of the same job.
//!
//! Like the index, the log is append-only and read tolerantly: torn
//! trailing lines and foreign/future schema lines are skipped, not
//! fatal.

use light_obs::json::Value;
use light_obs::{chrome_trace_json, RunId, TraceEvent};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// The event-log line schema identifier. Bump only for breaking layout
/// changes; additive keys ride on the same version.
pub const EVENTS_SCHEMA: &str = "light-serve/events/v1";

/// File name of the event log, next to the registry's `index.jsonl`.
pub const EVENTS_FILE: &str = "events.jsonl";

/// The canonical pipeline stages a job passes through, in order. Stage
/// events name one of these; the Chrome stitch maps them back to
/// static span names.
pub const STAGES: [&str; 6] = [
    "ingest",
    "queue-wait",
    "solve",
    "replay",
    "doctor",
    "registry-write",
];

/// One `light-serve/events/v1` line: a job lifecycle step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobEvent {
    /// Monotonic µs timestamp ([`light_obs::now_us`] at the step).
    pub ts_us: u64,
    /// `accepted` | `queued` | `started` | `stage` | `watchdog` |
    /// `finished` | `rejected`.
    pub event: String,
    /// The server-assigned job id.
    pub job_id: u64,
    /// Causal trace id (32-hex [`RunId`]) of the job.
    pub run_id: String,
    /// Content hash of the job's recording blob.
    pub blob_hash: String,
    /// Program name the submitter labelled the recording with.
    pub program: String,
    /// Queue depth observed at enqueue (on `queued` events).
    pub queue_depth: Option<u64>,
    /// Stage name (on `stage` events; one of [`STAGES`]).
    pub stage: Option<String>,
    /// Stage (or, on `finished`, whole-job) duration in µs.
    pub dur_us: Option<u64>,
    /// Outcome (`ok` | `diverged` | `failed`) on `finished` events.
    pub status: Option<String>,
    /// Free-form payload: the flight-recorder tail on `watchdog` events.
    pub detail: Option<String>,
}

impl JobEvent {
    /// A minimal event; fill the optional fields before logging.
    pub fn new(event: &str, job_id: u64, run_id: &str, blob_hash: &str, program: &str) -> Self {
        JobEvent {
            ts_us: light_obs::now_us(),
            event: event.into(),
            job_id,
            run_id: run_id.into(),
            blob_hash: blob_hash.into(),
            program: program.into(),
            ..JobEvent::default()
        }
    }

    /// Renders the event as one log line's JSON object.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("schema".into(), Value::from(EVENTS_SCHEMA)),
            ("ts_us".into(), Value::from(self.ts_us)),
            ("event".into(), Value::from(self.event.as_str())),
            ("job_id".into(), Value::from(self.job_id)),
            ("run_id".into(), Value::from(self.run_id.as_str())),
            ("blob_hash".into(), Value::from(self.blob_hash.as_str())),
            ("program".into(), Value::from(self.program.as_str())),
        ];
        let mut opt = |key: &str, v: Option<Value>| {
            if let Some(v) = v {
                pairs.push((key.into(), v));
            }
        };
        opt("queue_depth", self.queue_depth.map(Value::from));
        opt("stage", self.stage.as_deref().map(Value::from));
        opt("dur_us", self.dur_us.map(Value::from));
        opt("status", self.status.as_deref().map(Value::from));
        opt("detail", self.detail.as_deref().map(Value::from));
        Value::Obj(pairs)
    }

    /// Parses one log line. `None` for lines that are not
    /// `light-serve/events/v1` (foreign or future lines are skipped,
    /// not fatal).
    pub fn from_json(v: &Value) -> Option<Self> {
        if v.get("schema").and_then(Value::as_str) != Some(EVENTS_SCHEMA) {
            return None;
        }
        let text = |key: &str| v.get(key).and_then(Value::as_str).map(String::from);
        Some(JobEvent {
            ts_us: v.get("ts_us").and_then(Value::as_u64)?,
            event: text("event")?,
            job_id: v.get("job_id").and_then(Value::as_u64)?,
            run_id: text("run_id").unwrap_or_default(),
            blob_hash: text("blob_hash").unwrap_or_default(),
            program: text("program").unwrap_or_default(),
            queue_depth: v.get("queue_depth").and_then(Value::as_u64),
            stage: text("stage"),
            dur_us: v.get("dur_us").and_then(Value::as_u64),
            status: text("status"),
            detail: text("detail"),
        })
    }
}

/// Path of the event log under a registry root.
pub fn events_path(root: &Path) -> PathBuf {
    root.join(EVENTS_FILE)
}

/// Reads a registry's event log. Returns the parsed events in file
/// order plus the count of torn or foreign lines skipped. A missing
/// file is an empty log, not an error (pre-PR-8 registries have none).
///
/// # Errors
///
/// Propagates I/O failures other than the file not existing.
pub fn read_events(root: &Path) -> io::Result<(Vec<JobEvent>, u64)> {
    let text = match std::fs::read_to_string(events_path(root)) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut events = Vec::new();
    let mut skipped = 0u64;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Value::parse(line).ok().as_ref().and_then(JobEvent::from_json) {
            Some(ev) => events.push(ev),
            None => skipped += 1,
        }
    }
    Ok((events, skipped))
}

/// The static span name for a stage event (Chrome trace spans carry
/// `&'static str` names).
fn stage_span_name(stage: &str) -> &'static str {
    match stage {
        "ingest" => "ingest",
        "queue-wait" => "queue-wait",
        "solve" => "solve",
        "replay" => "replay",
        "doctor" => "doctor",
        "registry-write" => "registry-write",
        _ => "stage",
    }
}

/// Stitches job events into the existing Chrome-trace export: one
/// [`TraceEvent::RunContext`] per job (its `RunId` groups the job's
/// spans into one trace-viewer process) followed by a `Complete` span
/// per stage, placed at `ts - dur` so spans end where the stage event
/// was logged. Events are grouped by job id, jobs ordered by first
/// appearance.
pub fn chrome_trace(events: &[JobEvent]) -> String {
    let mut order: Vec<u64> = Vec::new();
    let mut by_job: BTreeMap<u64, Vec<&JobEvent>> = BTreeMap::new();
    for ev in events {
        let slot = by_job.entry(ev.job_id).or_default();
        if slot.is_empty() {
            order.push(ev.job_id);
        }
        slot.push(ev);
    }
    let mut trace: Vec<TraceEvent> = Vec::new();
    for job_id in order {
        let evs = &by_job[&job_id];
        let run_id = evs
            .iter()
            .map(|e| e.run_id.as_str())
            .find(|r| !r.is_empty())
            .unwrap_or_default();
        // The job's pid in the viewer: the RunId's derived pid when it
        // parses, else the job id (offset past the reserved pids).
        let pid = RunId::parse(run_id)
            .map(|r| r.as_pid())
            .unwrap_or(job_id + 2);
        trace.push(TraceEvent::RunContext {
            run_id: run_id.to_string(),
            pid,
        });
        for ev in evs {
            if ev.event != "stage" {
                continue;
            }
            let dur = ev.dur_us.unwrap_or(0);
            trace.push(TraceEvent::Complete {
                name: stage_span_name(ev.stage.as_deref().unwrap_or("")),
                tid: light_obs::PIPELINE_LANE,
                ts_us: ev.ts_us.saturating_sub(dur),
                dur_us: dur,
            });
        }
    }
    chrome_trace_json(&trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(event: &str, job: u64) -> JobEvent {
        let mut ev = JobEvent::new(event, job, &"ab".repeat(16), &"cd".repeat(32), "race");
        ev.ts_us = 1000 + job;
        ev
    }

    #[test]
    fn events_round_trip_through_json() {
        let mut ev = sample("stage", 3);
        ev.stage = Some("queue-wait".into());
        ev.dur_us = Some(250);
        ev.queue_depth = Some(7);
        ev.status = Some("ok".into());
        ev.detail = Some("tail: park park run".into());
        let line = ev.to_json().to_json();
        let back = JobEvent::from_json(&Value::parse(&line).unwrap()).unwrap();
        assert_eq!(back, ev);
        // Minimal events (no optional fields) roundtrip too.
        let min = sample("accepted", 1);
        let back = JobEvent::from_json(&Value::parse(&min.to_json().to_json()).unwrap()).unwrap();
        assert_eq!(back, min);
    }

    #[test]
    fn foreign_and_torn_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("lt-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let good = sample("finished", 9).to_json().to_json();
        let body = format!(
            "{good}\n{{\"schema\":\"other/v9\"}}\nnot json at all\n{}",
            &good[..good.len() / 2] // torn trailing line
        );
        std::fs::write(events_path(&dir), body).unwrap();
        let (events, skipped) = read_events(&dir).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].job_id, 9);
        assert_eq!(skipped, 3);
        // A registry without an event log reads as empty.
        let empty = dir.join("nope");
        std::fs::create_dir_all(&empty).unwrap();
        assert_eq!(read_events(&empty).unwrap(), (Vec::new(), 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chrome_trace_groups_spans_per_job_run_id() {
        let run_a = RunId::fresh().to_string();
        let run_b = RunId::fresh().to_string();
        let mut events = Vec::new();
        for (job, run) in [(1u64, &run_a), (2, &run_b)] {
            for (i, stage) in STAGES.iter().enumerate() {
                let mut ev = JobEvent::new("stage", job, run, "hash", "race");
                ev.ts_us = 1_000 * job + 10 * i as u64;
                ev.stage = Some((*stage).into());
                ev.dur_us = Some(5);
                events.push(ev);
            }
            let mut fin = JobEvent::new("finished", job, run, "hash", "race");
            fin.status = Some("ok".into());
            events.push(fin);
        }
        let trace = chrome_trace(&events);
        assert!(trace.contains(&run_a), "run id {run_a} missing from trace");
        assert!(trace.contains(&run_b));
        for stage in STAGES {
            assert!(trace.contains(&format!("\"name\": \"{stage}\"")), "{stage}");
        }
        // Two RunContext process_name metadata records, one per job.
        assert_eq!(trace.matches("process_name").count(), 2);
    }
}
