//! The persistent run registry: content-addressed blobs plus an
//! append-only JSONL index.
//!
//! On disk a registry is a directory:
//!
//! ```text
//! <root>/
//!   index.jsonl          # one RunRecord per line, append-only
//!   blobs/<sha256-hex>   # recording bytes, named by content
//! ```
//!
//! Ingest is crash-tolerant by construction: the blob is written first
//! (idempotent — same bytes hash to the same name), then the index line
//! is appended in one `write` call. Readers skip lines that fail to
//! parse, so a torn final line degrades to one lost entry, never a
//! poisoned registry.

use crate::hash::sha256_hex;
use crate::query::Query;
use crate::record::RunRecord;
use light_obs::json::Value;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The environment variable every Light CLI checks for auto-ingest.
pub const REGISTRY_ENV: &str = "LIGHT_REGISTRY";

/// A handle to an on-disk registry directory.
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
}

/// A registry operation failure, tagged with the path it touched.
#[derive(Debug)]
pub struct RegistryError {
    pub path: PathBuf,
    pub source: std::io::Error,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for RegistryError {}

fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> RegistryError + '_ {
    move |source| RegistryError {
        path: path.to_path_buf(),
        source,
    }
}

impl Registry {
    /// Opens (creating if needed) the registry rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        fs::create_dir_all(root.join("blobs")).map_err(io_err(&root))?;
        Ok(Registry { root })
    }

    /// Opens the registry named by `LIGHT_REGISTRY`, or `None` when the
    /// variable is unset or empty — the disabled, zero-cost path.
    pub fn from_env() -> Option<Result<Self, RegistryError>> {
        match std::env::var(REGISTRY_ENV) {
            Ok(path) if !path.is_empty() => Some(Registry::open(path)),
            _ => None,
        }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.jsonl")
    }

    /// The path a blob with `hash` lives at (whether or not it exists).
    pub fn blob_path(&self, hash: &str) -> PathBuf {
        self.root.join("blobs").join(hash)
    }

    /// Ingests one run: stores `blob` (if given) content-addressed,
    /// stamps the record with the blob hash/size and — when the caller
    /// left `ts_ms` zero — the current wall clock, then appends the
    /// record to the index. Returns the stored record.
    pub fn ingest(
        &self,
        mut record: RunRecord,
        blob: Option<&[u8]>,
    ) -> Result<RunRecord, RegistryError> {
        if let Some(bytes) = blob {
            let hash = sha256_hex(bytes);
            let path = self.blob_path(&hash);
            // Content-addressed: if the blob exists its contents are
            // already these bytes, so skip the write.
            if !path.exists() {
                let tmp = self.root.join("blobs").join(format!(
                    ".tmp-{}-{}",
                    std::process::id(),
                    &hash[..16]
                ));
                fs::write(&tmp, bytes).map_err(io_err(&tmp))?;
                fs::rename(&tmp, &path).map_err(io_err(&path))?;
            }
            record.blob_hash = Some(hash);
            record.blob_bytes = Some(bytes.len() as u64);
        }
        if record.ts_ms == 0 {
            record.ts_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
        }
        let line = format!("{}\n", record.to_json().to_json());
        let index = self.index_path();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&index)
            .map_err(io_err(&index))?;
        file.write_all(line.as_bytes()).map_err(io_err(&index))?;
        Ok(record)
    }

    /// Reads back a stored blob by its content hash.
    pub fn read_blob(&self, hash: &str) -> Result<Vec<u8>, RegistryError> {
        let path = self.blob_path(hash);
        fs::read(&path).map_err(io_err(&path))
    }

    /// Loads every parseable record in ingest order. Unparseable or
    /// foreign lines are skipped.
    pub fn load(&self) -> Result<Vec<RunRecord>, RegistryError> {
        let index = self.index_path();
        let text = match fs::read_to_string(&index) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&index)(e)),
        };
        Ok(text
            .lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() {
                    return None;
                }
                RunRecord::from_json(&Value::parse(line).ok()?)
            })
            .collect())
    }

    /// Loads the records matching `query`, in ingest order.
    pub fn query(&self, query: &Query) -> Result<Vec<RunRecord>, RegistryError> {
        let mut records = self.load()?;
        records.retain(|r| query.matches(r));
        Ok(records)
    }
}

/// Best-effort auto-ingest used by every Light CLI: when
/// `LIGHT_REGISTRY` is set, ingest `record` (+ optional recording
/// bytes) there; when unset, do nothing. Failures are reported on
/// stderr but never propagate — telemetry must not fail the pipeline
/// it observes.
pub fn auto_ingest(record: RunRecord, blob: Option<&[u8]>) -> Option<RunRecord> {
    let registry = match Registry::from_env()? {
        Ok(r) => r,
        Err(e) => {
            eprintln!("light-watch: cannot open {REGISTRY_ENV} registry: {e}");
            return None;
        }
    };
    match registry.ingest(record, blob) {
        Ok(stored) => Some(stored),
        Err(e) => {
            eprintln!("light-watch: ingest failed: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunStatus};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "light-telemetry-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ingest_then_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let reg = Registry::open(&dir).unwrap();
        let rec = RunRecord::new("counter_race", RunKind::Replay, RunStatus::Ok);
        let stored = reg.ingest(rec, Some(b"recording-bytes")).unwrap();
        assert!(stored.ts_ms > 0);
        let hash = stored.blob_hash.clone().unwrap();
        assert_eq!(stored.blob_bytes, Some(15));
        assert_eq!(reg.read_blob(&hash).unwrap(), b"recording-bytes");
        let loaded = reg.load().unwrap();
        assert_eq!(loaded, vec![stored]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_blobs_share_one_file() {
        let dir = tmpdir("dedup");
        let reg = Registry::open(&dir).unwrap();
        let a = reg
            .ingest(
                RunRecord::new("p", RunKind::Record, RunStatus::Ok),
                Some(b"same bytes"),
            )
            .unwrap();
        let b = reg
            .ingest(
                RunRecord::new("p", RunKind::Replay, RunStatus::Ok),
                Some(b"same bytes"),
            )
            .unwrap();
        assert_eq!(a.blob_hash, b.blob_hash);
        let blobs: Vec<_> = fs::read_dir(dir.join("blobs")).unwrap().collect();
        assert_eq!(blobs.len(), 1);
        assert_eq!(reg.load().unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_foreign_lines_are_skipped() {
        let dir = tmpdir("torn");
        let reg = Registry::open(&dir).unwrap();
        reg.ingest(RunRecord::new("p", RunKind::Doctor, RunStatus::Diverged), None)
            .unwrap();
        let index = dir.join("index.jsonl");
        let mut f = fs::OpenOptions::new().append(true).open(&index).unwrap();
        writeln!(f, "{{\"schema\":\"other/v1\"}}").unwrap();
        write!(f, "{{\"schema\":\"light-watch/v1\",\"trunc").unwrap();
        drop(f);
        let loaded = reg.load().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].program, "p");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_index_loads_empty() {
        let dir = tmpdir("empty");
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.load().unwrap(), Vec::new());
        fs::remove_dir_all(&dir).unwrap();
    }
}
