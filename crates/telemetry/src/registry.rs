//! The persistent run registry: content-addressed blobs plus an
//! append-only JSONL index.
//!
//! On disk a registry is a directory:
//!
//! ```text
//! <root>/
//!   index.jsonl          # one RunRecord per line, append-only
//!   blobs/<sha256-hex>   # recording bytes, named by content (flat)
//!   blobs/ab/<sha256-hex># sharded layout (fan-out by hash prefix)
//!   sharded              # marker: this registry writes sharded blobs
//! ```
//!
//! Ingest is crash-tolerant by construction: the blob is written first
//! (idempotent — same bytes hash to the same name), then the index line
//! is appended in one `write` call. Readers skip lines that fail to
//! parse, so a torn final line degrades to one lost entry, never a
//! poisoned registry; [`Registry::load_with_stats`] surfaces how many
//! lines were skipped so tools can warn instead of under-reporting.
//!
//! Registries opened with [`Registry::open_sharded`] fan blobs out into
//! 256 subdirectories keyed by the first two hash characters — the
//! layout a `light-serve` daemon ingesting from a whole fleet needs to
//! keep directory scans cheap. Reads always check both layouts, so flat
//! and sharded blobs coexist in one registry (e.g. when
//! `scripts/bench_summary.py`, which writes flat, shares a registry with
//! a sharded server).

use crate::hash::sha256_hex;
use crate::query::Query;
use crate::record::RunRecord;
use light_obs::json::Value;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The environment variable every Light CLI checks for auto-ingest.
pub const REGISTRY_ENV: &str = "LIGHT_REGISTRY";

/// A handle to an on-disk registry directory.
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
    /// New blobs go under `blobs/<hash[..2]>/`; reads check both layouts.
    sharded: bool,
}

/// What [`Registry::load_with_stats`] saw while scanning the index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Non-empty index lines scanned.
    pub lines: u64,
    /// Lines skipped because they were torn, foreign, or unparseable.
    /// Non-zero means a plain record count under-reports the registry.
    pub skipped: u64,
}

/// A registry operation failure, tagged with the path it touched.
#[derive(Debug)]
pub struct RegistryError {
    pub path: PathBuf,
    pub source: std::io::Error,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for RegistryError {}

fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> RegistryError + '_ {
    move |source| RegistryError {
        path: path.to_path_buf(),
        source,
    }
}

impl Registry {
    /// Opens (creating if needed) the registry rooted at `root`. A
    /// registry previously opened with [`Registry::open_sharded`] stays
    /// sharded (the on-disk marker wins), so every writer agrees on the
    /// layout.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        fs::create_dir_all(root.join("blobs")).map_err(io_err(&root))?;
        let sharded = root.join("sharded").exists();
        Ok(Registry { root, sharded })
    }

    /// Opens (creating if needed) the registry rooted at `root` with the
    /// sharded blob layout: new blobs land under `blobs/<hash[..2]>/`,
    /// fanning a fleet-scale ingest across 256 directories. The choice is
    /// persisted in a `sharded` marker file so later plain [`Registry::open`]
    /// calls keep writing sharded. Existing flat blobs remain readable.
    pub fn open_sharded(root: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let root = root.into();
        fs::create_dir_all(root.join("blobs")).map_err(io_err(&root))?;
        let marker = root.join("sharded");
        if !marker.exists() {
            fs::write(&marker, b"light-watch sharded blob layout\n").map_err(io_err(&marker))?;
        }
        Ok(Registry {
            root,
            sharded: true,
        })
    }

    /// Whether new blobs are written into the sharded fan-out layout.
    pub fn is_sharded(&self) -> bool {
        self.sharded
    }

    /// Opens the registry named by `LIGHT_REGISTRY`, or `None` when the
    /// variable is unset or empty — the disabled, zero-cost path.
    pub fn from_env() -> Option<Result<Self, RegistryError>> {
        match std::env::var(REGISTRY_ENV) {
            Ok(path) if !path.is_empty() => Some(Registry::open(path)),
            _ => None,
        }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn index_path(&self) -> PathBuf {
        self.root.join("index.jsonl")
    }

    /// The path a *new* blob with `hash` is written to: the shard
    /// subdirectory in sharded registries, `blobs/` directly otherwise.
    pub fn blob_path(&self, hash: &str) -> PathBuf {
        if self.sharded && hash.len() >= 2 {
            self.root.join("blobs").join(&hash[..2]).join(hash)
        } else {
            self.root.join("blobs").join(hash)
        }
    }

    /// Locates an existing blob, checking the sharded and flat layouts
    /// (either may hold it in a mixed-writer registry).
    pub fn find_blob(&self, hash: &str) -> Option<PathBuf> {
        if hash.len() >= 2 {
            let sharded = self.root.join("blobs").join(&hash[..2]).join(hash);
            if sharded.exists() {
                return Some(sharded);
            }
        }
        let flat = self.root.join("blobs").join(hash);
        flat.exists().then_some(flat)
    }

    /// Whether a blob with `hash` is already stored (in either layout).
    pub fn has_blob(&self, hash: &str) -> bool {
        self.find_blob(hash).is_some()
    }

    /// Ingests one run: stores `blob` (if given) content-addressed,
    /// stamps the record with the blob hash/size and — when the caller
    /// left `ts_ms` zero — the current wall clock, then appends the
    /// record to the index. Returns the stored record.
    pub fn ingest(
        &self,
        mut record: RunRecord,
        blob: Option<&[u8]>,
    ) -> Result<RunRecord, RegistryError> {
        if let Some(bytes) = blob {
            let (hash, _already) = self.store_blob(bytes)?;
            record.blob_hash = Some(hash);
            record.blob_bytes = Some(bytes.len() as u64);
        }
        if record.ts_ms == 0 {
            record.ts_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
        }
        let line = format!("{}\n", record.to_json().to_json());
        let index = self.index_path();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&index)
            .map_err(io_err(&index))?;
        file.write_all(line.as_bytes()).map_err(io_err(&index))?;
        Ok(record)
    }

    /// Stores `bytes` content-addressed without touching the index.
    /// Returns the hash and whether the blob already existed (the dedup
    /// signal `light-serve` reports per submission). Concurrent writers
    /// are safe: each writes a unique tmp file and renames it into
    /// place; identical content renames to the same final name, so the
    /// last rename is a no-op overwrite of identical bytes.
    pub fn store_blob(&self, bytes: &[u8]) -> Result<(String, bool), RegistryError> {
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let hash = sha256_hex(bytes);
        if self.has_blob(&hash) {
            return Ok((hash, true));
        }
        let path = self.blob_path(&hash);
        let dir = path.parent().expect("blob path has a parent");
        fs::create_dir_all(dir).map_err(io_err(dir))?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            &hash[..16.min(hash.len())],
        ));
        fs::write(&tmp, bytes).map_err(io_err(&tmp))?;
        fs::rename(&tmp, &path).map_err(io_err(&path))?;
        // Account only newly written bytes: registries are append-only,
        // so the gauge is a monotone "bytes this process added" counter
        // (dedup hits return above and add nothing).
        light_obs::mem::handle(light_obs::mem::subsystem::REGISTRY_BLOBS).add(bytes.len() as u64);
        Ok((hash, false))
    }

    /// Reads back a stored blob by its content hash (either layout).
    pub fn read_blob(&self, hash: &str) -> Result<Vec<u8>, RegistryError> {
        let path = self.find_blob(hash).unwrap_or_else(|| self.blob_path(hash));
        fs::read(&path).map_err(io_err(&path))
    }

    /// Loads every parseable record in ingest order. Unparseable or
    /// foreign lines are skipped.
    pub fn load(&self) -> Result<Vec<RunRecord>, RegistryError> {
        self.load_with_stats().map(|(records, _)| records)
    }

    /// Like [`Registry::load`], but also reports how many non-empty
    /// index lines were scanned and how many were skipped as torn or
    /// foreign — so callers can warn that a count under-reports instead
    /// of silently tolerating corruption.
    pub fn load_with_stats(&self) -> Result<(Vec<RunRecord>, IndexStats), RegistryError> {
        let index = self.index_path();
        let text = match fs::read_to_string(&index) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Vec::new(), IndexStats::default()))
            }
            Err(e) => return Err(io_err(&index)(e)),
        };
        let mut stats = IndexStats::default();
        let records = text
            .lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() {
                    return None;
                }
                stats.lines += 1;
                let parsed = Value::parse(line)
                    .ok()
                    .as_ref()
                    .and_then(RunRecord::from_json);
                if parsed.is_none() {
                    stats.skipped += 1;
                }
                parsed
            })
            .collect();
        Ok((records, stats))
    }

    /// Loads the records matching `query`, in ingest order.
    pub fn query(&self, query: &Query) -> Result<Vec<RunRecord>, RegistryError> {
        let mut records = self.load()?;
        records.retain(|r| query.matches(r));
        Ok(records)
    }
}

/// Best-effort auto-ingest used by every Light CLI: when
/// `LIGHT_REGISTRY` is set, ingest `record` (+ optional recording
/// bytes) there; when unset, do nothing. Failures are reported on
/// stderr but never propagate — telemetry must not fail the pipeline
/// it observes.
pub fn auto_ingest(record: RunRecord, blob: Option<&[u8]>) -> Option<RunRecord> {
    let registry = match Registry::from_env()? {
        Ok(r) => r,
        Err(e) => {
            eprintln!("light-watch: cannot open {REGISTRY_ENV} registry: {e}");
            return None;
        }
    };
    match registry.ingest(record, blob) {
        Ok(stored) => Some(stored),
        Err(e) => {
            eprintln!("light-watch: ingest failed: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RunKind, RunStatus};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "light-telemetry-registry-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn ingest_then_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let reg = Registry::open(&dir).unwrap();
        let rec = RunRecord::new("counter_race", RunKind::Replay, RunStatus::Ok);
        let stored = reg.ingest(rec, Some(b"recording-bytes")).unwrap();
        assert!(stored.ts_ms > 0);
        let hash = stored.blob_hash.clone().unwrap();
        assert_eq!(stored.blob_bytes, Some(15));
        assert_eq!(reg.read_blob(&hash).unwrap(), b"recording-bytes");
        let loaded = reg.load().unwrap();
        assert_eq!(loaded, vec![stored]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_blobs_share_one_file() {
        let dir = tmpdir("dedup");
        let reg = Registry::open(&dir).unwrap();
        let a = reg
            .ingest(
                RunRecord::new("p", RunKind::Record, RunStatus::Ok),
                Some(b"same bytes"),
            )
            .unwrap();
        let b = reg
            .ingest(
                RunRecord::new("p", RunKind::Replay, RunStatus::Ok),
                Some(b"same bytes"),
            )
            .unwrap();
        assert_eq!(a.blob_hash, b.blob_hash);
        let blobs: Vec<_> = fs::read_dir(dir.join("blobs")).unwrap().collect();
        assert_eq!(blobs.len(), 1);
        assert_eq!(reg.load().unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_foreign_lines_are_skipped() {
        let dir = tmpdir("torn");
        let reg = Registry::open(&dir).unwrap();
        reg.ingest(RunRecord::new("p", RunKind::Doctor, RunStatus::Diverged), None)
            .unwrap();
        let index = dir.join("index.jsonl");
        let mut f = fs::OpenOptions::new().append(true).open(&index).unwrap();
        writeln!(f, "{{\"schema\":\"other/v1\"}}").unwrap();
        write!(f, "{{\"schema\":\"light-watch/v1\",\"trunc").unwrap();
        drop(f);
        let loaded = reg.load().unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].program, "p");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_with_stats_counts_skipped_lines() {
        let dir = tmpdir("skipped");
        let reg = Registry::open(&dir).unwrap();
        reg.ingest(RunRecord::new("p", RunKind::Replay, RunStatus::Ok), None)
            .unwrap();
        let (_, clean) = reg.load_with_stats().unwrap();
        assert_eq!(clean, IndexStats { lines: 1, skipped: 0 });
        let index = dir.join("index.jsonl");
        let mut f = fs::OpenOptions::new().append(true).open(&index).unwrap();
        writeln!(f, "{{\"schema\":\"other/v1\"}}").unwrap();
        write!(f, "{{\"schema\":\"light-watch/v1\",\"trunc").unwrap();
        drop(f);
        let (records, stats) = reg.load_with_stats().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(stats, IndexStats { lines: 3, skipped: 2 });
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_registry_fans_out_and_reads_flat_blobs() {
        let dir = tmpdir("sharded");
        // A flat blob written before the layout switch...
        let flat = Registry::open(&dir).unwrap();
        let a = flat
            .ingest(
                RunRecord::new("p", RunKind::Record, RunStatus::Ok),
                Some(b"flat-era blob"),
            )
            .unwrap();
        let flat_hash = a.blob_hash.clone().unwrap();
        // ...stays readable after open_sharded, and new blobs fan out.
        let reg = Registry::open_sharded(&dir).unwrap();
        assert!(reg.is_sharded());
        assert_eq!(reg.read_blob(&flat_hash).unwrap(), b"flat-era blob");
        let (hash, already) = reg.store_blob(b"sharded blob").unwrap();
        assert!(!already);
        let path = reg.find_blob(&hash).unwrap();
        assert_eq!(path, dir.join("blobs").join(&hash[..2]).join(&hash));
        // Re-storing the same bytes is a dedup hit, not a rewrite.
        assert_eq!(reg.store_blob(b"sharded blob").unwrap(), (hash, true));
        // The marker makes a later plain open stay sharded.
        assert!(Registry::open(&dir).unwrap().is_sharded());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_index_loads_empty() {
        let dir = tmpdir("empty");
        let reg = Registry::open(&dir).unwrap();
        assert_eq!(reg.load().unwrap(), Vec::new());
        fs::remove_dir_all(&dir).unwrap();
    }
}
