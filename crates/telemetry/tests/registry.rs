//! Integration tests: the registry workflow end to end, and the
//! env-gated auto-ingest path every CLI uses.

use light_telemetry::{
    auto_ingest, regress, sha256_hex, trend, Query, Registry, RunKind, RunRecord, RunStatus,
    REGISTRY_ENV,
};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "light-telemetry-it-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_workflow_ingest_query_trend_regress() {
    let dir = tmpdir("workflow");
    let registry = Registry::open(&dir).unwrap();

    // Three healthy bench runs, then one that halves the speedup.
    for (ts, speedup) in [(1000u64, 3.0f64), (2000, 3.1), (3000, 2.9), (4000, 1.5)] {
        let mut rec = RunRecord::new("corpus", RunKind::Bench, RunStatus::Ok);
        rec.ts_ms = ts;
        rec.headline.insert("solver_speedup".into(), speedup);
        registry.ingest(rec, None).unwrap();
    }
    // A diverged doctor run with a blob, queryable by status and sig.
    let mut bad = RunRecord::new("cache4j", RunKind::Doctor, RunStatus::Diverged);
    bad.ts_ms = 2500;
    bad.bug_signature = Some("deadlock".into());
    let stored = registry.ingest(bad, Some(b"recording!")).unwrap();
    assert_eq!(stored.blob_hash.as_deref(), Some(&*sha256_hex(b"recording!")));

    // Typed queries.
    let diverged = registry
        .query(&Query {
            status: Some(RunStatus::Diverged),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(diverged.len(), 1);
    assert_eq!(diverged[0].program, "cache4j");
    let by_sig = registry
        .query(&Query {
            bug_signature: Some("deadlock".into()),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(by_sig.len(), 1);
    let windowed = registry
        .query(&Query {
            kind: Some(RunKind::Bench),
            since_ms: Some(2000),
            until_ms: Some(3000),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(windowed.len(), 2);

    // Trend over the bench runs; the doctor run has no headline and is
    // skipped by the series extractor.
    let all = registry.load().unwrap();
    let points = trend::series(&all, "solver_speedup");
    assert_eq!(points.len(), 4);
    assert_eq!(points.last().unwrap().value, 1.5);

    // The injected 2x regression trips the gate; dropping the bad point
    // passes it.
    let verdict = regress::check(
        "solver_speedup",
        &points,
        5,
        0.2,
        regress::Direction::HigherIsBetter,
    )
    .unwrap();
    assert!(verdict.regressed);
    let verdict = regress::check(
        "solver_speedup",
        &points[..3],
        5,
        0.2,
        regress::Direction::HigherIsBetter,
    )
    .unwrap();
    assert!(!verdict.regressed);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn auto_ingest_is_env_gated() {
    // Process-global env var: both halves of the behavior live in this
    // one test so no parallel test observes a half-set variable.
    std::env::remove_var(REGISTRY_ENV);
    let rec = RunRecord::new("p", RunKind::Record, RunStatus::Ok);
    assert!(auto_ingest(rec.clone(), Some(b"bytes")).is_none());
    assert!(Registry::from_env().is_none());

    let dir = tmpdir("autoingest");
    std::env::set_var(REGISTRY_ENV, &dir);
    let stored = auto_ingest(rec, Some(b"bytes")).expect("ingest with env set");
    std::env::remove_var(REGISTRY_ENV);
    assert_eq!(stored.blob_bytes, Some(5));
    let registry = Registry::open(&dir).unwrap();
    let loaded = registry.load().unwrap();
    assert_eq!(loaded.len(), 1);
    assert_eq!(loaded[0].program, "p");
    assert_eq!(
        registry.read_blob(loaded[0].blob_hash.as_ref().unwrap()).unwrap(),
        b"bytes"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
