//! Integration tests: the registry workflow end to end, and the
//! env-gated auto-ingest path every CLI uses.

use light_telemetry::{
    auto_ingest, regress, sha256_hex, trend, Query, Registry, RunKind, RunRecord, RunStatus,
    REGISTRY_ENV,
};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "light-telemetry-it-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_workflow_ingest_query_trend_regress() {
    let dir = tmpdir("workflow");
    let registry = Registry::open(&dir).unwrap();

    // Three healthy bench runs, then one that halves the speedup.
    for (ts, speedup) in [(1000u64, 3.0f64), (2000, 3.1), (3000, 2.9), (4000, 1.5)] {
        let mut rec = RunRecord::new("corpus", RunKind::Bench, RunStatus::Ok);
        rec.ts_ms = ts;
        rec.headline.insert("solver_speedup".into(), speedup);
        registry.ingest(rec, None).unwrap();
    }
    // A diverged doctor run with a blob, queryable by status and sig.
    let mut bad = RunRecord::new("cache4j", RunKind::Doctor, RunStatus::Diverged);
    bad.ts_ms = 2500;
    bad.bug_signature = Some("deadlock".into());
    let stored = registry.ingest(bad, Some(b"recording!")).unwrap();
    assert_eq!(stored.blob_hash.as_deref(), Some(&*sha256_hex(b"recording!")));

    // Typed queries.
    let diverged = registry
        .query(&Query {
            status: Some(RunStatus::Diverged),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(diverged.len(), 1);
    assert_eq!(diverged[0].program, "cache4j");
    let by_sig = registry
        .query(&Query {
            bug_signature: Some("deadlock".into()),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(by_sig.len(), 1);
    let windowed = registry
        .query(&Query {
            kind: Some(RunKind::Bench),
            since_ms: Some(2000),
            until_ms: Some(3000),
            ..Default::default()
        })
        .unwrap();
    assert_eq!(windowed.len(), 2);

    // Trend over the bench runs; the doctor run has no headline and is
    // skipped by the series extractor.
    let all = registry.load().unwrap();
    let points = trend::series(&all, "solver_speedup");
    assert_eq!(points.len(), 4);
    assert_eq!(points.last().unwrap().value, 1.5);

    // The injected 2x regression trips the gate; dropping the bad point
    // passes it.
    let verdict = regress::check(
        "solver_speedup",
        &points,
        5,
        0.2,
        regress::Direction::HigherIsBetter,
    )
    .unwrap();
    assert!(verdict.regressed);
    let verdict = regress::check(
        "solver_speedup",
        &points[..3],
        5,
        0.2,
        regress::Direction::HigherIsBetter,
    )
    .unwrap();
    assert!(!verdict.regressed);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn auto_ingest_is_env_gated() {
    // Process-global env var: both halves of the behavior live in this
    // one test so no parallel test observes a half-set variable.
    std::env::remove_var(REGISTRY_ENV);
    let rec = RunRecord::new("p", RunKind::Record, RunStatus::Ok);
    assert!(auto_ingest(rec.clone(), Some(b"bytes")).is_none());
    assert!(Registry::from_env().is_none());

    let dir = tmpdir("autoingest");
    std::env::set_var(REGISTRY_ENV, &dir);
    let stored = auto_ingest(rec, Some(b"bytes")).expect("ingest with env set");
    std::env::remove_var(REGISTRY_ENV);
    assert_eq!(stored.blob_bytes, Some(5));
    let registry = Registry::open(&dir).unwrap();
    let loaded = registry.load().unwrap();
    assert_eq!(loaded.len(), 1);
    assert_eq!(loaded[0].program, "p");
    assert_eq!(
        registry.read_blob(loaded[0].blob_hash.as_ref().unwrap()).unwrap(),
        b"bytes"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// N threads hammering one registry concurrently: every index line must
/// parse (O_APPEND single-write atomicity — no interleaved records),
/// every ingested blob must be present and readable, and dedup must
/// leave exactly one file per unique content.
#[test]
fn concurrent_ingest_keeps_the_index_and_blobs_consistent() {
    const THREADS: u64 = 16;
    const PER_THREAD: u64 = 25;
    let dir = tmpdir("concurrent");
    let registry = Registry::open_sharded(&dir).unwrap();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let mut rec = RunRecord::new(
                        format!("worker-{t}"),
                        RunKind::Serve,
                        RunStatus::Ok,
                    );
                    rec.ts_ms = t * 1000 + i;
                    // Long provenance widens the write, stressing the
                    // single-write atomicity the reader depends on.
                    rec.provenance = Some(format!("thread {t} iteration {i} {}", "x".repeat(512)));
                    // Half the payloads collide across threads (dedup),
                    // half are unique to this (thread, iteration).
                    let blob = if i % 2 == 0 {
                        format!("shared-payload-{i}")
                    } else {
                        format!("unique-payload-{t}-{i}")
                    };
                    registry.ingest(rec, Some(blob.as_bytes())).unwrap();
                }
            });
        }
    });

    // Every line parsed, none skipped: no torn or interleaved records.
    let (records, stats) = registry.load_with_stats().unwrap();
    assert_eq!(records.len(), (THREADS * PER_THREAD) as usize);
    assert_eq!(stats.skipped, 0);
    assert_eq!(stats.lines, THREADS * PER_THREAD);
    // Per-thread completeness: each thread's records all arrived.
    for t in 0..THREADS {
        let mine = records
            .iter()
            .filter(|r| r.program == format!("worker-{t}"))
            .count();
        assert_eq!(mine, PER_THREAD as usize, "thread {t} lost records");
    }
    // No lost blobs: every referenced hash is readable, and the blob
    // count matches the unique payload count exactly (dedup, no strays).
    let mut hashes = std::collections::HashSet::new();
    for rec in &records {
        let hash = rec.blob_hash.as_ref().expect("every ingest carried a blob");
        assert!(!registry.read_blob(hash).unwrap().is_empty());
        hashes.insert(hash.clone());
    }
    let shared = (PER_THREAD).div_ceil(2); // i = 0, 2, 4, ...
    let unique = THREADS * (PER_THREAD / 2); // per-thread odd i
    assert_eq!(hashes.len() as u64, shared + unique);
    let mut on_disk = 0;
    for entry in std::fs::read_dir(dir.join("blobs")).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_dir() {
            on_disk += std::fs::read_dir(entry.path()).unwrap().count();
        } else {
            on_disk += 1;
        }
    }
    assert_eq!(on_disk as u64, shared + unique, "stray or lost blob files");
    std::fs::remove_dir_all(&dir).unwrap();
}
