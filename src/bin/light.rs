//! The `light` command-line tool: run, analyze, record, replay and hunt
//! bugs in LIR programs.
//!
//! ```sh
//! light run prog.lir [args...]            # execute a program
//! light analyze prog.lir                  # static analysis report
//! light record prog.lir -o run.lrec [args...]   # record an original run
//! light replay prog.lir run.lrec          # replay a recording
//! light hunt prog.lir -o bug.lrec [args...]     # chaos-search for a bug
//! ```
//!
//! Common flags: `--seed N` (default 0), `--chaos` (record under chaos
//! scheduling), `--seeds A..B` (hunt range, default 0..200).

use light_replay::light::{load_recording, save_recording, Light};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    program: PathBuf,
    args: Vec<i64>,
    output: Option<PathBuf>,
    recording: Option<PathBuf>,
    seed: u64,
    chaos: bool,
    seeds: std::ops::Range<u64>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  light run <prog.lir> [args...]\n  light analyze <prog.lir>\n  \
         light record <prog.lir> -o <out.lrec> [args...] [--seed N] [--chaos]\n  \
         light replay <prog.lir> <rec.lrec>\n  \
         light hunt <prog.lir> -o <out.lrec> [args...] [--seeds A..B]"
    );
    ExitCode::from(2)
}

fn parse_options(mut argv: Vec<String>) -> Result<Options, String> {
    let mut options = Options {
        program: PathBuf::new(),
        args: Vec::new(),
        output: None,
        recording: None,
        seed: 0,
        chaos: false,
        seeds: 0..200,
    };
    let mut positional: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "-o" | "--output" => {
                i += 1;
                options.output = Some(PathBuf::from(
                    argv.get(i).ok_or("missing value for -o")?,
                ));
            }
            "--seed" => {
                i += 1;
                options.seed = argv
                    .get(i)
                    .ok_or("missing value for --seed")?
                    .parse()
                    .map_err(|_| "invalid --seed")?;
            }
            "--chaos" => options.chaos = true,
            "--seeds" => {
                i += 1;
                let spec = argv.get(i).ok_or("missing value for --seeds")?;
                let (a, b) = spec.split_once("..").ok_or("--seeds expects A..B")?;
                options.seeds = a.parse().map_err(|_| "invalid --seeds")?
                    ..b.parse().map_err(|_| "invalid --seeds")?;
            }
            other => positional.push(other.to_owned()),
        }
        i += 1;
    }
    argv.clear();
    let mut positional = positional.into_iter();
    options.program = PathBuf::from(positional.next().ok_or("missing program path")?);
    for p in positional {
        if p.ends_with(".lrec") {
            options.recording = Some(PathBuf::from(p));
        } else {
            options.args.push(p.parse().map_err(|_| {
                format!("program arguments must be integers, got `{p}`")
            })?);
        }
    }
    Ok(options)
}

fn load_program(path: &PathBuf) -> Result<Arc<lir::Program>, String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    lir::parse(&source)
        .map(Arc::new)
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let command = argv.remove(0);
    let options = match parse_options(argv) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match run_command(&command, options) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_command(command: &str, options: Options) -> Result<ExitCode, String> {
    let program = load_program(&options.program)?;
    match command {
        "run" => {
            let out = light_replay::runtime::run(
                &program,
                &options.args,
                light_replay::runtime::ExecConfig::default(),
            )
            .map_err(|e| e.to_string())?;
            for line in &out.prints {
                println!("{line}");
            }
            if let Some(fault) = &out.fault {
                eprintln!("fault: {fault}");
                return Ok(ExitCode::FAILURE);
            }
            eprintln!(
                "ok: {} threads, {} instrumented events, {:?}",
                out.stats.threads, out.stats.events, out.stats.duration
            );
            Ok(ExitCode::SUCCESS)
        }
        "analyze" => {
            let analysis = light_replay::analysis::analyze(&program);
            println!("functions: {}", program.funcs.len());
            println!("thread roots: {}", analysis.call_graph.roots.len());
            for (i, name) in program.globals.iter().enumerate() {
                let g = lir::GlobalId(i as u32);
                println!(
                    "global {name}: shared={} guarded={}",
                    analysis.policy.global_shared(g),
                    analysis.guarded.global_guarded(g)
                );
            }
            for (i, name) in program.field_names.iter().enumerate() {
                let f = lir::FieldId(i as u32);
                println!(
                    "field {name}: shared={} guarded={}",
                    analysis.policy.field_shared(f),
                    analysis.guarded.field_guarded(f)
                );
            }
            println!("guarded allocation sites: {}", analysis.guarded_allocs.len());
            println!("static race pairs: {}", analysis.races.len());
            Ok(ExitCode::SUCCESS)
        }
        "record" => {
            let output = options.output.ok_or("record needs -o <out.lrec>")?;
            let light = Light::new(program);
            let (recording, outcome) = if options.chaos {
                light.record_chaos(&options.args, options.seed)
            } else {
                light.record(&options.args, options.seed)
            }
            .map_err(|e| e.to_string())?;
            save_recording(&recording, &output).map_err(|e| e.to_string())?;
            eprintln!(
                "recorded {} deps + {} runs ({} long-integers) -> {}",
                recording.stats.deps,
                recording.stats.runs,
                recording.space_longs(),
                output.display()
            );
            if let Some(fault) = &outcome.fault {
                eprintln!("original run faulted: {fault}");
            }
            Ok(ExitCode::SUCCESS)
        }
        "replay" => {
            let rec_path = options.recording.ok_or("replay needs a .lrec file")?;
            let recording = load_recording(&rec_path).map_err(|e| e.to_string())?;
            let light = Light::new(program);
            let report = light.replay(&recording).map_err(|e| e.to_string())?;
            for line in &report.outcome.prints {
                println!("{line}");
            }
            eprintln!(
                "schedule: {} ordered events, {} solver decisions",
                report.schedule_len, report.solve_stats.decisions
            );
            match (&recording.fault, &report.outcome.fault) {
                (Some(orig), Some(rep)) if report.correlated => {
                    eprintln!("reproduced: {rep}");
                    eprintln!("correlated with original: {orig}");
                }
                (None, None) => eprintln!("clean replay, output matches recording semantics"),
                (orig, rep) => {
                    eprintln!("NOT correlated: original {orig:?}, replay {rep:?}");
                    return Ok(ExitCode::FAILURE);
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "hunt" => {
            let output = options.output.ok_or("hunt needs -o <out.lrec>")?;
            let light = Light::new(program);
            match light.find_bug(&options.args, options.seeds.clone()) {
                Some((recording, outcome)) => {
                    let fault = outcome.fault.as_ref().expect("bug found");
                    save_recording(&recording, &output).map_err(|e| e.to_string())?;
                    eprintln!("found: {fault}");
                    eprintln!("recording -> {}", output.display());
                    Ok(ExitCode::SUCCESS)
                }
                None => {
                    eprintln!(
                        "no bug found in seeds {:?} — try a wider --seeds range",
                        options.seeds
                    );
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        other => {
            eprintln!("unknown command `{other}`");
            Ok(usage())
        }
    }
}
