//! Facade crate: re-exports the whole Light reproduction workspace.
pub use lir;
pub use light_analysis as analysis;
pub use light_baselines as baselines;
pub use light_core as light;
pub use light_explore as explore;
pub use light_obs as obs;
pub use light_runtime as runtime;
pub use light_serve as serve;
pub use light_solver as solver;
pub use light_telemetry as telemetry;
pub use light_workloads as workloads;
