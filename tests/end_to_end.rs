//! Workspace-level integration tests: the whole pipeline through the
//! facade crate — parse → analyze → record → solve → replay — plus
//! cross-tool comparisons on the workload catalog.

use light_replay::baselines::{Chimera, Clap, LeapRecorder, StrideRecorder};
use light_replay::light::{Light, LightConfig};
use light_replay::runtime::{
    run, ExecConfig, NondetMode, NullRecorder, SchedulerSpec,
};
use light_replay::workloads::{benchmarks, bugs};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn facade_reexports_compose() {
    let program = Arc::new(
        lir::parse("global x; fn main() { x = 1; assert(x == 1); }").unwrap(),
    );
    let light = Light::new(Arc::clone(&program));
    let (recording, original) = light.record(&[], 0).unwrap();
    assert!(original.completed());
    let report = light.replay(&recording).unwrap();
    assert!(report.correlated);
}

#[test]
fn leap_replays_a_buggy_recording() {
    // Leap's stronger recording also supports deterministic replay; check
    // the whole loop on the cache4j bug.
    let bug = bugs().into_iter().find(|b| b.name == "cache4j").unwrap();
    let program = bug.program();
    let analysis = light_replay::analysis::analyze(&program);

    let mut reproduced = false;
    for seed in bug.search_seeds.clone() {
        let recorder = LeapRecorder::new();
        let config = ExecConfig {
            recorder: recorder.clone(),
            scheduler: SchedulerSpec::Chaos { seed },
            policy: analysis.policy.clone(),
            nondet: NondetMode::Real { seed },
            ..ExecConfig::default()
        };
        let out = run(&program, &bug.args, config).unwrap();
        if out.program_bug().is_none() {
            continue;
        }
        let recording = recorder.take_recording(out.fault.clone(), &bug.args);
        let schedule = recording.schedule().expect("solvable");
        let replay_config = ExecConfig {
            recorder: Arc::new(NullRecorder),
            scheduler: SchedulerSpec::Controlled {
                schedule,
                timeout: Duration::from_secs(10),
            },
            policy: analysis.policy.clone(),
            nondet: NondetMode::Scripted(recording.nondet.clone()),
            wake_all_on_notify: true,
            ..ExecConfig::default()
        };
        let replay = run(&program, &bug.args, replay_config).unwrap();
        assert!(
            light_replay::light::faults_correlate(
                recording.fault.as_ref(),
                replay.fault.as_ref()
            ),
            "Leap replay should be deterministic: {:?} vs {:?}",
            recording.fault,
            replay.fault
        );
        reproduced = true;
        break;
    }
    assert!(reproduced, "no seed exposed the bug for Leap");
}

#[test]
fn stride_replays_a_buggy_recording() {
    let bug = bugs()
        .into_iter()
        .find(|b| b.name == "tomcat-50885")
        .unwrap();
    let program = bug.program();
    let analysis = light_replay::analysis::analyze(&program);

    let mut reproduced = false;
    for seed in bug.search_seeds.clone() {
        let recorder = StrideRecorder::new();
        let config = ExecConfig {
            recorder: recorder.clone(),
            scheduler: SchedulerSpec::Chaos { seed },
            policy: analysis.policy.clone(),
            nondet: NondetMode::Real { seed },
            ..ExecConfig::default()
        };
        let out = run(&program, &bug.args, config).unwrap();
        if out.program_bug().is_none() {
            continue;
        }
        let recording = recorder.take_recording(out.fault.clone(), &bug.args);
        let schedule = recording.schedule().expect("solvable");
        let replay_config = ExecConfig {
            recorder: Arc::new(NullRecorder),
            scheduler: SchedulerSpec::Controlled {
                schedule,
                timeout: Duration::from_secs(10),
            },
            policy: analysis.policy.clone(),
            nondet: NondetMode::Scripted(recording.nondet.clone()),
            wake_all_on_notify: true,
            ..ExecConfig::default()
        };
        let replay = run(&program, &bug.args, replay_config).unwrap();
        assert!(
            light_replay::light::faults_correlate(
                recording.fault.as_ref(),
                replay.fault.as_ref()
            ),
            "Stride replay should be deterministic: {:?} vs {:?}",
            recording.fault,
            replay.fault
        );
        reproduced = true;
        break;
    }
    assert!(reproduced, "no seed exposed the bug for Stride");
}

#[test]
fn figure6_matrix_matches_paper_shape() {
    // The paper's headline comparison: Light 8/8, CLAP misses the five
    // map/hash bugs, Chimera misses the three serialized bugs.
    let mut light_ok = 0;
    let mut clap_expected = 0;
    let mut chimera_expected = 0;
    let all = bugs();
    for bug in &all {
        let program = bug.program();

        let light = Light::new(Arc::clone(&program));
        if let Some((recording, _)) = light.find_bug(&bug.args, bug.search_seeds.clone()) {
            if light.replay(&recording).map(|r| r.correlated).unwrap_or(false) {
                light_ok += 1;
            }
        }

        let clap = Clap::new(Arc::clone(&program));
        let clap_unsupported = !clap.unsupported_constructs().is_empty();
        if clap_unsupported != bug.clap_supported {
            clap_expected += 1;
        }

        let chimera = Chimera::new(Arc::clone(&program));
        let outcome = chimera
            .hunt_and_reproduce(&bug.args, bug.search_seeds.clone())
            .unwrap();
        if outcome.reproduced() == bug.chimera_reproducible {
            chimera_expected += 1;
        } else {
            panic!(
                "{}: chimera outcome {outcome:?}, expected reproducible={}",
                bug.name, bug.chimera_reproducible
            );
        }
    }
    assert_eq!(light_ok, all.len(), "Light must reproduce all bugs");
    assert_eq!(clap_expected, all.len(), "CLAP support split must match");
    assert_eq!(chimera_expected, all.len());
}

#[test]
fn space_ordering_light_below_leap_across_catalog() {
    // Figure 5's qualitative claim, checked end to end on a sample of the
    // catalog: Light records less than Leap.
    // dc.lusearch is excluded: its index map is init-only and entirely
    // uninstrumented, leaving only constant-size lifecycle records on both
    // sides (both negligible — the interesting claim needs real traffic).
    for name in ["srv.cache4j", "stamp.vacation", "stamp.genome", "jgf.series"] {
        let w = benchmarks().into_iter().find(|w| w.name == name).unwrap();
        let program = w.program();
        // Default scale: at trivial sizes the fixed per-thread lifecycle
        // records dominate and the comparison is meaningless.
        let args: Vec<i64> = w.args(3, 1);
        let light = Light::new(Arc::clone(&program));

        let recorder = light.make_recorder();
        let config = ExecConfig {
            recorder: recorder.clone(),
            policy: light.analysis().policy.clone(),
            ..ExecConfig::default()
        };
        let out = run(&program, &args, config).unwrap();
        assert!(out.completed());
        let light_space = recorder.take_recording(None, &args).space_longs();

        let leap = LeapRecorder::new();
        let config = ExecConfig {
            recorder: leap.clone(),
            policy: light.analysis().policy.clone(),
            ..ExecConfig::default()
        };
        let out = run(&program, &args, config).unwrap();
        assert!(out.completed());
        let leap_space = leap.take_recording(None, &args).space_longs();

        assert!(
            light_space < leap_space,
            "{name}: Light {light_space} !< Leap {leap_space}"
        );
    }
}

#[test]
fn variant_space_monotonicity_on_catalog_sample() {
    for name in ["srv.tomcat-pool", "stamp.labyrinth"] {
        let w = benchmarks().into_iter().find(|w| w.name == name).unwrap();
        let program = w.program();
        let args: Vec<i64> = w.args(3, 1).iter().map(|&a| a.min(50)).collect();
        let space_of = |cfg: LightConfig| {
            let light = Light::with_config(Arc::clone(&program), cfg);
            let recorder = light.make_recorder();
            let config = ExecConfig {
                recorder: recorder.clone(),
                // Chaos pins the interleaving, so the three variants see
                // identical event sequences and space is comparable.
                scheduler: SchedulerSpec::Chaos { seed: 5 },
                policy: light.analysis().policy.clone(),
                ..ExecConfig::default()
            };
            let out = run(&program, &args, config).unwrap();
            assert!(out.completed(), "{name}: {:?}", out.fault);
            recorder.take_recording(None, &args).space_longs()
        };
        let basic = space_of(LightConfig::basic());
        let o1 = space_of(LightConfig::o1_only());
        let both = space_of(LightConfig::default());
        // Chaos maximizes context switches and the FIFO monitor handoff
        // alternates contending threads, so non-interleaved runs are near
        // worst-case short and O1's run encoding can slightly lose to
        // per-access deps. The optimization targets realistic (free)
        // schedules — here only bound the regression.
        let run_jitter = basic / 5 + 16;
        assert!(
            o1 <= basic + run_jitter,
            "{name}: O1 {o1} > basic {basic} beyond short-run jitter"
        );
        // O2 removes records for guarded locations, but skipping them also
        // shifts the direct-mapped run-slot collision pattern, which can
        // split a few runs differently; allow that small jitter.
        let tolerance = o1 / 20 + 8;
        assert!(
            both <= o1 + tolerance,
            "{name}: both {both} > O1 {o1} beyond collision jitter"
        );
    }
}
