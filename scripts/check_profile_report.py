#!/usr/bin/env python3
"""Validate a light-profile JSON report against the light-profile/v1 schema.

Checks the stable envelope `light-profile` emits with `--json`: the
schema name, that every top-level section exists with the right shape,
that coverage satisfies the >= 95% attribution acceptance criterion, and
that per-variable/per-stripe rows carry the documented numeric fields.

Usage: python3 scripts/check_profile_report.py <report.json>

Exits 0 when the report is valid, 1 otherwise (problems on stderr).
"""

import json
import sys
from pathlib import Path

SCHEMA_NAME = "light-profile/v1"

VAR_FIELDS = (
    "key", "stripe", "deps", "runs", "log_longs",
    "prec_hits", "o1_merges", "o2_elisions",
)
STRIPE_FIELDS = ("stripe", "records", "contention")
LINE_FIELDS = (
    "line", "deps", "runs", "log_longs", "prec_hits",
    "o1_merges", "o2_elisions", "elided_longs", "ghost_ops",
)
SCHED_FIELDS = ("decisions", "stalls", "stall_ns", "parks", "spec_fails")


def fail(msg: str) -> None:
    print(f"check_profile_report: {msg}", file=sys.stderr)


def check_numeric_rows(doc: dict, section: str, fields, problems: list) -> None:
    rows = doc.get(section)
    if not isinstance(rows, list):
        problems.append(f"{section}: expected an array")
        return
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"{section}[{i}]: expected an object")
            continue
        for field in fields:
            if not isinstance(row.get(field), (int, float)):
                problems.append(f"{section}[{i}].{field}: missing or non-numeric")


def check(doc) -> list:
    problems = []
    if not isinstance(doc, dict):
        return ["report is not a JSON object"]

    schema = doc.get("schema")
    if not isinstance(schema, dict) or schema.get("name") != SCHEMA_NAME:
        problems.append(f"schema.name must be {SCHEMA_NAME!r}")
    elif not isinstance(schema.get("program"), str):
        problems.append("schema.program: missing or not a string")

    coverage = doc.get("coverage")
    if not isinstance(coverage, dict):
        problems.append("coverage: expected an object")
    else:
        for field in ("units", "attributed", "fraction", "with_line_site"):
            if not isinstance(coverage.get(field), (int, float)):
                problems.append(f"coverage.{field}: missing or non-numeric")
        fraction = coverage.get("fraction")
        if isinstance(fraction, (int, float)) and fraction < 0.95:
            problems.append(
                f"coverage.fraction {fraction} below the 0.95 acceptance criterion"
            )

    totals = doc.get("totals")
    if not isinstance(totals, dict) or not all(
        isinstance(v, int) for v in totals.values()
    ):
        problems.append("totals: expected an object of integer event counts")

    check_numeric_rows(doc, "vars", VAR_FIELDS, problems)
    if isinstance(doc.get("vars"), list):
        for i, row in enumerate(doc["vars"]):
            if isinstance(row, dict) and not isinstance(row.get("name"), str):
                problems.append(f"vars[{i}].name: missing or not a string")
    check_numeric_rows(doc, "stripes", STRIPE_FIELDS, problems)
    check_numeric_rows(doc, "lines", LINE_FIELDS, problems)

    sched = doc.get("sched")
    if not isinstance(sched, dict):
        problems.append("sched: expected an object")
    else:
        for field in SCHED_FIELDS:
            if not isinstance(sched.get(field), (int, float)):
                problems.append(f"sched.{field}: missing or non-numeric")

    solver = doc.get("solver")
    if not isinstance(solver, dict):
        problems.append("solver: expected an object")
    else:
        for field in ("decisions", "backtracks"):
            if not isinstance(solver.get(field), (int, float)):
                problems.append(f"solver.{field}: missing or non-numeric")
        if not isinstance(solver.get("groups"), dict):
            problems.append("solver.groups: expected an object")

    return problems


def main() -> int:
    if len(sys.argv) != 2:
        fail("usage: check_profile_report.py <report.json>")
        return 1
    path = Path(sys.argv[1])
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")
        return 1
    problems = check(doc)
    for p in problems:
        fail(p)
    if problems:
        return 1
    n_vars = len(doc.get("vars", []))
    n_lines = len(doc.get("lines", []))
    fraction = doc.get("coverage", {}).get("fraction")
    print(
        f"check_profile_report: {path.name} valid "
        f"({n_vars} vars, {n_lines} lines, coverage {fraction})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
