#!/usr/bin/env python3
"""Aggregate results/<name>.json bench outputs into BENCH_pipeline.json.

Every harness writes a structured result (results/<name>.json, via the
light-bench Report plumbing). This script folds all of them into one
document at the repo root so the perf trajectory is tracked across PRs
by diffing a single file. Alongside the verbatim per-bench documents it
lifts a few headline numbers (medians, overhead fractions) into a flat
`headline` map for at-a-glance comparison.

The output is deterministic: benches are sorted by name and no
timestamps are added, so reruns on identical results are byte-identical.

Two side channels ride along on a (non --check) rewrite:

- BENCH_history.jsonl gets one dated line per distinct pipeline
  document (keyed by its SHA-256), so the headline trajectory is
  readable without walking git history.
- When LIGHT_REGISTRY is set, the document is ingested into the
  light-watch run registry (kind "bench", blob = BENCH_pipeline.json)
  using the same blobs/<hash> + index.jsonl layout as the Rust side,
  so `light-watch trend`/`regress` see script-driven summaries too.

Usage: python3 scripts/bench_summary.py [--check]

--check exits nonzero if BENCH_pipeline.json is missing or stale
instead of rewriting it (for CI).
"""

import datetime
import hashlib
import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
OUT = ROOT / "BENCH_pipeline.json"
HISTORY = ROOT / "BENCH_history.jsonl"

SCHEMA = "light-bench-pipeline/v1"
HISTORY_SCHEMA = "light-bench-history/v1"
REGISTRY_SCHEMA = "light-watch/v1"


def headline_for(name: str, doc: dict) -> dict:
    """Lift the few numbers worth eyeballing across PRs."""
    head = {}
    rows = doc.get("rows")
    if isinstance(rows, list):
        head["rows"] = len(rows)
    for key in (
        "median_overhead",
        "solver_speedup",
        "criterion_met",
        "serve_ingest_rps",
        "serve_obs_overhead",
        "mem_accounting_overhead",
        "peak_log_bytes",
        "record_overhead_scaling",
        "record_overhead_lo",
        "record_overhead_hi",
        "record_events_per_sec",
    ):
        if key in doc:
            head[key] = doc[key]
    # Medians of common per-row timing fields, when present.
    if isinstance(rows, list):
        for field in ("replay_ms", "solve_ms", "plain_ms", "checked_ms", "flight_ms"):
            xs = sorted(
                r[field]
                for r in rows
                if isinstance(r, dict) and isinstance(r.get(field), (int, float))
            )
            if xs:
                head[f"median_{field}"] = xs[len(xs) // 2]
    return head


def build() -> dict:
    benches = {}
    if not RESULTS.is_dir():
        print(f"bench_summary: results directory {RESULTS} is missing", file=sys.stderr)
        return {"schema": SCHEMA, "benches": {}, "headline": {}}
    for path in sorted(RESULTS.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_summary: skipping {path.name}: {e}", file=sys.stderr)
            continue
        if not isinstance(doc, dict):
            print(f"bench_summary: skipping {path.name}: not an object", file=sys.stderr)
            continue
        benches[path.stem] = doc
    return {
        "schema": SCHEMA,
        "benches": benches,
        "headline": {name: headline_for(name, doc) for name, doc in sorted(benches.items())},
    }


def flat_headline(doc: dict) -> dict:
    """`headline` flattened to `<bench>.<key>` -> float, for trending."""
    flat = {}
    for bench, head in doc.get("headline", {}).items():
        for key, value in head.items():
            if isinstance(value, bool):
                flat[f"{bench}.{key}"] = 1.0 if value else 0.0
            elif isinstance(value, (int, float)):
                flat[f"{bench}.{key}"] = float(value)
    return flat


def append_history(doc: dict, rendered: str) -> None:
    """One dated line per distinct pipeline document.

    Keyed by the document's SHA-256: rerunning on identical results
    appends nothing, so the history stays one line per real change.
    """
    digest = hashlib.sha256(rendered.encode()).hexdigest()
    if HISTORY.exists():
        lines = HISTORY.read_text().splitlines()
        if lines:
            try:
                if json.loads(lines[-1]).get("sha256") == digest:
                    return
            except json.JSONDecodeError:
                pass
    entry = {
        "schema": HISTORY_SCHEMA,
        "date": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d"),
        "sha256": digest,
        "benches": len(doc["benches"]),
        "headline": flat_headline(doc),
    }
    with HISTORY.open("a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"bench_summary: appended {HISTORY.name} entry {digest[:12]}")


def ingest_registry(doc: dict, rendered: str) -> None:
    """Best-effort light-watch registry ingest, gated on LIGHT_REGISTRY.

    Mirrors the Rust registry layout (blobs/<sha256> + index.jsonl with
    light-watch/v1 lines) so entries written here are indistinguishable
    from CLI-ingested ones.
    """
    root = os.environ.get("LIGHT_REGISTRY")
    if not root:
        return
    try:
        root = Path(root)
        blobs = root / "blobs"
        blob = rendered.encode()
        digest = hashlib.sha256(blob).hexdigest()
        # Honor the registry's layout marker: sharded registries (the
        # light-serve default) fan blobs out by hash prefix.
        if (root / "sharded").exists():
            blobs = blobs / digest[:2]
        blobs.mkdir(parents=True, exist_ok=True)
        blob_path = blobs / digest
        if not blob_path.exists():
            tmp = blobs / f".tmp-{os.getpid()}"
            tmp.write_bytes(blob)
            tmp.rename(blob_path)
        record = {
            "schema": REGISTRY_SCHEMA,
            "ts_ms": int(datetime.datetime.now(datetime.timezone.utc).timestamp() * 1000),
            "program": "bench_summary",
            "kind": "bench",
            "status": "ok",
            "blob_hash": digest,
            "blob_bytes": len(blob),
            "headline": flat_headline(doc),
        }
        with (root / "index.jsonl").open("a") as f:
            f.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"bench_summary: ingested into registry at {root}")
    except OSError as e:
        print(f"bench_summary: registry ingest failed (ignored): {e}", file=sys.stderr)


def main() -> int:
    check = "--check" in sys.argv[1:]
    doc = build()
    if not doc["benches"]:
        print(f"bench_summary: no results/*.json found under {RESULTS}", file=sys.stderr)
        return 1
    rendered = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if check:
        if not OUT.exists() or OUT.read_text() != rendered:
            print(f"bench_summary: {OUT.name} is stale; rerun scripts/bench_summary.py",
                  file=sys.stderr)
            return 1
        print(f"bench_summary: {OUT.name} is up to date ({len(doc['benches'])} benches)")
        return 0
    OUT.write_text(rendered)
    print(f"bench_summary: wrote {OUT} ({len(doc['benches'])} benches)")
    append_history(doc, rendered)
    ingest_registry(doc, rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
