#!/usr/bin/env python3
"""Aggregate results/<name>.json bench outputs into BENCH_pipeline.json.

Every harness writes a structured result (results/<name>.json, via the
light-bench Report plumbing). This script folds all of them into one
document at the repo root so the perf trajectory is tracked across PRs
by diffing a single file. Alongside the verbatim per-bench documents it
lifts a few headline numbers (medians, overhead fractions) into a flat
`headline` map for at-a-glance comparison.

The output is deterministic: benches are sorted by name and no
timestamps are added, so reruns on identical results are byte-identical.

Usage: python3 scripts/bench_summary.py [--check]

--check exits nonzero if BENCH_pipeline.json is missing or stale
instead of rewriting it (for CI).
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
OUT = ROOT / "BENCH_pipeline.json"

SCHEMA = "light-bench-pipeline/v1"


def headline_for(name: str, doc: dict) -> dict:
    """Lift the few numbers worth eyeballing across PRs."""
    head = {}
    rows = doc.get("rows")
    if isinstance(rows, list):
        head["rows"] = len(rows)
    for key in ("median_overhead", "solver_speedup", "criterion_met"):
        if key in doc:
            head[key] = doc[key]
    # Medians of common per-row timing fields, when present.
    if isinstance(rows, list):
        for field in ("replay_ms", "solve_ms", "plain_ms", "checked_ms", "flight_ms"):
            xs = sorted(
                r[field]
                for r in rows
                if isinstance(r, dict) and isinstance(r.get(field), (int, float))
            )
            if xs:
                head[f"median_{field}"] = xs[len(xs) // 2]
    return head


def build() -> dict:
    benches = {}
    if not RESULTS.is_dir():
        print(f"bench_summary: results directory {RESULTS} is missing", file=sys.stderr)
        return {"schema": SCHEMA, "benches": {}, "headline": {}}
    for path in sorted(RESULTS.glob("*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_summary: skipping {path.name}: {e}", file=sys.stderr)
            continue
        if not isinstance(doc, dict):
            print(f"bench_summary: skipping {path.name}: not an object", file=sys.stderr)
            continue
        benches[path.stem] = doc
    return {
        "schema": SCHEMA,
        "benches": benches,
        "headline": {name: headline_for(name, doc) for name, doc in sorted(benches.items())},
    }


def main() -> int:
    check = "--check" in sys.argv[1:]
    doc = build()
    if not doc["benches"]:
        print(f"bench_summary: no results/*.json found under {RESULTS}", file=sys.stderr)
        return 1
    rendered = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if check:
        if not OUT.exists() or OUT.read_text() != rendered:
            print(f"bench_summary: {OUT.name} is stale; rerun scripts/bench_summary.py",
                  file=sys.stderr)
            return 1
        print(f"bench_summary: {OUT.name} is up to date ({len(doc['benches'])} benches)")
        return 0
    OUT.write_text(rendered)
    print(f"bench_summary: wrote {OUT} ({len(doc['benches'])} benches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
