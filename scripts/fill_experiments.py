#!/usr/bin/env python3
"""Splice the harness outputs in results/ into EXPERIMENTS.md placeholders.

Usage: python3 scripts/fill_experiments.py
"""
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"


def section(path: Path, start: str, end: str | None = None) -> str:
    text = path.read_text()
    i = text.index(start)
    if end is None:
        return text[i:].rstrip()
    j = text.index(end, i)
    return text[i:j].rstrip()


def code_block(body: str) -> str:
    return "```text\n" + body.strip() + "\n```"


def main() -> None:
    exp = (ROOT / "EXPERIMENTS.md").read_text()

    fig4 = RESULTS / "fig4_time.txt"
    fig5 = RESULTS / "fig5_space.txt"
    fig6 = RESULTS / "fig6_bugs.txt"
    fig7 = RESULTS / "fig7_breakdown.txt"
    table1 = RESULTS / "table1_replay.txt"

    fills = {
        "<!-- FIG4_AGGREGATE -->": code_block(
            section(fig4, "== Aggregate time overhead statistics")
        ),
        "<!-- FIG5_AGGREGATE -->": code_block(
            section(fig5, "== Aggregate space statistics")
        ),
        "<!-- FIG6_TABLE -->": code_block(fig6.read_text()),
        "<!-- TABLE1 -->": code_block(table1.read_text()),
        "<!-- FIG7_SUMMARY -->": code_block(
            section(fig7, "Space summary:")
        ),
    }
    for marker, content in fills.items():
        if marker not in exp:
            raise SystemExit(f"marker {marker} missing from EXPERIMENTS.md")
        exp = exp.replace(marker, content)

    # Refuse to leave placeholders behind.
    leftovers = re.findall(r"<!-- [A-Z0-9_]+ -->", exp)
    if leftovers:
        raise SystemExit(f"unfilled placeholders: {leftovers}")

    (ROOT / "EXPERIMENTS.md").write_text(exp)
    print("EXPERIMENTS.md filled")


if __name__ == "__main__":
    main()
