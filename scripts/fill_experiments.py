#!/usr/bin/env python3
"""Splice the harness results in results/ into EXPERIMENTS.md placeholders.

The harnesses emit structured JSON (results/<name>.json, written by the
light-bench Report plumbing from the unified metric snapshots) plus a
plain-text transcript (results/<name>.txt). This script is JSON-first:
tables are regenerated from the structured data, falling back to
scraping the text transcript only when a JSON artifact is missing.

Usage: python3 scripts/fill_experiments.py
"""
import json
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"


def load_json(name: str):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def text_section(name: str, start: str, end: str | None = None) -> str:
    """Fallback: cut a section out of the text transcript."""
    text = (RESULTS / f"{name}.txt").read_text()
    i = text.index(start)
    if end is None:
        return text[i:].rstrip()
    j = text.index(end, i)
    return text[i:j].rstrip()


def code_block(body: str) -> str:
    return "```text\n" + body.strip() + "\n```"


def aggregate_table(doc, title: str, unit_fmt: str) -> str:
    """Rebuilds the Leap/Stride/Light aggregate table from JSON."""
    agg = doc["aggregate"]
    lines = [title, f"{'':<10} {'Leap':>12} {'Stride':>12} {'Light':>12}"]
    for row, key in (
        ("average", "average"),
        ("median", "median"),
        ("minimum", "min"),
        ("maximum", "max"),
    ):
        lines.append(
            f"{row:<10} "
            + " ".join(
                format(agg[tool][key], unit_fmt).rjust(12)
                for tool in ("leap", "stride", "light")
            )
        )
    return "\n".join(lines)


def fig4_block() -> str:
    doc = load_json("fig4_time")
    if doc is None:
        return code_block(
            text_section("fig4_time", "== Aggregate time overhead statistics")
        )
    body = aggregate_table(
        doc, "== Aggregate time overhead statistics (Section 5.2 table) ==", ".2f"
    )
    sc = doc["shape_check"]
    verdict = "HOLDS" if sc["holds"] else "DOES NOT HOLD"
    body += (
        f"\n\nPaper's shape check: Light average ({sc['light_avg']:.2f}x) well below "
        f"Leap ({sc['leap_avg']:.2f}x) and Stride ({sc['stride_avg']:.2f}x): {verdict}"
    )
    return code_block(body)


def fig5_block() -> str:
    doc = load_json("fig5_space")
    if doc is None:
        return code_block(text_section("fig5_space", "== Aggregate space statistics"))
    body = aggregate_table(
        doc, "== Aggregate space statistics (Long-integer units) ==", ".0f"
    )
    sc = doc["shape_check"]
    verdict = "LIGHT SMALLER" if sc["holds"] else "DOES NOT HOLD"
    body += (
        "\n\nPaper's shape check: Light space a small fraction of Leap's "
        f"(paper ~10%): measured {sc['light_over_leap_pct']:.1f}%: {verdict}"
    )
    return code_block(body)


def fig6_block() -> str:
    doc = load_json("fig6_bugs")
    if doc is None:
        return code_block((RESULTS / "fig6_bugs.txt").read_text())
    lines = [
        "== Figure 6 / H2: bug reproduction matrix ==",
        f"{'bug':<14} {'Light':<8} {'CLAP-like':<28} {'Chimera-like':<28}",
    ]
    for row in doc["rows"]:
        lines.append(
            f"{row['bug']:<14} {row['light']:<8} {row['clap']:<28} {row['chimera']:<28}"
        )
    t = doc["totals"]
    lines.append("")
    lines.append(
        f"Totals: Light {t['light']}/{t['total']}, CLAP-like {t['clap']}/{t['total']}, "
        f"Chimera-like {t['chimera']}/{t['total']}"
    )
    lines.append(
        "Paper's result: Light 8/8, CLAP 3/8 (5 HashMap-based misses), "
        "Chimera 5/8 (3 serialization misses)."
    )
    return code_block("\n".join(lines))


def table1_block() -> str:
    doc = load_json("table1_replay")
    if doc is None:
        return code_block((RESULTS / "table1_replay.txt").read_text())
    lines = [
        "== Table 1: replay measurement (8 bugs) ==",
        f"{'bug':<14} {'Space(L)':>10} {'Solve(ms)':>10} {'Replay(ms)':>10} "
        f"{'events':>8} {'correl':>8}",
    ]
    for row in doc["rows"]:
        if row.get("status") != "replayed":
            lines.append(f"{row['bug']:<14} {row.get('status', 'failed')}")
            continue
        # Solver decisions/backtracks live in row["metrics"]["solver"];
        # the table shows the paper's columns, the JSON keeps the rest.
        lines.append(
            f"{row['bug']:<14} {row['space_longs']:>10} {row['solve_ms']:>10.1f} "
            f"{row['replay_ms']:>10.1f} {row['ordered_events']:>8} "
            f"{'yes' if row['correlated'] else 'NO':>8}"
        )
    lines.append("")
    lines.append(
        "(Space in Long-integer units; Solve includes constraint generation + IDL "
        "search; Replay is the controlled re-execution. The paper reports seconds "
        "on JVM-scale traces; shapes — solve time correlated with space — carry over.)"
    )
    return code_block("\n".join(lines))


def fig7_block() -> str:
    doc = load_json("fig7_breakdown")
    if doc is None:
        return code_block(text_section("fig7_breakdown", "Space summary:"))
    s = doc["space_summary"]
    n = s["n"]
    body = (
        f"Space summary: O1 saves >=20% on {s['o1_ge_20']}/{n}, "
        f">=50% on {s['o1_ge_50']}/{n}; O2 adds >=20% on {s['o2_ge_20']}/{n}.\n"
        "Paper's H3: both optimizations contribute significantly, O1 dominant."
    )
    return code_block(body)


def main() -> None:
    exp = (ROOT / "EXPERIMENTS.md").read_text()

    fills = {
        "<!-- FIG4_AGGREGATE -->": fig4_block(),
        "<!-- FIG5_AGGREGATE -->": fig5_block(),
        "<!-- FIG6_TABLE -->": fig6_block(),
        "<!-- TABLE1 -->": table1_block(),
        "<!-- FIG7_SUMMARY -->": fig7_block(),
    }
    for marker, content in fills.items():
        if marker not in exp:
            raise SystemExit(f"marker {marker} missing from EXPERIMENTS.md")
        exp = exp.replace(marker, content)

    # Refuse to leave placeholders behind.
    leftovers = re.findall(r"<!-- [A-Z0-9_]+ -->", exp)
    if leftovers:
        raise SystemExit(f"unfilled placeholders: {leftovers}")

    (ROOT / "EXPERIMENTS.md").write_text(exp)
    print("EXPERIMENTS.md filled")


if __name__ == "__main__":
    main()
