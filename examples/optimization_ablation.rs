//! The Figure 7 ablation in miniature: run one workload under the three
//! Light variants (`V_basic`, `V_O1`, `V_both`) and show what each
//! optimization removes from the recording.
//!
//! ```sh
//! cargo run --release --example optimization_ablation
//! ```

use light_replay::light::{Light, LightConfig};
use light_replay::workloads::benchmarks;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = benchmarks()
        .into_iter()
        .find(|w| w.name == "srv.tomcat-pool")
        .expect("catalog");
    let program = w.program();
    let args = w.default_arg_vec();

    println!("workload: {} (threads {}, scale {})\n", w.name, args[0], args[1]);
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10}",
        "variant", "deps", "runs", "space(L)", "O2-skipped"
    );

    for (name, config) in [
        ("V_basic", LightConfig::basic()),
        ("V_O1", LightConfig::o1_only()),
        ("V_both", LightConfig::default()),
    ] {
        let light = Light::with_config(Arc::clone(&program), config);
        let (recording, outcome) = light.record(&args, 9)?;
        assert!(outcome.completed(), "{:?}", outcome.fault);
        println!(
            "{:<10} {:>8} {:>8} {:>10} {:>10}",
            name,
            recording.stats.deps,
            recording.stats.runs,
            recording.space_longs(),
            recording.stats.o2_skipped,
        );

        // Every variant must still replay faithfully.
        let report = light.replay(&recording)?;
        assert!(report.correlated, "{name} failed to replay");
    }

    println!(
        "\nO1 merges non-interleaved same-thread sequences (fewer, larger records);\n\
         O2 drops records for consistently lock-guarded locations entirely.\n\
         All three recordings replayed with Theorem 1 correlation."
    );
    Ok(())
}
