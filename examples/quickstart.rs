//! Quickstart: record a racy run once, replay it deterministically.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use light_replay::light::Light;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two unsynchronized workers increment a shared counter: updates can
    // be lost, so different runs print different totals.
    let program = Arc::new(lir::parse(
        r#"
        global total;
        fn worker(n) {
            let i = 0;
            while (i < n) { total = total + 1; i = i + 1; }
        }
        fn main(n) {
            let t1 = spawn worker(n);
            let t2 = spawn worker(n);
            join t1; join t2;
            print(total);
        }
        "#,
    )?);

    let light = Light::new(program);

    // Original run: native scheduling, Light's flow-dependence recorder.
    let (recording, original) = light.record(&[1000], 7)?;
    println!("original run printed:  {:?}", original.prints);
    println!(
        "recording: {} dependences, {} runs, {} long-integers of space",
        recording.stats.deps,
        recording.stats.runs,
        recording.space_longs()
    );

    // Replay: an SMT-derived schedule enforces the recorded dependences.
    let report = light.replay(&recording)?;
    println!("replay run printed:    {:?}", report.outcome.prints);
    println!(
        "schedule: {} ordered events, solved with {} decisions",
        report.schedule_len, report.solve_stats.decisions
    );

    assert!(report.correlated, "Theorem 1 violated?!");
    assert_eq!(original.prints, report.outcome.prints);
    println!("replay reproduced the original total, lost updates included.");
    Ok(())
}
