//! The paper's running example, end to end: hunt the Cache4j TOCTOU bug
//! with seeded chaos scheduling, persist the recording to disk, reload it,
//! and replay the exact null-pointer dereference.
//!
//! ```sh
//! cargo run --example cache4j_debugging
//! ```

use light_replay::light::{load_recording, save_recording, Light};
use light_replay::workloads::bugs;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bug = bugs()
        .into_iter()
        .find(|b| b.name == "cache4j")
        .expect("catalog contains cache4j");
    println!("bug model: {}", bug.models);

    let light = Light::new(Arc::clone(&bug.program()));

    // Phase 1: hunt. Chaos scheduling is reproducible by seed, so the
    // first faulting seed gives a deterministic "original run".
    let (recording, original) = light
        .find_bug(&bug.args, bug.search_seeds.clone())
        .expect("the TOCTOU window must be reachable");
    let fault = original.fault.as_ref().expect("faulted");
    println!(
        "found: {} at thread {}, counter {}, line {}",
        fault.kind, fault.tid, fault.ctr, fault.line
    );

    // Phase 2: persist and reload, as the paper's recorder dumps to disk.
    let path = std::env::temp_dir().join("cache4j.lrec");
    save_recording(&recording, &path)?;
    let loaded = load_recording(&path)?;
    println!(
        "recording saved to {} ({} long-integers)",
        path.display(),
        loaded.space_longs()
    );

    // Phase 3: replay. The solver derives a feasible schedule preserving
    // every recorded flow dependence; the controlled run hits the same
    // statement with the same illegal value.
    let report = light.replay(&loaded)?;
    let replayed = report.outcome.fault.as_ref().expect("bug replays");
    println!(
        "replayed: {} at thread {}, counter {}, line {}",
        replayed.kind, replayed.tid, replayed.ctr, replayed.line
    );
    assert!(report.correlated);
    println!(
        "correlated per Definition 3.3 (solve: {} decisions, {} ordered events)",
        report.solve_stats.decisions, report.schedule_len
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
