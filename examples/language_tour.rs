//! A tour of the LIR substrate: parse a program, inspect its IR and the
//! static analyses (shared locations, lock guards, race pairs), run it.
//!
//! ```sh
//! cargo run --example language_tour
//! ```

use light_replay::analysis;
use light_replay::runtime::{run, ExecConfig};
use std::sync::Arc;

const SOURCE: &str = r#"
class Account { field balance; }
global bank_lock;
global accounts;
global audit_total;
class L { field pad; }

fn transfer(from_idx, to_idx, amount) {
    sync (bank_lock) {
        let from = accounts[from_idx];
        let to = accounts[to_idx];
        if (from.balance >= amount) {
            from.balance = from.balance - amount;
            to.balance = to.balance + amount;
        }
    }
}

fn teller(id, n) {
    let i = 0;
    while (i < n) {
        transfer((id + i) % 4, (id + i + 1) % 4, (i % 5) + 1);
        i = i + 1;
    }
}

fn main(n) {
    bank_lock = new L();
    accounts = new [4];
    let i = 0;
    while (i < 4) {
        let a = new Account();
        a.balance = 100;
        accounts[i] = a;
        i = i + 1;
    }
    let t1 = spawn teller(0, n);
    let t2 = spawn teller(1, n);
    join t1; join t2;
    sync (bank_lock) {
        let total = 0;
        i = 0;
        while (i < 4) { total = total + accounts[i].balance; i = i + 1; }
        audit_total = total;
        assert(total == 400);
        print(total);
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Arc::new(lir::parse(SOURCE)?);

    println!("== lowered IR (excerpt) ==");
    let text = lir::pretty::program(&program);
    for line in text.lines().take(25) {
        println!("{line}");
    }
    println!("... ({} IR instructions total)\n", program.instr_count());

    println!("== static analysis ==");
    let analysis = analysis::analyze(&program);
    for (i, name) in program.globals.iter().enumerate() {
        let g = lir::GlobalId(i as u32);
        println!(
            "global {name:<12} shared: {:<5} lock-guarded: {}",
            analysis.policy.global_shared(g),
            analysis.guarded.global_guarded(g),
        );
    }
    for (i, name) in program.field_names.iter().enumerate() {
        let f = lir::FieldId(i as u32);
        println!(
            "field  {name:<12} shared: {:<5} lock-guarded: {}",
            analysis.policy.field_shared(f),
            analysis.guarded.field_guarded(f),
        );
    }
    println!("static race pairs: {}\n", analysis.races.len());

    println!("== execution ==");
    let out = run(&program, &[200], ExecConfig::default())?;
    println!(
        "completed: {} (threads {}, instrumented events {}, prints {:?})",
        out.completed(),
        out.stats.threads,
        out.stats.events,
        out.prints
    );
    Ok(())
}
