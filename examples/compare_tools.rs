//! Compare the recording cost of Light vs Leap vs Stride on one workload,
//! then compare bug-reproduction ability of Light vs the CLAP-like and
//! Chimera-like baselines on one bug — a miniature of Figures 4/5/6.
//!
//! ```sh
//! cargo run --release --example compare_tools
//! ```

use light_replay::baselines::{Chimera, Clap, ClapOutcome, LeapRecorder, StrideRecorder};
use light_replay::light::Light;
use light_replay::runtime::{run, ExecConfig, Recorder};
use light_replay::workloads::{benchmarks, bugs};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Recording cost on stamp.vacation -------------------------------
    let w = benchmarks()
        .into_iter()
        .find(|w| w.name == "stamp.vacation")
        .expect("catalog");
    let program = w.program();
    let args = w.default_arg_vec();
    let light = Light::new(Arc::clone(&program));

    let timed = |recorder: Arc<dyn Recorder>| -> Result<f64, Box<dyn std::error::Error>> {
        let config = ExecConfig {
            recorder,
            policy: light.analysis().policy.clone(),
            ..ExecConfig::default()
        };
        let out = run(&program, &args, config)?;
        Ok(out.stats.duration.as_secs_f64() * 1e3)
    };

    let base_ms = timed(Arc::new(light_replay::runtime::NullRecorder))?;
    let light_rec = light.make_recorder();
    let light_ms = timed(light_rec.clone())?;
    let light_space = light_rec.take_recording(None, &args).space_longs();
    let leap = LeapRecorder::new();
    let leap_ms = timed(leap.clone())?;
    let leap_space = leap.take_recording(None, &args).space_longs();
    let stride = StrideRecorder::new();
    let stride_ms = timed(stride.clone())?;
    let stride_space = stride.take_recording(None, &args).space_longs();

    println!("== {} (threads {}, scale {}) ==", w.name, args[0], args[1]);
    println!("{:<8} {:>10} {:>12}", "tool", "time(ms)", "space(longs)");
    println!("{:<8} {:>10.2} {:>12}", "none", base_ms, 0);
    println!("{:<8} {:>10.2} {:>12}", "Light", light_ms, light_space);
    println!("{:<8} {:>10.2} {:>12}", "Leap", leap_ms, leap_space);
    println!("{:<8} {:>10.2} {:>12}", "Stride", stride_ms, stride_space);

    // --- Bug reproduction on lucene-651 ----------------------------------
    let bug = bugs()
        .into_iter()
        .find(|b| b.name == "lucene-651")
        .expect("catalog");
    println!("\n== bug {} ({}) ==", bug.name, bug.models);
    let program = bug.program();

    let light = Light::new(Arc::clone(&program));
    let light_result = match light.find_bug(&bug.args, bug.search_seeds.clone()) {
        Some((recording, _)) => {
            let report = light.replay(&recording)?;
            if report.correlated {
                "reproduced (correlated)".to_string()
            } else {
                "replay missed".to_string()
            }
        }
        None => "bug not found".to_string(),
    };
    println!("{:<14} {}", "Light:", light_result);

    let clap = Clap::new(Arc::clone(&program));
    let clap_result = match clap.record_chaos(&bug.args, 0) {
        Ok((recording, _)) => match clap.reproduce(&recording, bug.search_seeds.clone())? {
            ClapOutcome::Reproduced { seed, .. } => format!("reproduced at seed {seed}"),
            ClapOutcome::UnsupportedConstructs(cs) => {
                format!("unsupported constructs: {}", cs.join("; "))
            }
            ClapOutcome::SearchExhausted { attempts } => {
                format!("search exhausted after {attempts} attempts")
            }
        },
        Err(e) => format!("setup error: {e}"),
    };
    println!("{:<14} {}", "CLAP-like:", clap_result);

    let chimera = Chimera::new(Arc::clone(&program));
    let chimera_result = match chimera.hunt_and_reproduce(&bug.args, bug.search_seeds.clone())? {
        light_replay::baselines::ChimeraOutcome::Reproduced { seed, .. } => {
            format!("reproduced at seed {seed}")
        }
        light_replay::baselines::ChimeraOutcome::BugNeverManifests { attempts } => {
            format!("hidden by serialization ({attempts} attempts)")
        }
        light_replay::baselines::ChimeraOutcome::ReplayMissed { .. } => "replay missed".into(),
    };
    println!("{:<14} {}", "Chimera-like:", chimera_result);
    Ok(())
}
